//! ROS: a Rack-based Optical Storage system with inline accessibility.
//!
//! This is the facade crate of the ROS reproduction (EuroSys '17, Yan et
//! al.): a PB-scale optical disc library in a 42U rack — two rotatable
//! rollers of 6,120 Blu-ray discs each, a robotic arm, 24 optical drives,
//! an SSD/HDD disk tier — unified by OLFS, the Optical Library File
//! System, behind an ordinary POSIX-style interface.
//!
//! The hardware is a calibrated discrete-event simulation (an hour-long
//! burn takes microseconds of wall time but reports paper-accurate
//! latencies); the file system, bucket packing, UDF images, parity and
//! recovery are real, byte-for-byte implementations.
//!
//! # Quickstart
//!
//! ```
//! use ros::prelude::*;
//!
//! // A scaled-down library (4 MB discs) with the full mechanical model.
//! let mut system = Ros::new(RosConfig::tiny());
//!
//! // Files are immediately durable in the disk write buffer.
//! let path: UdfPath = "/projects/eurosys/paper.pdf".parse().unwrap();
//! let report = system.write_file(&path, b"fifty-year bits".to_vec()).unwrap();
//! assert_eq!(report.version, 1);
//!
//! // Reads hit the buffer in milliseconds.
//! let read = system.read_file(&path).unwrap();
//! assert_eq!(read.data.as_ref(), b"fifty-year bits");
//!
//! // Force everything onto optical discs and verify it still reads.
//! system.flush().unwrap();
//! let read = system.read_file(&path).unwrap();
//! assert_eq!(read.data.as_ref(), b"fifty-year bits");
//! ```
//!
//! # Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`ros_sim`] | discrete-event clock, bandwidth math, RNG, stats |
//! | [`ros_mech`] | roller, robotic arm, PLC, Table 3 calibration |
//! | [`ros_drive`] | optical media & drives, Figures 8-10, Table 2 |
//! | [`ros_disk`] | HDD/SSD devices, RAID with real parity, volumes |
//! | [`ros_udf`] | write-once UDF-profile images and buckets |
//! | [`ros_olfs`] | **the core contribution**: the library file system |
//! | [`ros_access`] | FUSE/Samba stack models, Figures 6-7, NAS gateway |
//! | [`ros_workload`] | filebench-style workload generators |
//! | [`ros_tco`] | 100-year TCO and rack power models |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ros_access;
pub use ros_disk;
pub use ros_drive;
pub use ros_mech;
pub use ros_olfs;
pub use ros_sim;
pub use ros_tco;
pub use ros_udf;
pub use ros_workload;

/// The common imports for applications using ROS.
pub mod prelude {
    pub use ros_access::{AccessStack, NasGateway};
    pub use ros_olfs::{OlfsError, Redundancy, Ros, RosConfig, UdfPath};
    pub use ros_sim::{Bandwidth, SimDuration, SimTime};
    pub use ros_workload::{Runner, WorkloadSpec};
}
