//! The §4.2 interface extensions in action: the same long-term-preserved
//! bytes served through three front ends — POSIX file descriptors,
//! a key-value store and an S3-style object store — all mapped onto one
//! OLFS namespace and one optical library.
//!
//! Run with: `cargo run --example interfaces`

use ros::prelude::*;
use ros::ros_access::{KvStore, ObjectStore};
use ros::ros_olfs::{OpenFlags, PosixFs, Whence};
use std::collections::BTreeMap;

fn main() -> Result<(), OlfsError> {
    // --- POSIX file descriptors (the PI module) --------------------------
    let mut fs = PosixFs::new(Ros::new(RosConfig::tiny()));
    let log: UdfPath = "/var/log/app.log".parse().unwrap();
    let fd = fs.open(&log, OpenFlags::create_truncate())?;
    for i in 0..5 {
        fs.write(fd, format!("event {i}\n").as_bytes())?;
    }
    fs.close(fd)?; // One version commits to the buckets.
    let fd = fs.open(&log, OpenFlags::append())?;
    fs.write(fd, b"appended later\n")?;
    fs.close(fd)?; // Appending-update: version 2.
    let fd = fs.open(&log, OpenFlags::read_only())?;
    fs.lseek(fd, -15, Whence::End)?;
    let tail = fs.read(fd, 64)?;
    println!(
        "POSIX: {} (version {})",
        String::from_utf8_lossy(&tail).trim_end(),
        fs.stat(&log)?.version
    );
    fs.close(fd)?;

    // --- Key-value (the §4.2 extension) ----------------------------------
    let mut kv = KvStore::new(fs.into_ros());
    kv.put("metrics/cpu/2026-07-06T12:00", b"0.73".to_vec())?;
    kv.put("metrics/cpu/2026-07-06T12:01", b"0.81".to_vec())?;
    let got = kv.get("metrics/cpu/2026-07-06T12:01")?;
    println!(
        "KV: fetched {} bytes in {} ({} keys stored)",
        got.value.len(),
        got.latency,
        kv.keys()?.len()
    );

    // --- Object store -----------------------------------------------------
    let mut os = ObjectStore::new(kv.into_ros());
    os.create_bucket("genomics")?;
    let mut meta = BTreeMap::new();
    meta.insert("sample".to_string(), "GRCh38-0042".to_string());
    os.put_object(
        "genomics",
        "reads/lane1.fastq",
        vec![b'A'; 500_000],
        Some("application/fastq"),
        meta,
    )?;
    let head = os.head_object("genomics", "reads/lane1.fastq")?;
    println!(
        "Object store: {} bytes, content-type {:?}, sample {}",
        head.size,
        head.content_type.as_deref().unwrap_or("-"),
        head.user["sample"]
    );

    // --- One library underneath ------------------------------------------
    // Push everything — the log file, the KV pairs, the object and its
    // metadata sidecar — onto optical discs, then prove a disc scan
    // recovers all three namespaces.
    os.ros_mut().flush()?;
    let report = os.ros_mut().rebuild_namespace_from_discs()?;
    println!(
        "disc scan found {} files across the three interfaces",
        report.files_recovered
    );
    os.ros_mut().adopt_namespace(report.mv);
    let obj = os.get_object("genomics", "reads/lane1.fastq")?;
    assert_eq!(obj.data.len(), 500_000);
    println!("object readable after full metadata loss — inline accessibility, three ways");
    Ok(())
}
