//! Disaster drills: the long-term preservation guarantees of §4.
//!
//! 1. Discs develop sector errors → the read path reconstructs the data
//!    through the array's RAID-5 parity disc (§4.7).
//! 2. The metadata volume is lost entirely → the namespace is rebuilt by
//!    scanning the self-descriptive discs (§4.4), then verified file by
//!    file.
//!
//! Run with: `cargo run --example disaster_recovery`

use ros::prelude::*;

fn main() -> Result<(), OlfsError> {
    let mut system = Ros::new(RosConfig::tiny());

    // Archive a dataset with known contents.
    let mut originals = Vec::new();
    for i in 0..10 {
        let path: UdfPath = format!("/vault/record-{i:02}").parse().unwrap();
        let data = vec![0xA0 + i as u8; 500_000];
        system.write_file(&path, data.clone())?;
        originals.push((path, data));
    }
    system.flush()?;
    println!(
        "dataset burned: {} arrays used",
        system.status().da_counts.1
    );

    // --- Drill 1: media damage -----------------------------------------
    system.evict_burned_copies();
    system.unload_all_bays()?; // Discs age in their trays.
    println!("\ndrill 1: ageing the media at an accelerated error rate");
    let damaged = system.age_media(0.01);
    println!("aged media: {damaged} sector failures injected across the library");
    let scrub = system.scrub();
    println!(
        "scrub: {} discs scanned in {}, {} discs with damaged images",
        scrub.discs_scanned,
        scrub.elapsed,
        scrub.damaged.len()
    );
    // Reads still return correct bytes — parity repairs on the fly.
    for (path, data) in &originals {
        let r = system.read_file(path)?;
        assert_eq!(r.data.as_ref(), data.as_slice(), "repair must be exact");
    }
    println!(
        "all {} records verified byte-for-byte ({} parity repairs)",
        originals.len(),
        system.counters().repairs
    );
    // Rewrite the damaged arrays onto fresh discs and retire the old
    // trays (§4.7's full recovery story).
    let rewritten = system.rewrite_damaged_arrays(&scrub)?;
    println!(
        "rewrote {rewritten} damaged arrays to fresh discs; DAindex = {:?}",
        system.status().da_counts
    );

    // --- Drill 2: metadata volume loss ----------------------------------
    println!("\ndrill 2: discarding the metadata volume and rescanning discs");
    let report = system.rebuild_namespace_from_discs()?;
    println!(
        "rebuilt {} files from {} discs / {} images in {} (simulated)",
        report.files_recovered, report.discs_read, report.images_parsed, report.elapsed
    );
    system.adopt_namespace(report.mv);
    for (path, data) in &originals {
        let r = system.read_file(path)?;
        assert_eq!(
            r.data.as_ref(),
            data.as_slice(),
            "{path} must survive MV loss"
        );
    }
    println!("all records readable through the rebuilt namespace");
    Ok(())
}
