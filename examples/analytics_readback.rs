//! Analytics readback: big-data mining over long-term preserved data
//! (§1's motivating use case). A dataset is archived to discs; an
//! analytics job then reads it back with skewed popularity. The read
//! cache captures the hot set; the robotic arm serves the cold tail —
//! and the application sees only a POSIX file system.
//!
//! Run with: `cargo run --example analytics_readback`

use ros::prelude::*;

fn main() -> Result<(), OlfsError> {
    let mut cfg = RosConfig::tiny();
    cfg.read_cache_images = 3; // A tight cache to make the tiers visible.
    let mut system = Ros::new(cfg);

    // Archive a dataset and push it to disc.
    println!("archiving dataset...");
    for i in 0..30 {
        let path: UdfPath = format!("/warehouse/day-{i:02}/events.log").parse().unwrap();
        system.write_file(&path, vec![(i * 7) as u8; 700_000])?;
    }
    system.flush()?;
    system.evict_burned_copies();
    system.unload_all_bays()?;
    println!(
        "dataset on disc: {} images across {} used trays",
        system.status().images,
        system.status().da_counts.1
    );

    // The "analytics job": skewed reads — recent days are hot.
    let mut hot_time = SimDuration::ZERO;
    let mut cold_time = SimDuration::ZERO;
    let mut fetches = 0u32;
    for round in 0..40usize {
        let day = if round % 4 == 0 {
            (round * 11) % 30
        } else {
            round % 3
        };
        let path: UdfPath = format!("/warehouse/day-{day:02}/events.log")
            .parse()
            .unwrap();
        let r = system.read_file(&path)?;
        match r.source {
            ros::ros_olfs::engine::ReadSource::DiskBucket
            | ros::ros_olfs::engine::ReadSource::DiskImage => hot_time += r.latency,
            _ => {
                cold_time += r.latency;
                fetches += 1;
                println!(
                    "  day-{day:02}: mechanical fetch ({}), first byte in {}",
                    r.latency, r.first_byte_latency
                );
            }
        }
    }
    let stats = system.cache_stats();
    println!(
        "\ncache: {} hits, {} misses, {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
    println!("mechanical fetches: {fetches} (cold tail)");
    println!("cumulative: hot reads {hot_time}, cold reads {cold_time}");
    println!(
        "the forepart mechanism (§4.8) answered first bytes in ≤{} during fetches",
        ros::ros_olfs::params::forepart_first_byte()
    );
    Ok(())
}
