//! Archival ingest: the write-dominated long-term preservation workload
//! that motivates the paper (§1) — bulk objects streaming in over Samba,
//! buckets filling, parity generating, and drives burning in the
//! background while foreground writes stay at millisecond latency.
//!
//! Run with: `cargo run --example archival_ingest`

use ros::prelude::*;
use ros::ros_workload::dist::SizeDist;

fn main() -> Result<(), OlfsError> {
    let mut gateway = NasGateway::new(Ros::new(RosConfig::tiny()), AccessStack::SambaOlfs);

    let spec = WorkloadSpec::ArchivalIngest {
        files: 150,
        sizes: SizeDist::Exponential {
            mean: 300_000,
            lo: 1_000,
            hi: 2_000_000,
        },
        fanout: 25,
    };
    let ops = spec.compile(2026);
    println!(
        "ingesting {} objects ({:.1} MB) over {}...",
        ops.len(),
        spec.bytes_written(2026) as f64 / 1e6,
        gateway.stack().name()
    );

    let stats = Runner::new().run(&mut gateway, &ops)?;
    println!(
        "writes: {} ops, mean latency {}, p99 {}",
        stats.write_latency.count(),
        stats.write_latency.mean(),
        stats.write_latency.percentile(0.99),
    );
    println!(
        "corrupt reads: {} (must be 0), elapsed {} simulated",
        stats.corrupt_reads, stats.elapsed
    );

    // Background progress so far.
    let c = gateway.ros().counters();
    println!(
        "background: {} buckets sealed, {} parity runs, {} burns, {} splits",
        c.buckets_sealed, c.parity_runs, c.burns, c.splits
    );

    // Let the library finish burning, then report where the data lives.
    gateway.ros_mut().flush()?;
    let status = gateway.ros().status();
    println!(
        "after flush: {} array burns, DAindex = {:?}, buffer {} / {} bytes",
        gateway.ros().counters().burns,
        status.da_counts,
        status.buffer_usage.0,
        status.buffer_usage.1
    );

    // What would a century of this cost? (§2.1's analysis.)
    let tco = ros::ros_tco::TcoModel::default().compare_all();
    println!("\n100-year TCO per PB ($):");
    for b in tco {
        println!("  {:<8} {:>10.0}", b.name, b.total());
    }
    Ok(())
}
