//! Quickstart: write files into ROS, watch them reach optical discs, and
//! read them back — the inline-accessibility pitch of the paper in ~60
//! lines.
//!
//! Run with: `cargo run --example quickstart`

use ros::prelude::*;

fn main() -> Result<(), OlfsError> {
    // A scaled-down library: full 42U mechanical model, 4 MB "discs" so
    // the demo burns in simulated minutes instead of hours.
    let mut system = Ros::new(RosConfig::tiny());

    println!(
        "ROS quickstart — {} discs in the rack",
        system.config().layout.total_discs()
    );

    // 1. Write files. The write returns as soon as the data is in the
    //    disk write buffer (preliminary bucket writing, §4.3).
    let report = system.write_file(
        &"/projects/eurosys/paper.pdf".parse::<UdfPath>().unwrap(),
        b"...50-year bits...".to_vec(),
    )?;
    println!(
        "write acknowledged in {} (version {})",
        report.latency, report.version
    );

    // 2. Reads hit the buffer at disk speed.
    let read = system.read_file(&"/projects/eurosys/paper.pdf".parse().unwrap())?;
    println!(
        "read {} bytes in {} from {:?}",
        read.data.len(),
        read.latency,
        read.source
    );

    // 3. Fill enough data that arrays form, parity generates and burns
    //    start — all in the background.
    for i in 0..24 {
        let path: UdfPath = format!("/dataset/chunk-{i:03}").parse().unwrap();
        system.write_file(&path, vec![i as u8; 800_000])?;
    }
    system.flush()?; // Push everything to disc for the demo.
    let c = system.counters();
    println!(
        "after flush: {} buckets sealed, {} parity runs, {} array burns",
        c.buckets_sealed, c.parity_runs, c.burns
    );

    // 4. Evict the disk copies and read cold: the robotic arm fetches
    //    the disc array (~70 s simulated), invisible to the API.
    system.evict_burned_copies();
    system.unload_all_bays()?;
    let read = system.read_file(&"/dataset/chunk-000".parse().unwrap())?;
    println!(
        "cold read: {} bytes in {} (first byte in {}) from {:?}",
        read.data.len(),
        read.latency,
        read.first_byte_latency,
        read.source
    );

    let status = system.status();
    println!(
        "status: {} files, {} images, DAindex (empty/used/failed) = {:?}",
        status.files, status.images, status.da_counts
    );
    println!("total simulated time: {}", system.now());
    Ok(())
}
