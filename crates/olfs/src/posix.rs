//! The POSIX Interface (PI): file descriptors over the OLFS engine.
//!
//! §4.1: "OLFS provides a POSIX Interface module (PI) as a uniform
//! file/directory external view for users". [`PosixFs`] supplies the
//! descriptor-level calls a FUSE daemon forwards — `open`, `read`,
//! `pread`, `write`, `lseek`, `fstat`, `close` — on top of the engine's
//! whole-file and range operations.
//!
//! Write semantics follow the preliminary-bucket-writing design: bytes
//! written through a descriptor accumulate in the handle and commit as
//! one file version on `close` (OLFS acknowledges a write once its data
//! is in the buckets; a half-written descriptor is not yet a version).
//! Opening an existing file with `OpenFlags::append` seeds the handle
//! with the current contents, so closing produces the appended version —
//! the "appending-update" of §4.2/§4.6.

use crate::engine::Ros;
use crate::error::OlfsError;
use bytes::Bytes;
use ros_faults::RetryPolicy;
use ros_udf::UdfPath;
use std::collections::BTreeMap;

/// Open flags (the subset that matters without a kernel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Create the file if it does not exist.
    pub create: bool,
    /// Fail if `create` and the file already exists.
    pub exclusive: bool,
    /// Open for writing (a new version commits on close).
    pub write: bool,
    /// Seed the write buffer with the current contents and position the
    /// cursor at the end.
    pub append: bool,
    /// Start the write buffer empty even if the file had contents.
    pub truncate: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> Self {
        OpenFlags::default()
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC`.
    pub fn create_truncate() -> Self {
        OpenFlags {
            create: true,
            write: true,
            truncate: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append() -> Self {
        OpenFlags {
            create: true,
            write: true,
            append: true,
            ..OpenFlags::default()
        }
    }
}

/// A file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(u64);

/// `lseek` whence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// From the current position.
    Cur,
    /// From the end of the file.
    End,
}

/// Stat record returned by [`PosixFs::fstat`] / [`PosixFs::stat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// File size in bytes.
    pub size: u64,
    /// Newest version number.
    pub version: u32,
    /// Modification time (simulation nanoseconds).
    pub mtime_nanos: u64,
}

struct Handle {
    path: UdfPath,
    cursor: u64,
    writable: bool,
    /// Pending contents for writable handles.
    buffer: Option<Vec<u8>>,
    dirty: bool,
    /// Clock at the last buffer mutation (open seed or `write`), so
    /// `fstat` of an untouched buffer reports a stable mtime.
    buffer_mtime_nanos: u64,
}

/// The descriptor table over an engine.
pub struct PosixFs {
    ros: Ros,
    next_fd: u64,
    handles: BTreeMap<Fd, Handle>,
    /// Retry policy applied to the whole-file transfers behind `open`
    /// (append/read seeding) and `close` (version commit). Defaults to
    /// no retries: transient faults surface immediately.
    retry_policy: RetryPolicy,
}

impl PosixFs {
    /// Wraps an engine.
    pub fn new(ros: Ros) -> Self {
        PosixFs {
            ros,
            next_fd: 3, // 0-2 are traditionally taken.
            handles: BTreeMap::new(),
            retry_policy: RetryPolicy::none(),
        }
    }

    /// Sets the retry policy for descriptor-level commits and seeds.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry_policy
    }

    /// Access to the engine.
    pub fn ros(&self) -> &Ros {
        &self.ros
    }

    /// Mutable access to the engine.
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Unwraps the engine. Open writable handles are discarded
    /// (uncommitted data is dropped, as a crashed FUSE daemon would).
    pub fn into_ros(self) -> Ros {
        self.ros
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.handles.len()
    }

    /// Opens a file.
    pub fn open(&mut self, path: &UdfPath, flags: OpenFlags) -> Result<Fd, OlfsError> {
        let exists = self.ros.stat(path).is_ok();
        if !exists && !flags.create {
            return Err(OlfsError::NotFound(path.to_string()));
        }
        if exists && flags.create && flags.exclusive {
            return Err(OlfsError::AlreadyExists(path.to_string()));
        }
        let mut buffer = None;
        let mut cursor = 0;
        if flags.write {
            let seed: Vec<u8> = if exists && !flags.truncate {
                let (report, _) = self.ros.read_file_supervised(path, &self.retry_policy)?;
                report.data.to_vec()
            } else {
                Vec::new()
            };
            if flags.append {
                cursor = seed.len() as u64;
            }
            buffer = Some(seed);
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        let buffer_mtime_nanos = self.ros.now().as_nanos();
        self.handles.insert(
            fd,
            Handle {
                path: path.clone(),
                cursor,
                writable: flags.write,
                buffer,
                dirty: false,
                buffer_mtime_nanos,
            },
        );
        Ok(fd)
    }

    fn handle(&self, fd: Fd) -> Result<&Handle, OlfsError> {
        self.handles
            .get(&fd)
            .ok_or(OlfsError::BadState(format!("bad fd {fd:?}")))
    }

    fn handle_mut(&mut self, fd: Fd) -> Result<&mut Handle, OlfsError> {
        self.handles
            .get_mut(&fd)
            .ok_or(OlfsError::BadState(format!("bad fd {fd:?}")))
    }

    /// Reads up to `len` bytes at the cursor, advancing it. An empty
    /// result means end of file.
    pub fn read(&mut self, fd: Fd, len: u64) -> Result<Bytes, OlfsError> {
        let cursor = self.handle(fd)?.cursor;
        let data = self.pread(fd, cursor, len)?;
        self.handle_mut(fd)?.cursor = cursor + data.len() as u64;
        Ok(data)
    }

    /// Reads up to `len` bytes at `offset` without moving the cursor.
    pub fn pread(&mut self, fd: Fd, offset: u64, len: u64) -> Result<Bytes, OlfsError> {
        let h = self.handle(fd)?;
        if h.writable {
            if let Some(buf) = h.buffer.as_ref() {
                // Writable handles read their own uncommitted view; only
                // the requested range is copied out of the mutable
                // buffer, never the whole file.
                let lo = (offset as usize).min(buf.len());
                let hi = ((offset + len) as usize).min(buf.len());
                return Ok(Bytes::copy_from_slice(&buf[lo..hi]));
            }
        }
        let path = h.path.clone();
        Ok(self.ros.read_range(&path, offset, len)?.data)
    }

    /// Writes at the cursor, advancing it. Data commits on close.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> Result<u64, OlfsError> {
        let now_nanos = self.ros.now().as_nanos();
        let h = self.handle_mut(fd)?;
        if !h.writable {
            return Err(OlfsError::BadState("fd not opened for writing".into()));
        }
        let Some(buf) = h.buffer.as_mut() else {
            return Err(OlfsError::BadState(
                "writable handle lost its buffer".into(),
            ));
        };
        let pos = h.cursor as usize;
        if buf.len() < pos {
            buf.resize(pos, 0);
        }
        let overlap = (buf.len() - pos).min(data.len());
        buf[pos..pos + overlap].copy_from_slice(&data[..overlap]);
        buf.extend_from_slice(&data[overlap..]);
        h.cursor += data.len() as u64;
        h.dirty = true;
        h.buffer_mtime_nanos = now_nanos;
        Ok(data.len() as u64)
    }

    /// Moves the cursor.
    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: Whence) -> Result<u64, OlfsError> {
        let size = self.fstat(fd)?.size;
        let h = self.handle_mut(fd)?;
        let base = match whence {
            Whence::Set => 0i128,
            Whence::Cur => h.cursor as i128,
            Whence::End => size as i128,
        };
        let target = base + offset as i128;
        if target < 0 {
            return Err(OlfsError::Invalid("seek before start".into()));
        }
        h.cursor = target as u64;
        Ok(h.cursor)
    }

    /// Stats an open descriptor (uncommitted writes included).
    pub fn fstat(&mut self, fd: Fd) -> Result<Stat, OlfsError> {
        let h = self.handle(fd)?;
        if let (true, Some(buf)) = (h.writable, h.buffer.as_ref()) {
            return Ok(Stat {
                size: buf.len() as u64,
                version: 0, // Uncommitted.
                mtime_nanos: h.buffer_mtime_nanos,
            });
        }
        let path = h.path.clone();
        self.stat(&path)
    }

    /// Stats a path.
    pub fn stat(&mut self, path: &UdfPath) -> Result<Stat, OlfsError> {
        let (size, version, mtime_nanos) = self.ros.stat(path)?;
        Ok(Stat {
            size,
            version,
            mtime_nanos,
        })
    }

    /// Closes a descriptor, committing buffered writes as one version.
    /// Returns the committed version for writable handles.
    pub fn close(&mut self, fd: Fd) -> Result<Option<u32>, OlfsError> {
        let h = self
            .handles
            .remove(&fd)
            .ok_or(OlfsError::BadState(format!("bad fd {fd:?}")))?;
        if h.writable && h.dirty {
            let Some(buffer) = h.buffer else {
                return Err(OlfsError::BadState(
                    "writable handle lost its buffer".into(),
                ));
            };
            let (report, _) =
                self.ros
                    .write_file_supervised(&h.path, buffer.into(), &self.retry_policy)?;
            return Ok(Some(report.version));
        }
        Ok(None)
    }

    /// Lists a directory.
    pub fn readdir(&mut self, path: &UdfPath) -> Result<Vec<(String, bool)>, OlfsError> {
        self.ros.readdir(path)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        self.ros.mkdir(path)
    }

    /// Removes a file from the namespace.
    pub fn unlink(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        self.ros.unlink(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn fs() -> PosixFs {
        PosixFs::new(Ros::new(RosConfig::tiny()))
    }

    #[test]
    fn create_write_close_read_cycle() {
        let mut fs = fs();
        let fd = fs
            .open(&p("/posix/file"), OpenFlags::create_truncate())
            .unwrap();
        fs.write(fd, b"hello ").unwrap();
        fs.write(fd, b"world").unwrap();
        let v = fs.close(fd).unwrap();
        assert_eq!(v, Some(1));
        let fd = fs.open(&p("/posix/file"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 5).unwrap().as_ref(), b"hello");
        assert_eq!(fs.read(fd, 100).unwrap().as_ref(), b" world");
        assert!(fs.read(fd, 10).unwrap().is_empty(), "EOF");
        fs.close(fd).unwrap();
        assert_eq!(fs.open_count(), 0);
    }

    #[test]
    fn open_flag_semantics() {
        let mut fs = fs();
        assert!(matches!(
            fs.open(&p("/missing"), OpenFlags::read_only()).unwrap_err(),
            OlfsError::NotFound(_)
        ));
        let fd = fs.open(&p("/x"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"v1").unwrap();
        fs.close(fd).unwrap();
        let mut excl = OpenFlags::create_truncate();
        excl.exclusive = true;
        assert!(matches!(
            fs.open(&p("/x"), excl).unwrap_err(),
            OlfsError::AlreadyExists(_)
        ));
    }

    #[test]
    fn append_builds_a_new_version_with_old_data() {
        let mut fs = fs();
        let fd = fs.open(&p("/log"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"line1\n").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/log"), OpenFlags::append()).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 6);
        fs.write(fd, b"line2\n").unwrap();
        let v = fs.close(fd).unwrap();
        assert_eq!(v, Some(2));
        let fd = fs.open(&p("/log"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 100).unwrap().as_ref(), b"line1\nline2\n");
        fs.close(fd).unwrap();
    }

    #[test]
    fn pread_does_not_move_the_cursor() {
        let mut fs = fs();
        let fd = fs.open(&p("/f"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"0123456789").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/f"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.pread(fd, 4, 3).unwrap().as_ref(), b"456");
        assert_eq!(fs.read(fd, 2).unwrap().as_ref(), b"01");
        // Range past EOF clamps.
        assert_eq!(fs.pread(fd, 8, 100).unwrap().as_ref(), b"89");
        assert!(fs.pread(fd, 100, 10).unwrap().is_empty());
    }

    #[test]
    fn lseek_all_whences() {
        let mut fs = fs();
        let fd = fs.open(&p("/s"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"abcdefgh").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/s"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.lseek(fd, 2, Whence::Set).unwrap(), 2);
        assert_eq!(fs.read(fd, 2).unwrap().as_ref(), b"cd");
        assert_eq!(fs.lseek(fd, 1, Whence::Cur).unwrap(), 5);
        assert_eq!(fs.read(fd, 1).unwrap().as_ref(), b"f");
        assert_eq!(fs.lseek(fd, -2, Whence::End).unwrap(), 6);
        assert_eq!(fs.read(fd, 10).unwrap().as_ref(), b"gh");
        assert!(fs.lseek(fd, -99, Whence::Set).is_err());
    }

    #[test]
    fn sparse_write_after_seek_zero_fills() {
        let mut fs = fs();
        let fd = fs
            .open(&p("/sparse"), OpenFlags::create_truncate())
            .unwrap();
        fs.write(fd, b"ab").unwrap();
        fs.lseek(fd, 5, Whence::Set).unwrap();
        fs.write(fd, b"z").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/sparse"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 10).unwrap().as_ref(), b"ab\0\0\0z");
    }

    #[test]
    fn overwrite_mid_buffer() {
        let mut fs = fs();
        let fd = fs.open(&p("/ow"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"XXXXXX").unwrap();
        fs.lseek(fd, 2, Whence::Set).unwrap();
        fs.write(fd, b"yy").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/ow"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 10).unwrap().as_ref(), b"XXyyXX");
    }

    #[test]
    fn writable_handle_reads_its_own_view() {
        let mut fs = fs();
        let fd = fs.open(&p("/rw"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"pending").unwrap();
        assert_eq!(fs.pread(fd, 0, 7).unwrap().as_ref(), b"pending");
        assert_eq!(fs.fstat(fd).unwrap().size, 7);
        // Not yet visible through a fresh read-only descriptor path.
        assert!(fs.stat(&p("/rw")).is_err());
        fs.close(fd).unwrap();
        assert_eq!(fs.stat(&p("/rw")).unwrap().size, 7);
    }

    #[test]
    fn fstat_mtime_is_stable_on_untouched_dirty_buffer() {
        use ros_sim::SimDuration;
        let mut fs = fs();
        let fd = fs.open(&p("/mt"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"payload").unwrap();
        let first = fs.fstat(fd).unwrap().mtime_nanos;
        // Wall time moves on, but the buffer was not touched: a second
        // fstat must report the same modification time.
        fs.ros_mut().run_for(SimDuration::from_secs(5));
        let second = fs.fstat(fd).unwrap().mtime_nanos;
        assert_eq!(
            first, second,
            "fstat of an untouched dirty buffer must not drift with the clock"
        );
        // A new write advances it (to the clock at write time).
        fs.ros_mut().run_for(SimDuration::from_secs(1));
        fs.write(fd, b"!").unwrap();
        let third = fs.fstat(fd).unwrap().mtime_nanos;
        assert!(third > second, "a write must refresh the buffer mtime");
        assert_eq!(third, fs.ros().now().as_nanos());
        fs.close(fd).unwrap();
    }

    #[test]
    fn read_only_close_commits_nothing() {
        let mut fs = fs();
        let fd = fs.open(&p("/noop"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"x").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/noop"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.close(fd).unwrap(), None);
        assert_eq!(fs.stat(&p("/noop")).unwrap().version, 1);
        // Writable but untouched handle also commits nothing.
        let fd = fs.open(&p("/noop"), OpenFlags::append()).unwrap();
        assert_eq!(fs.close(fd).unwrap(), None);
        assert_eq!(fs.stat(&p("/noop")).unwrap().version, 1);
    }

    #[test]
    fn range_reads_skip_unneeded_segments_of_split_files() {
        let mut fs = fs();
        // A 10 MiB file split over 4 MiB discs.
        let big: Vec<u8> = (0..10 * 1024 * 1024u32).map(|i| (i % 253) as u8).collect();
        let fd = fs.open(&p("/big"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, &big).unwrap();
        fs.close(fd).unwrap();
        fs.ros_mut().flush().unwrap();
        fs.ros_mut().evict_burned_copies();
        fs.ros_mut().unload_all_bays().unwrap();
        // A small range in the FIRST segment: one fetch, not three.
        let fd = fs.open(&p("/big"), OpenFlags::read_only()).unwrap();
        let got = fs.pread(fd, 1000, 5000).unwrap();
        assert_eq!(got.as_ref(), &big[1000..6000]);
        assert_eq!(
            fs.ros().counters().fetches,
            1,
            "only the overlapping segment may be fetched"
        );
    }

    #[test]
    fn retry_policy_rides_out_transient_faults_on_reopen() {
        use ros_faults::{FaultEvent, FaultKind, FaultSink};
        let mut fs = fs();
        fs.set_retry_policy(RetryPolicy::default());
        let fd = fs.open(&p("/rp"), OpenFlags::create_truncate()).unwrap();
        fs.write(fd, b"survivor").unwrap();
        fs.close(fd).unwrap();
        fs.ros_mut().flush().unwrap();
        fs.ros_mut().evict_burned_copies();
        fs.ros_mut().unload_all_bays().unwrap();
        // The append-seed fetch hits a one-shot mechanical misfeed; the
        // descriptor-level retry policy absorbs it.
        fs.ros_mut().inject_fault(&FaultEvent {
            seq: 0,
            at_op: 0,
            kind: FaultKind::MechTransient { count: 1 },
        });
        let fd = fs.open(&p("/rp"), OpenFlags::append()).unwrap();
        fs.write(fd, b"!").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open(&p("/rp"), OpenFlags::read_only()).unwrap();
        assert_eq!(fs.read(fd, 100).unwrap().as_ref(), b"survivor!");
    }

    #[test]
    fn bad_fds_are_rejected() {
        let mut fs = fs();
        let fd = Fd(99);
        assert!(fs.read(fd, 1).is_err());
        assert!(fs.write(fd, b"x").is_err());
        assert!(fs.close(fd).is_err());
        assert!(fs.lseek(fd, 0, Whence::Set).is_err());
    }
}
