//! LOCKSS-style sampled background audit (DESIGN.md §16).
//!
//! Long-horizon preservation fails silently: latent rot flips bytes on
//! burned media without raising any I/O error, so neither the §4.7
//! sector scrub (which walks the drive's damage map) nor a plain read
//! (which returns the rotted bytes happily) notices. The only defence
//! is an *end-to-end* check — re-hash the stored bytes and compare
//! against the `ros-cas` content digest recorded at seal time.
//!
//! Hashing the whole library every pass is unaffordable at PB scale, so
//! the audit follows the LOCKSS playbook: every scheduled scrub tick
//! digest-verifies a small random sample of images (buffer residents
//! *and* burned in-tray tracks), chosen without replacement from a
//! seeded stream so runs are reproducible. Over simulated decades the
//! sample sweeps the library many times, bounding the window a rotted
//! image can survive undetected.
//!
//! Detected rot is repaired through the redundancy ladder:
//!
//! 1. **Array redundancy** — every member of the rotted image's disc
//!    array is gathered and digest-verified *whole*; mismatching
//!    members are masked as lost and reconstructed through the GF(256)
//!    P/Q parity kernels ([`crate::redundancy::reconstruct_verified`]).
//!    The healed array is then rewritten onto fresh media, retiring the
//!    rotted tray — same flow as §4.7's scrub-triggered rewrite.
//! 2. **Replica escalation** — if more members rotted than the parity
//!    schema tolerates, the image is reported
//!    [`AuditReport::unrepairable`] and a cluster front end re-fetches
//!    the bytes from a healthy replica rack
//!    (`ros-cluster`'s audit module).
//!
//! Both the sampling scan and any repairs are charged to the simulated
//! clock, so audit bandwidth competes with foreground traffic exactly
//! like the scrub does.

use crate::dim::{DaState, GroupState};
use crate::engine::Ros;
use crate::error::OlfsError;
use crate::ids::{ArrayId, ImageId};
use crate::redundancy;
use ros_drive::media::Payload;
use ros_sim::SimDuration;
use std::collections::BTreeMap;

/// Result of one sampled-audit pass ([`Ros::audit_sample`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Images digest-verified this pass.
    pub sampled: usize,
    /// Sampled images whose bytes still match their recorded digest.
    pub verified: usize,
    /// Sampled images whose bytes no longer match (latent rot) or whose
    /// tracks could not be read back cleanly.
    pub rotted: Vec<ImageId>,
    /// Rotted images healed from array redundancy this pass.
    pub repaired: Vec<ImageId>,
    /// Rotted images the local redundancy could not recover — the
    /// cluster layer escalates these to a replica rack.
    pub unrepairable: Vec<ImageId>,
    /// Simulated time the scan and repairs consumed.
    pub elapsed: SimDuration,
}

impl Ros {
    /// Every UDF path whose newest bytes live (partly) in `image` — the
    /// escalation hook: a cluster front end uses these paths to
    /// re-fetch an [`AuditReport::unrepairable`] image's content from a
    /// replica rack.
    pub fn paths_of_image(&self, image: ImageId) -> Vec<ros_udf::UdfPath> {
        self.image_paths.get(&image).cloned().unwrap_or_default()
    }

    /// The most recent sampled-audit result, whether scheduled (riding
    /// the scrub tick) or run manually.
    pub fn last_audit_report(&self) -> Option<&AuditReport> {
        self.last_audit.as_ref()
    }

    /// Runs one sampled-audit pass: digest-verify up to `n` images
    /// chosen uniformly without replacement from the auditable
    /// population (buffer residents plus burned images whose disc sits
    /// in a tray), then repair any rot through array redundancy.
    ///
    /// The candidate list is assembled in image-id order and the sample
    /// is drawn from a forked seeded stream, so a given system history
    /// audits the same images every run. Scan time is charged at the
    /// bay's aggregate read rate (the same model as [`Ros::scrub`]);
    /// repairs additionally charge reconstruction reads and buffer
    /// writes.
    pub fn audit_sample(&mut self, n: usize) -> AuditReport {
        let mut report = AuditReport::default();
        if n == 0 {
            return report;
        }

        // Auditable population, in image-id order for determinism.
        let mut candidates: Vec<ImageId> = Vec::new();
        for info in self.store.images() {
            let in_tray = info
                .burned
                .map(|loc| self.registry.disc(loc.disc).is_some())
                .unwrap_or(false);
            if info.payload.is_some() || in_tray {
                candidates.push(info.id);
            }
        }
        // Partial Fisher-Yates: the first `n` slots become the sample.
        let mut rng = self.rng_mut().fork(0xAD17);
        let take = n.min(candidates.len());
        for i in 0..take {
            let j = i + rng.index(candidates.len() - i);
            candidates.swap(i, j);
        }
        candidates.truncate(take);

        // Verify each sampled image end to end.
        let plane = self.data_plane();
        let mut total_bytes = 0u64;
        for id in candidates {
            let Some(info) = self.store.get(id) else {
                continue;
            };
            let digest = info.digest;
            report.sampled += 1;
            // A healthy buffer copy settles it; a rotted buffer copy of
            // a burned image falls through to the on-media bytes.
            if let Some(p) = &info.payload {
                total_bytes += p.len() as u64;
                if ros_cas::verify_payload(&digest, p, &plane).is_ok() {
                    report.verified += 1;
                    continue;
                }
                if info.burned.is_none() {
                    report.rotted.push(id);
                    continue;
                }
            }
            let Some(loc) = info.burned else {
                // Unburned and payload-less images are not candidates.
                report.verified += 1;
                continue;
            };
            let ok = match self.registry.disc(loc.disc).map(|d| d.read_image_raw(id.0)) {
                Some(Ok((Payload::Inline(bytes), bad))) => {
                    total_bytes += bytes.len() as u64;
                    bad.is_empty() && ros_cas::verify_payload(&digest, bytes, &plane).is_ok()
                }
                // Synthetic tracks carry no real bytes to hash; the
                // checksum-level scrub covers them.
                Some(Ok((Payload::Synthetic { .. }, bad))) => bad.is_empty(),
                _ => false,
            };
            if ok {
                report.verified += 1;
            } else {
                report.rotted.push(id);
            }
        }
        let agg = self.bays[0].aggregate_read_speed(self.cfg.disc_class);
        report.elapsed = agg.time_for(total_bytes);
        self.run_for(report.elapsed);

        // Repair, one array at a time.
        let mut by_array: BTreeMap<Option<ArrayId>, Vec<ImageId>> = BTreeMap::new();
        for id in &report.rotted {
            let gid = self.store.get(*id).and_then(|i| i.array);
            by_array.entry(gid).or_default().push(*id);
        }
        let mut rewrote = false;
        for (gid, images) in by_array {
            let Some(gid) = gid else {
                // No array yet: the buffer copy was the only copy.
                report.unrepairable.extend(images);
                continue;
            };
            match self.repair_rotted_array(gid, &images) {
                Ok(time) => {
                    report.elapsed += time;
                    report.repaired.extend(images);
                    rewrote = true;
                }
                Err(_) => report.unrepairable.extend(images),
            }
        }
        if rewrote {
            // Let the fresh-media re-burns complete.
            self.run_until_quiescent(SimDuration::from_secs(3600 * 24));
        }
        self.counters.latent_repairs += report.repaired.len() as u64;
        report
    }

    /// Heals one rotted disc array: gathers every member, masks the
    /// digest-mismatching ones as lost, reconstructs them through P/Q
    /// parity, restores the healed data members to the buffer and
    /// rewrites the whole array onto fresh media (retiring the rotted
    /// tray as Failed). Errors if the rot exceeds the schema's
    /// tolerance — the caller escalates to a replica.
    fn repair_rotted_array(
        &mut self,
        gid: ArrayId,
        rotted: &[ImageId],
    ) -> Result<SimDuration, OlfsError> {
        let group = self
            .store
            .group(gid)
            .ok_or_else(|| OlfsError::BadState(format!("no group {gid}")))?
            .clone();
        let members: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        let unrecoverable = |image: ImageId| OlfsError::Unrecoverable {
            image,
            array: Some(gid),
        };
        let first_rotted = rotted.first().copied().unwrap_or(ImageId(0));
        let plane = self.data_plane();

        // Gather digest-verified bytes per member; anything that fails
        // verification is masked as lost.
        let mut raw: Vec<Option<Vec<u8>>> = vec![None; members.len()];
        let mut scanned = 0u64;
        for (i, member) in members.iter().enumerate() {
            let Some(info) = self.store.get(*member) else {
                continue;
            };
            let digest = info.digest;
            if let Some(p) = info.payload.clone() {
                if ros_cas::verify_payload(&digest, &p, &plane).is_ok() {
                    raw[i] = Some(p.to_vec());
                    continue;
                }
            }
            let Some(loc) = info.burned else { continue };
            if let Some(Ok((Payload::Inline(bytes), bad))) = self
                .registry
                .disc(loc.disc)
                .map(|d| d.read_image_raw(member.0))
            {
                scanned += bytes.len() as u64;
                if bad.is_empty() && ros_cas::verify_payload(&digest, bytes, &plane).is_ok() {
                    raw[i] = Some(bytes.to_vec());
                }
            }
        }
        let mut time = self.bays[0]
            .aggregate_read_speed(self.cfg.disc_class)
            .time_for(scanned);

        let n_data = group.data.len();
        let sizes: Vec<usize> = group
            .data
            .iter()
            .map(|id| {
                self.store
                    .get(*id)
                    .map(|i| i.size as usize)
                    .unwrap_or_default()
            })
            .collect();
        let expected: Vec<ros_cas::Digest> = group
            .data
            .iter()
            .filter_map(|id| self.store.get(*id).map(|i| i.digest))
            .collect();
        if expected.len() != n_data {
            return Err(unrecoverable(first_rotted));
        }
        let data_masked: Vec<Option<&[u8]>> = raw[..n_data].iter().map(|e| e.as_deref()).collect();
        let p_slice = raw.get(n_data).and_then(|e| e.as_deref());
        let q_slice = raw.get(n_data + 1).and_then(|e| e.as_deref());
        let recovered = redundancy::reconstruct_verified(
            self.cfg.redundancy,
            &data_masked,
            &sizes,
            p_slice,
            q_slice,
            &expected,
            &plane,
        )
        .map_err(|_| unrecoverable(first_rotted))?;

        // Every data member needs a healthy buffer copy before the
        // rewrite; replace rotted residents and fill evicted slots from
        // the verified reconstruction.
        for (i, member) in group.data.iter().enumerate() {
            let (on_disk, healthy) = self
                .store
                .get(*member)
                .map(|info| {
                    let ok = info
                        .payload
                        .as_ref()
                        .map(|p| ros_cas::verify_payload(&info.digest, p, &plane).is_ok())
                        .unwrap_or(false);
                    (info.on_disk(), ok)
                })
                .unwrap_or((false, false));
            if on_disk && !healthy {
                let freed = self
                    .store
                    .evict_disk_copy(*member)
                    .map_err(|_| unrecoverable(*member))?;
                let _ = self.vm.release(self.vol_buffer, freed);
            }
            if !(on_disk && healthy) {
                let bytes = recovered
                    .get(i)
                    .cloned()
                    .ok_or_else(|| unrecoverable(*member))?;
                time += self.vm.write_time(self.vol_buffer, bytes.len() as u64)?;
                self.vm.allocate(self.vol_buffer, bytes.len() as u64)?;
                self.store
                    .restore_disk_copy(*member, bytes, &plane)
                    .map_err(|_| unrecoverable(*member))?;
            }
            // Pin until the rewrite's burn completes.
            self.cache.insert(*member);
            self.cache.pin(*member);
        }
        self.run_for(time);

        // Retire the rotted tray and re-burn onto fresh media — same
        // flow as the scrub's damaged-array rewrite (§4.7).
        if group.state == GroupState::Burned {
            for bay in 0..self.bays.len() {
                if self.mech.bay_contents(bay).is_ok_and(|c| c == group.slot) {
                    self.unload_bay(bay)?;
                }
            }
            let old_slot = self.store.reset_group_for_rewrite(gid)?;
            if let Some(slot) = old_slot {
                let idx = self.cfg.layout.slot_index(slot);
                self.store.set_da_state(idx, DaState::Failed);
            }
            self.schedule_parity(gid);
        }
        Ok(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RosConfig;
    use ros_faults::{FaultEvent, FaultKind, FaultSink, InjectionOutcome};

    fn p(s: &str) -> ros_udf::UdfPath {
        s.parse().unwrap()
    }

    fn ev(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            seq: 0,
            at_op: 0,
            kind,
        }
    }

    /// Burns `data` to disc and cold-stores it: buffer copies evicted,
    /// bays unloaded, everything back on the roller.
    fn burned_system(data: &[u8]) -> Ros {
        let mut r = Ros::new(RosConfig::tiny());
        r.write_file(&p("/audit/f"), data.to_vec()).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        r
    }

    #[test]
    fn read_path_heals_latent_rot_inline() {
        let data = vec![3u8; 400_000];
        let mut r = burned_system(&data);
        // Rot flips bytes with no sector error: the scrub sees nothing.
        assert_eq!(
            r.inject_fault(&ev(FaultKind::MediaRot { disc: 0, bytes: 5 })),
            InjectionOutcome::Injected
        );
        let scrub = r.scrub();
        assert!(scrub.damaged.is_empty(), "rot must be invisible to scrub");
        // The read still returns the *original* bytes: the fetch's
        // digest check catches the mismatch and repairs through parity
        // before the client sees anything.
        let report = r.read_file(&p("/audit/f")).unwrap();
        assert_eq!(report.data.as_ref(), data.as_slice());
        assert!(
            r.counters().latent_repairs >= 1,
            "the inline latent repair must have run"
        );
    }

    #[test]
    fn sampled_audit_detects_and_repairs_rot() {
        let data = vec![4u8; 400_000];
        let mut r = burned_system(&data);
        assert_eq!(
            r.inject_fault(&ev(FaultKind::MediaRot { disc: 0, bytes: 3 })),
            InjectionOutcome::Injected
        );
        // Sample generously: the tiny library fits entirely.
        let report = r.audit_sample(64);
        assert!(report.sampled >= 1);
        assert!(!report.rotted.is_empty(), "audit must detect the rot");
        for id in &report.rotted {
            assert!(report.repaired.contains(id), "{id} must be repaired");
        }
        assert!(report.unrepairable.is_empty());
        assert!(report.elapsed > SimDuration::ZERO, "audit charges time");
        // The heal is durable: the rotted tray was retired and the
        // array re-burned, so a later cold read needs no repair at all.
        let before = r.counters().latent_repairs;
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        let read = r.read_file(&p("/audit/f")).unwrap();
        assert_eq!(read.data.as_ref(), data.as_slice());
        assert_eq!(
            r.counters().latent_repairs,
            before,
            "no inline repair needed after the audit healed the array"
        );
    }

    #[test]
    fn audit_beyond_parity_tolerance_reports_unrepairable() {
        let data = vec![5u8; 400_000];
        let mut r = burned_system(&data);
        // Rot *every* member disc of the burned array — data and
        // parity. RAID-5 tolerates one loss; this exceeds it. Buffer
        // copies (parity keeps one after the burn) are dropped first so
        // only the rotted media remains.
        let gid = r.store.groups_in_state(GroupState::Burned)[0];
        let group = r.store.group(gid).unwrap().clone();
        for member in group.data.iter().chain(group.parity.iter()) {
            if r.store.get(*member).unwrap().on_disk() {
                let freed = r.store.evict_disk_copy(*member).unwrap();
                let _ = r.vm.release(r.vol_buffer, freed);
            }
            let loc = r.store.get(*member).unwrap().burned.unwrap();
            let media = r.registry.disc_mut(loc.disc).unwrap();
            assert!(media.rot_bytes(member.0, 4) > 0);
        }
        let report = r.audit_sample(64);
        assert!(!report.rotted.is_empty());
        assert!(
            !report.unrepairable.is_empty(),
            "rot beyond parity tolerance must escalate, not vanish"
        );
        assert!(report.repaired.is_empty());
    }

    #[test]
    fn audit_sampling_is_deterministic() {
        let build = || {
            let data = vec![6u8; 300_000];
            let mut r = burned_system(&data);
            r.inject_fault(&ev(FaultKind::MediaRot { disc: 0, bytes: 2 }));
            r.audit_sample(8)
        };
        assert_eq!(build(), build(), "same history, same audit");
    }

    #[test]
    fn scheduled_scrub_runs_the_audit() {
        let mut cfg = RosConfig::tiny();
        cfg.scrub_interval = Some(SimDuration::from_secs(3600));
        cfg.audit_sample_images = 8;
        let mut r = Ros::new(cfg);
        let data = vec![7u8; 400_000];
        r.write_file(&p("/audit/g"), data.to_vec()).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        assert_eq!(
            r.inject_fault(&ev(FaultKind::MediaRot { disc: 0, bytes: 4 })),
            InjectionOutcome::Injected
        );
        r.run_for(SimDuration::from_secs(2 * 3600));
        // The window covers two ticks: the first audit repairs the rot,
        // the second verifies a healthy library — so check the
        // cumulative repair counter, not the last report.
        assert!(r.last_audit_report().is_some(), "audit rode the scrub tick");
        assert!(
            r.counters().latent_repairs >= 1,
            "scheduled audit healed the rot"
        );
        let read = r.read_file(&p("/audit/g")).unwrap();
        assert_eq!(read.data.as_ref(), data.as_slice());
    }

    #[test]
    fn audit_on_healthy_library_verifies_everything() {
        let mut r = burned_system(&[8u8; 200_000]);
        let report = r.audit_sample(64);
        assert_eq!(report.sampled, report.verified);
        assert!(report.rotted.is_empty());
        assert!(report.repaired.is_empty());
        assert!(r.verify_consistency().is_empty());
    }
}
