//! Namespace recovery: MV snapshots on disc and full disc-scan rebuild.
//!
//! Two mechanisms from the paper:
//!
//! 1. **MV snapshot burning** (§4.2): "MV is periodically burned into
//!    discs. Once MV fails, the entire global namespace can be recovered
//!    from discs... As an experiment, ROS took half an hour to recover MV
//!    from 120 discs."
//! 2. **Disc-scan reconstruction** (§4.4): because every image carries
//!    its files under their *unique global paths* with full ancestor
//!    directories, "Even if all electronic and mechanical components
//!    failed, all or partial data can be reconstructed by scanning all
//!    survived discs."

use crate::dim::DaState;
use crate::engine::Ros;
use crate::error::OlfsError;
use crate::ids::ImageId;
use crate::index::LocTag;
use crate::mv::MetadataVolume;
use crate::wbm::{parse_link_file_name, LinkFile};
use ros_sim::SimDuration;
use ros_udf::{SealedImage, UdfPath};
use std::collections::BTreeMap;

/// Directory MV snapshots are written under.
pub const MV_SNAPSHOT_DIR: &str = "/.mv-snapshots";

/// Chunk size for snapshot part files.
const SNAPSHOT_PART_BYTES: usize = 512 * 1024;

/// Result of a disc-scan rebuild.
#[derive(Clone, Debug)]
pub struct RebuildReport {
    /// Trays read.
    pub trays_read: usize,
    /// Discs read.
    pub discs_read: usize,
    /// Data images successfully parsed.
    pub images_parsed: usize,
    /// Files recovered into the rebuilt namespace.
    pub files_recovered: usize,
    /// Simulated time the rebuild took (mechanics + disc reads).
    pub elapsed: SimDuration,
    /// The rebuilt metadata volume.
    pub mv: MetadataVolume,
}

impl Ros {
    /// Burns a snapshot of the current MV into the library (§4.2's
    /// periodic MV burn). The snapshot is chunked into part files under
    /// [`MV_SNAPSHOT_DIR`], written through the normal PBW path, and
    /// flushed to disc. Returns `(sequence_number, part_count)`.
    pub fn burn_mv_snapshot(&mut self) -> Result<(u64, usize), OlfsError> {
        let seq = self
            .mv
            .get_state("mv_snapshot_seq")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
            + 1;
        let snapshot = self.mv.snapshot().into_bytes();
        let parts: Vec<&[u8]> = snapshot.chunks(SNAPSHOT_PART_BYTES).collect();
        let count = parts.len();
        for (i, part) in parts.into_iter().enumerate() {
            let path: UdfPath = format!("{MV_SNAPSHOT_DIR}/{seq:06}/part-{i:06}")
                .parse()
                .map_err(|e| OlfsError::Udf(format!("{e}")))?;
            self.write_file(&path, part.to_vec())?;
        }
        self.flush()?;
        self.mv.put_state("mv_snapshot_seq", serde_json::json!(seq));
        Ok((seq, count))
    }

    /// Recovers the MV from the newest snapshot found by scanning the
    /// library's discs — the timed §4.2 experiment. Does not consult the
    /// live MV (assumed lost); returns the restored volume and the
    /// simulated recovery duration.
    pub fn recover_mv_from_discs(&mut self) -> Result<(MetadataVolume, SimDuration), OlfsError> {
        let start = self.now();
        let scan =
            self.scan_burned_images(|path, _| path.to_string().starts_with(MV_SNAPSHOT_DIR))?;
        // Pick the newest snapshot sequence present.
        let mut by_seq: BTreeMap<String, BTreeMap<String, Vec<u8>>> = BTreeMap::new();
        for (path, _image, bytes) in scan.files {
            let s = path.to_string();
            let comps = path.components();
            if comps.len() == 3 {
                by_seq.entry(comps[1].clone()).or_default().insert(s, bytes);
            }
        }
        let (_seq, parts) = by_seq
            .into_iter()
            .next_back()
            .ok_or_else(|| OlfsError::BadState("no MV snapshot found on discs".into()))?;
        let mut joined = Vec::new();
        for (_, part) in parts {
            joined.extend_from_slice(&part);
        }
        let restored = MetadataVolume::restore(
            core::str::from_utf8(&joined)
                .map_err(|_| OlfsError::BadState("snapshot not UTF-8".into()))?,
        )?;
        Ok((restored, self.now().duration_since(start)))
    }

    /// Full §4.4 disaster rebuild: scans every burned disc, parses its
    /// image, and reconstructs the namespace from the unique file paths,
    /// link files and version shadows found on the media alone.
    pub fn rebuild_namespace_from_discs(&mut self) -> Result<RebuildReport, OlfsError> {
        let start = self.now();
        let scan =
            self.scan_burned_images(|path, _| !path.to_string().starts_with(MV_SNAPSHOT_DIR))?;

        // Pass 1: classify occurrences.
        struct Continuation {
            offset: u64,
        }
        // (path, image) -> continuation info from link files.
        let mut continuations: BTreeMap<(String, u64), Continuation> = BTreeMap::new();
        // original path -> versions found as shadows.
        let mut shadows: BTreeMap<String, Vec<(u32, ImageId, u64)>> = BTreeMap::new();
        // regular occurrences: (path, image, len).
        let mut regulars: Vec<(UdfPath, ImageId, u64)> = Vec::new();
        for (path, image, bytes) in &scan.files {
            let Some(name) = path.name() else { continue };
            if let Some(orig_name) = parse_link_file_name(name) {
                if let (Some(link), Some(parent)) = (
                    LinkFile::from_json(core::str::from_utf8(bytes).unwrap_or("")),
                    path.parent(),
                ) {
                    let orig = parent.join(orig_name);
                    continuations.insert(
                        (orig.to_string(), image.0),
                        Continuation {
                            offset: link.offset,
                        },
                    );
                }
                continue;
            }
            if let Some(rest) = name.strip_prefix(".rosv") {
                if let Some(dash) = rest.find('-') {
                    if let (Ok(ver), Some(parent)) = (rest[..dash].parse::<u32>(), path.parent()) {
                        let orig = parent.join(&rest[dash + 1..]);
                        shadows.entry(orig.to_string()).or_default().push((
                            ver,
                            *image,
                            bytes.len() as u64,
                        ));
                        continue;
                    }
                }
            }
            regulars.push((path.clone(), *image, bytes.len() as u64));
        }

        // Pass 2: assemble base files, ordering subfiles by their link
        // offsets (the first subfile has no link file, offset 0).
        let mut base: BTreeMap<String, Vec<(u64, ImageId, u64)>> = BTreeMap::new();
        for (path, image, len) in &regulars {
            let key = path.to_string();
            let offset = continuations
                .get(&(key.clone(), image.0))
                .map(|c| c.offset)
                .unwrap_or(0);
            base.entry(key).or_default().push((offset, *image, *len));
        }

        // Build the namespace.
        let mut mv = MetadataVolume::new();
        let mut files = 0usize;
        for (path_str, parts) in &base {
            let path: UdfPath = path_str.parse().map_err(|_| {
                OlfsError::BadState(format!("recovered path {path_str:?} failed to re-parse"))
            })?;
            let mut parts = parts.clone();
            parts.sort_unstable();
            parts.dedup_by_key(|(_, img, _)| *img);
            let total_size: u64 = parts.iter().map(|(_, _, l)| *l).sum();
            let segs: Vec<ImageId> = parts.iter().map(|(_, img, _)| *img).collect();
            let idx = mv.create(&path)?;
            idx.push_version(LocTag::Disc, total_size, 0, segs);
            files += 1;
            // Replay regenerated versions in order.
            if let Some(list) = shadows.get(path_str) {
                let mut list = list.clone();
                list.sort_unstable();
                for (ver, image, size) in list {
                    let idx = mv.get_mut(&path).ok_or_else(|| {
                        OlfsError::BadState(format!("MV entry for {path} vanished during rebuild"))
                    })?;
                    // Keep version numbers aligned by filling gaps.
                    while idx.latest().map(|e| e.ver + 1).unwrap_or(1) < ver {
                        let prev = idx.latest().cloned();
                        let (psize, psegs) =
                            prev.map(|e| (e.size, e.segs)).unwrap_or((0, Vec::new()));
                        idx.push_version(LocTag::Disc, psize, 0, psegs);
                    }
                    idx.push_version(LocTag::Disc, size, 0, vec![image]);
                }
            }
        }
        // Shadow-only files (base version's image lost): best effort.
        for (orig, list) in &shadows {
            if base.contains_key(orig) {
                continue;
            }
            let path: UdfPath = orig.parse().map_err(|_| {
                OlfsError::BadState(format!("recovered path {orig:?} failed to re-parse"))
            })?;
            let idx = mv.create(&path)?;
            let mut list = list.clone();
            list.sort_unstable();
            for (_, image, size) in list {
                idx.push_version(LocTag::Disc, size, 0, vec![image]);
            }
            files += 1;
        }

        Ok(RebuildReport {
            trays_read: scan.trays_read,
            discs_read: scan.discs_read,
            images_parsed: scan.images_parsed,
            files_recovered: files,
            elapsed: self.now().duration_since(start),
            mv,
        })
    }

    /// Replaces the live MV with a recovered one (end of a disaster
    /// drill).
    pub fn adopt_namespace(&mut self, mv: MetadataVolume) {
        self.mv = mv;
    }

    /// Exports the current MV as a portable snapshot string — the same
    /// serialization [`Ros::burn_mv_snapshot`] chunks onto discs. A
    /// cluster front end ships this text to guardian racks so the
    /// namespace survives whole-rack loss (restore the text with
    /// [`MetadataVolume::restore`], then [`Ros::adopt_namespace`]).
    pub fn export_namespace(&self) -> String {
        self.mv.snapshot()
    }

    /// Scans every Used tray: loads it, reads each disc's data tracks in
    /// parallel, parses the images and collects files matching `keep`.
    ///
    /// Drive reads stay sequential (they need `&mut` drive state and
    /// charge simulated time); the CPU-bound image parse and file
    /// extraction fan out on the data plane afterwards, in read order,
    /// so the result is identical at any thread count.
    fn scan_burned_images(
        &mut self,
        keep: impl Fn(&UdfPath, &[u8]) -> bool + Sync,
    ) -> Result<ScanResult, OlfsError> {
        let mut result = ScanResult::default();
        let layout = self.cfg.layout;
        let used: Vec<u32> = (0..layout.total_slots())
            .filter(|i| self.store.da_state(*i) == Some(DaState::Used))
            .collect();
        for slot_index in used {
            let slot = layout.slot_at(slot_index);
            // Free a bay (the scan monopolises bay 0's worth of drives).
            let bay = self.free_any_bay()?;
            self.load_bay(slot, bay)?;
            result.trays_read += 1;
            // Read all discs in parallel: charge the slowest drive.
            let mut slowest = SimDuration::ZERO;
            for pos in 0..self.cfg.drives_per_bay {
                let image_ids: Vec<u64> = {
                    let Some(disc) = self.bays[bay].drive(pos).and_then(|d| d.disc()) else {
                        continue;
                    };
                    if disc.is_blank() {
                        continue;
                    }
                    disc.tracks().iter().map(|t| t.image_id).collect()
                };
                if image_ids.is_empty() {
                    continue;
                }
                result.discs_read += 1;
                let mut drive_time = SimDuration::ZERO;
                let mut payloads: Vec<(u64, bytes::Bytes)> = Vec::with_capacity(image_ids.len());
                for image_id in image_ids {
                    let Some(drive) = self.bays[bay].drive_mut(pos) else {
                        continue;
                    };
                    let timed = match drive.read_image(image_id) {
                        Ok(t) => t,
                        Err(_) => continue, // Damaged track: skip in a scan.
                    };
                    drive_time += timed.duration;
                    match timed.payload {
                        ros_drive::Payload::Inline(b) => payloads.push((image_id, b)),
                        ros_drive::Payload::Synthetic { .. } => continue,
                    }
                }
                slowest = slowest.max(drive_time);
                // Parse and extract in parallel, in read order.
                let keep = &keep;
                let parsed = self.data_plane().map(&payloads, |(image_id, bytes)| {
                    // Parity payloads normally fail to parse; the
                    // degenerate single-member XOR parity *does* parse
                    // but carries a mismatched embedded image id.
                    let img = SealedImage::from_bytes(bytes.clone()).ok()?;
                    if img.image_id() != *image_id {
                        return None;
                    }
                    let mut files = Vec::new();
                    for (path, _meta) in img.scan_files() {
                        if let Ok(data) = img.read(&path) {
                            if keep(&path, &data) {
                                files.push((path, ImageId(*image_id), data.to_vec()));
                            }
                        }
                    }
                    Some(files)
                });
                for files in parsed.into_iter().flatten() {
                    result.images_parsed += 1;
                    result.files.extend(files);
                }
            }
            self.run_for(slowest);
            self.unload_bay(bay)?;
        }
        Ok(result)
    }

    fn free_any_bay(&mut self) -> Result<usize, OlfsError> {
        for bay in 0..self.bays.len() {
            if matches!(self.mech.bay_contents(bay), Ok(None)) {
                return Ok(bay);
            }
        }
        // Unload bay 0 (scans run on an otherwise idle system).
        self.unload_bay(0)?;
        Ok(0)
    }
}

#[derive(Default)]
struct ScanResult {
    trays_read: usize,
    discs_read: usize,
    images_parsed: usize,
    /// Every matching file occurrence: the same path may appear in
    /// several images (split subfiles, version shadows).
    files: Vec<(UdfPath, ImageId, Vec<u8>)>,
}
