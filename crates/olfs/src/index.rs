//! JSON index files — the per-file metadata records in MV (§4.2, §4.6).
//!
//! "Any entry in the global namespace, including file and directory, has
//! its corresponding index file with the same file name in MV. However, MV
//! index files do not have actual file data, but only record the locations
//! of their data files in the form of bucketID, image ID, or disc ID...
//! The index file is organized in the Json standard format... Its typical
//! size is 388 bytes... In order to support file appending-update
//! operations, multiple file version entries for a file can be recorded
//! into the index file. Each entry takes 40 bytes... about 15 historic
//! entries."
//!
//! An image keeps its id through its whole life (bucket → buffered image →
//! disc), so entries reference [`ImageId`]s; the `loc` tag records the
//! stage at write time. The optional *forepart* (§4.8) stores the first
//! bytes of the newest version inline so cold reads can answer instantly.

use crate::ids::ImageId;
use crate::params;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Stage of an image at the time an entry was written (B/I/D of §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocTag {
    /// Staged in an open bucket.
    #[serde(rename = "B")]
    Bucket,
    /// A sealed image on the disk buffer.
    #[serde(rename = "I")]
    Image,
    /// Burned onto a disc.
    #[serde(rename = "D")]
    Disc,
}

/// One version entry (~40 bytes serialized, §4.2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VersionEntry {
    /// Monotonic version number, starting at 1.
    pub ver: u32,
    /// Stage at write time.
    pub loc: LocTag,
    /// File size in bytes.
    pub size: u64,
    /// Modification time (nanoseconds on the simulation clock).
    pub mtime: u64,
    /// The image(s) holding the data; more than one when the file was
    /// split across consecutive images (§4.5).
    pub segs: Vec<ImageId>,
    /// Bytes of the file in each segment (parallel to `segs`); empty in
    /// legacy entries, in which case range reads fall back to reading
    /// every segment.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub seg_sizes: Vec<u64>,
}

/// The index file of one global-namespace file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexFile {
    /// Version entries, oldest first; a bounded ring of
    /// [`params::MAX_VERSION_ENTRIES`].
    entries: VecDeque<VersionEntry>,
    /// Next version number to assign.
    next_ver: u32,
    /// Forepart of the newest version (§4.8), if enabled.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    forepart: Option<Bytes>,
}

impl Default for IndexFile {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexFile {
    /// Creates an empty index file (no versions yet).
    pub fn new() -> Self {
        IndexFile {
            entries: VecDeque::new(),
            next_ver: 1,
            forepart: None,
        }
    }

    /// Appends a new version, overwriting the oldest entry once the ring
    /// is full (§4.6: "When all 15 entries have been used up, the first
    /// entry will be overwritten").
    pub fn push_version(&mut self, loc: LocTag, size: u64, mtime: u64, segs: Vec<ImageId>) -> u32 {
        self.push_version_sized(loc, size, mtime, segs, Vec::new())
    }

    /// [`IndexFile::push_version`] with per-segment sizes recorded, so
    /// range reads can skip segments entirely outside the range.
    pub fn push_version_sized(
        &mut self,
        loc: LocTag,
        size: u64,
        mtime: u64,
        segs: Vec<ImageId>,
        seg_sizes: Vec<u64>,
    ) -> u32 {
        debug_assert!(seg_sizes.is_empty() || seg_sizes.len() == segs.len());
        let ver = self.next_ver;
        self.next_ver += 1;
        if self.entries.len() == params::MAX_VERSION_ENTRIES {
            self.entries.pop_front();
        }
        self.entries.push_back(VersionEntry {
            ver,
            loc,
            size,
            mtime,
            segs,
            seg_sizes,
        });
        ver
    }

    /// Returns the newest version entry.
    pub fn latest(&self) -> Option<&VersionEntry> {
        self.entries.back()
    }

    /// Returns a specific version if still recorded.
    pub fn version(&self, ver: u32) -> Option<&VersionEntry> {
        self.entries.iter().find(|e| e.ver == ver)
    }

    /// All retained versions, oldest first (data provenance, §4.6).
    pub fn versions(&self) -> impl Iterator<Item = &VersionEntry> {
        self.entries.iter()
    }

    /// Number of retained versions.
    pub fn version_count(&self) -> usize {
        self.entries.len()
    }

    /// Promotes the newest entry's stage tag as its image transitions
    /// bucket → image → disc.
    pub fn promote_latest(&mut self, loc: LocTag) {
        if let Some(e) = self.entries.back_mut() {
            e.loc = loc;
        }
    }

    /// Promotes the stage tag on every entry that references `image`.
    pub fn promote_image(&mut self, image: ImageId, loc: LocTag) {
        for e in self.entries.iter_mut() {
            if e.segs.contains(&image) {
                e.loc = loc;
            }
        }
    }

    /// Stores the forepart of the newest version.
    pub fn set_forepart(&mut self, data: Option<Bytes>) {
        self.forepart = data;
    }

    /// Returns the stored forepart.
    pub fn forepart(&self) -> Option<&Bytes> {
        self.forepart.as_ref()
    }

    /// Serialises to the on-MV JSON form.
    pub fn to_json(&self) -> String {
        // ros-analysis: allow(L2, serializing an owned tree of strings and integers cannot fail)
        serde_json::to_string(self).expect("index files always serialize")
    }

    /// Parses the on-MV JSON form.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Bytes this index file occupies on MV: its JSON body rounded up to
    /// MV blocks, plus an inode (§4.2's accounting).
    pub fn mv_bytes(&self) -> u64 {
        let body = self.to_json().len() as u64;
        let blocks = body.div_ceil(params::MV_BLOCK_BYTES).max(1);
        params::MV_INODE_BYTES + blocks * params::MV_BLOCK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotonic() {
        let mut f = IndexFile::new();
        assert!(f.latest().is_none());
        let v1 = f.push_version(LocTag::Bucket, 100, 5, vec![ImageId(1)]);
        let v2 = f.push_version(LocTag::Bucket, 200, 6, vec![ImageId(2)]);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(f.latest().unwrap().ver, 2);
        assert_eq!(f.version(1).unwrap().size, 100);
        assert_eq!(f.version_count(), 2);
    }

    #[test]
    fn ring_wraps_at_fifteen() {
        let mut f = IndexFile::new();
        for i in 0..20u32 {
            f.push_version(LocTag::Bucket, i as u64, 0, vec![ImageId(i as u64)]);
        }
        assert_eq!(f.version_count(), params::MAX_VERSION_ENTRIES);
        // Versions 1-5 were overwritten.
        assert!(f.version(5).is_none());
        assert!(f.version(6).is_some());
        assert_eq!(f.latest().unwrap().ver, 20);
        // Version numbers keep increasing after the wrap.
        f.push_version(LocTag::Bucket, 0, 0, vec![]);
        assert_eq!(f.latest().unwrap().ver, 21);
    }

    #[test]
    fn promotion_follows_image_life() {
        let mut f = IndexFile::new();
        f.push_version(LocTag::Bucket, 10, 0, vec![ImageId(7)]);
        f.push_version(LocTag::Bucket, 20, 1, vec![ImageId(8)]);
        f.promote_image(ImageId(7), LocTag::Disc);
        assert_eq!(f.version(1).unwrap().loc, LocTag::Disc);
        assert_eq!(f.version(2).unwrap().loc, LocTag::Bucket);
        f.promote_latest(LocTag::Image);
        assert_eq!(f.latest().unwrap().loc, LocTag::Image);
    }

    #[test]
    fn json_roundtrip() {
        let mut f = IndexFile::new();
        f.push_version(LocTag::Image, 4096, 123456789, vec![ImageId(3), ImageId(4)]);
        f.set_forepart(Some(Bytes::from_static(b"first bytes")));
        let json = f.to_json();
        let parsed = IndexFile::from_json(&json).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.forepart().unwrap().as_ref(), b"first bytes");
    }

    #[test]
    fn typical_size_matches_paper() {
        // A single-version index file without forepart must stay in the
        // neighbourhood of the paper's 388 bytes.
        let mut f = IndexFile::new();
        f.push_version(LocTag::Disc, 1 << 20, 1_234_567_890_123, vec![ImageId(42)]);
        let len = f.to_json().len();
        assert!(
            len <= params::TYPICAL_INDEX_BYTES,
            "index JSON is {len} bytes; paper's typical size is 388"
        );
        // And each extra version costs roughly the paper's 40 bytes
        // (ours is JSON-verbose; allow up to 100).
        let before = f.to_json().len();
        f.push_version(LocTag::Disc, 1 << 20, 1_234_567_890_124, vec![ImageId(43)]);
        let per_entry = f.to_json().len() - before;
        assert!(
            (30..=100).contains(&per_entry),
            "per-entry cost = {per_entry} bytes (paper: 40)"
        );
    }

    #[test]
    fn mv_bytes_accounting() {
        let mut f = IndexFile::new();
        f.push_version(LocTag::Bucket, 1, 0, vec![ImageId(1)]);
        // One MV block + inode.
        assert_eq!(
            f.mv_bytes(),
            params::MV_INODE_BYTES + params::MV_BLOCK_BYTES
        );
        // A big forepart spills into more blocks.
        f.set_forepart(Some(Bytes::from(vec![b'x'; 4096])));
        assert!(f.mv_bytes() > params::MV_INODE_BYTES + 4 * params::MV_BLOCK_BYTES);
    }

    #[test]
    fn split_files_record_multiple_segments() {
        let mut f = IndexFile::new();
        f.push_version(LocTag::Image, 1 << 22, 0, vec![ImageId(1), ImageId(2)]);
        assert_eq!(f.latest().unwrap().segs.len(), 2);
    }
}
