//! OLFS — the Optical Library File System of ROS.
//!
//! OLFS is the paper's core software contribution (§4): a global,
//! POSIX-style file system spanning a metadata volume on SSDs, UDF write
//! buckets and disc images on the HDD write buffer / read cache, and
//! thousands of write-once optical discs behind a robotic mechanical
//! subsystem. It provides *inline accessibility*: external clients read
//! and write ordinary files while OLFS hides bucket packing, disc-image
//! management, parity generation, burning and mechanical fetches.
//!
//! The implementation is organised after the paper's nine modules:
//!
//! | Paper module (§4.1)          | Here                        |
//! |------------------------------|-----------------------------|
//! | POSIX Interface (PI)         | [`posix::PosixFs`] + [`engine::Ros`] |
//! | Writing Bucket Mgmt (WBM)    | [`wbm`]                     |
//! | Disc Image Mgmt (DIM)        | [`dim`]                     |
//! | Burning Task Mgmt (BTM)      | [`engine`] burn tasks       |
//! | Disc Burning (DB)            | `ros-drive`                 |
//! | Mechanical Controller (MC)   | `ros-mech` + [`engine`]     |
//! | Fetching Task Mgmt (FTM)     | [`engine`] fetch logic      |
//! | Read Cache (RC)              | [`cache`]                   |
//! | Maintenance Interface (MI)   | [`maintenance`]             |
//!
//! plus the cross-cutting mechanisms: metadata/data decoupling
//! ([`mv`], [`index`]), preliminary bucket writing ([`wbm`]), unique file
//! paths (`ros-udf`), regenerating updates ([`index`] version rings),
//! delayed parity generation ([`redundancy`]) and namespace recovery
//! ([`recovery`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod config;
pub mod dedup;
pub mod dim;
pub mod engine;
pub mod error;
pub mod ids;
pub mod index;
pub mod maintenance;
pub mod mv;
pub mod params;
pub mod posix;
pub mod recovery;
pub mod redundancy;
pub mod supervise;
pub mod trace;
pub mod wbm;

pub use audit::AuditReport;
pub use config::{Redundancy, RosConfig};
pub use engine::{ReadReport, Ros, WriteReport};
pub use error::OlfsError;
pub use ids::{ArrayId, DiscId, ImageId};
pub use posix::{Fd, OpenFlags, PosixFs, Whence};
pub use ros_udf::UdfPath;
