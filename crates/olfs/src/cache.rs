//! The Read Cache (RC) — LRU over whole disc images (§4.1).
//!
//! "Considering that recently and frequently read data are likely to be
//! used again according to data life cycles, Read Cache (RC) retains some
//! recently used disc images according to a LRU algorithms... The current
//! design of OLFS only considers a disc image as a cache unit,
//! sufficiently exploiting spatial locality."
//!
//! Unburned images are *pinned*: they are the only copy of their data and
//! must never be evicted before burning completes.

use crate::ids::ImageId;
use std::collections::{HashMap, VecDeque};

/// Eviction-policy statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the image cached.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Images evicted.
    pub evictions: u64,
}

/// An LRU cache of disc-image residency (the bytes live in the image
/// store; the cache tracks *which* images stay on the disk tier).
#[derive(Clone, Debug)]
pub struct ReadCache {
    capacity: usize,
    /// LRU order: front = coldest.
    order: VecDeque<ImageId>,
    /// Pin counts; pinned images are never evicted.
    pins: HashMap<ImageId, u32>,
    stats: CacheStats,
}

impl ReadCache {
    /// Creates a cache holding up to `capacity` images.
    pub fn new(capacity: usize) -> Self {
        ReadCache {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            pins: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Returns the capacity in images.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of resident images.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns true when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Returns true if the image is resident.
    pub fn contains(&self, id: ImageId) -> bool {
        self.order.contains(&id)
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Records a lookup; on a hit the image becomes most-recently-used.
    pub fn touch(&mut self, id: ImageId) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.order.push_back(id);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Inserts an image as most-recently-used, returning any images that
    /// must be dropped from the disk tier to make room.
    pub fn insert(&mut self, id: ImageId) -> Vec<ImageId> {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
        }
        self.order.push_back(id);
        let mut evicted = Vec::new();
        while self.order.len() > self.capacity {
            // Evict the coldest unpinned image.
            let victim = self.order.iter().position(|x| !self.pins.contains_key(x));
            match victim {
                Some(pos) if self.order[pos] != id => {
                    // ros-analysis: allow(L2, pos was found by scanning this deque and is in range)
                    let v = self.order.remove(pos).expect("position valid");
                    self.stats.evictions += 1;
                    evicted.push(v);
                }
                // Everything (else) is pinned: tolerate overflow rather
                // than evict a sole copy.
                _ => break,
            }
        }
        evicted
    }

    /// Removes an image (e.g. the disk copy was dropped for space).
    pub fn remove(&mut self, id: ImageId) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            true
        } else {
            false
        }
    }

    /// Pins an image against eviction (unburned images).
    pub fn pin(&mut self, id: ImageId) {
        *self.pins.entry(id).or_insert(0) += 1;
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: ImageId) {
        if let Some(count) = self.pins.get_mut(&id) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&id);
            }
        }
    }

    /// Returns the images in LRU order (coldest first).
    pub fn lru_order(&self) -> impl Iterator<Item = ImageId> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<ImageId> {
        v.iter().copied().map(ImageId).collect()
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ReadCache::new(3);
        assert!(c.insert(ImageId(1)).is_empty());
        assert!(c.insert(ImageId(2)).is_empty());
        assert!(c.insert(ImageId(3)).is_empty());
        // Touch 1 so 2 becomes coldest.
        assert!(c.touch(ImageId(1)));
        let evicted = c.insert(ImageId(4));
        assert_eq!(evicted, ids(&[2]));
        assert!(c.contains(ImageId(1)));
        assert!(!c.contains(ImageId(2)));
    }

    #[test]
    fn pinned_images_survive() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        c.pin(ImageId(1));
        c.insert(ImageId(2));
        let evicted = c.insert(ImageId(3));
        // 1 is pinned; 2 must go instead.
        assert_eq!(evicted, ids(&[2]));
        assert!(c.contains(ImageId(1)));
        // Unpin and it becomes evictable.
        c.unpin(ImageId(1));
        let evicted = c.insert(ImageId(4));
        assert_eq!(evicted, ids(&[1]));
    }

    #[test]
    fn all_pinned_overflows_gracefully() {
        let mut c = ReadCache::new(2);
        for i in 1..=3 {
            c.insert(ImageId(i));
            c.pin(ImageId(i));
        }
        assert_eq!(c.len(), 3, "overflow tolerated when all pinned");
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        c.insert(ImageId(2));
        c.insert(ImageId(1)); // refresh
        let evicted = c.insert(ImageId(3));
        assert_eq!(evicted, ids(&[2]));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        assert!(c.touch(ImageId(1)));
        assert!(!c.touch(ImageId(9)));
        c.insert(ImageId(2));
        c.insert(ImageId(3));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn remove_and_empty() {
        let mut c = ReadCache::new(2);
        assert!(c.is_empty());
        c.insert(ImageId(5));
        assert!(c.remove(ImageId(5)));
        assert!(!c.remove(ImageId(5)));
        assert!(c.is_empty());
        // Double pin requires double unpin.
        c.insert(ImageId(7));
        c.pin(ImageId(7));
        c.pin(ImageId(7));
        c.unpin(ImageId(7));
        c.insert(ImageId(8));
        let evicted = c.insert(ImageId(9));
        assert!(!evicted.contains(&ImageId(7)));
    }
}
