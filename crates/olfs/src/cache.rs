//! The Read Cache (RC) — LRU over whole disc images (§4.1).
//!
//! "Considering that recently and frequently read data are likely to be
//! used again according to data life cycles, Read Cache (RC) retains some
//! recently used disc images according to a LRU algorithms... The current
//! design of OLFS only considers a disc image as a cache unit,
//! sufficiently exploiting spatial locality."
//!
//! Unburned images are *pinned*: they are the only copy of their data and
//! must never be evicted before burning completes.
//!
//! The recency list is an intrusive doubly-linked list over a slab of
//! nodes, addressed through a `HashMap<ImageId, usize>` index, so
//! `touch`/`insert`/`remove`/`contains` are O(1) regardless of how many
//! images are resident (a production rack caches hundreds of images and
//! touches the cache on every read). Only eviction walks the list, and
//! only past the pinned prefix of the cold end.

use crate::ids::ImageId;
use std::collections::HashMap;

/// Eviction-policy statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the image cached.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Images evicted.
    pub evictions: u64,
}

/// Slab index of "no node": list terminator / unlinked marker.
const NIL: usize = usize::MAX;

/// One entry of the intrusive recency list.
#[derive(Clone, Copy, Debug)]
struct Node {
    id: ImageId,
    /// Slab index of the next-colder entry (`NIL` at the coldest end).
    prev: usize,
    /// Slab index of the next-hotter entry (`NIL` at the hottest end).
    next: usize,
}

/// An LRU cache of disc-image residency (the bytes live in the image
/// store; the cache tracks *which* images stay on the disk tier).
// The two HashMaps below are point-lookup-only (insert/get/remove); the
// LRU order itself lives in the intrusive list, so hash iteration order
// never reaches an observable output. L6 guards against any future
// iteration creeping in.
#[derive(Clone, Debug)]
pub struct ReadCache {
    capacity: usize,
    /// Node slab; freed slots are recycled through `free`.
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Resident image -> slab index.
    index: HashMap<ImageId, usize>,
    /// Coldest entry (eviction candidate end).
    head: usize,
    /// Hottest entry (most recently used end).
    tail: usize,
    /// Pin counts; pinned images are never evicted.
    pins: HashMap<ImageId, u32>,
    stats: CacheStats,
}

impl ReadCache {
    /// Creates a cache holding up to `capacity` images.
    pub fn new(capacity: usize) -> Self {
        ReadCache {
            capacity: capacity.max(1),
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            pins: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Returns the capacity in images.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of resident images.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns true when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Returns true if the image is resident.
    pub fn contains(&self, id: ImageId) -> bool {
        self.index.contains_key(&id)
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Detaches node `n` from the recency list (it stays in the slab).
    fn unlink(&mut self, n: usize) {
        let Node { prev, next, .. } = self.nodes[n];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Appends node `n` at the hot end.
    fn push_hot(&mut self, n: usize) {
        self.nodes[n].prev = self.tail;
        self.nodes[n].next = NIL;
        if self.tail != NIL {
            self.nodes[self.tail].next = n;
        } else {
            self.head = n;
        }
        self.tail = n;
    }

    /// Allocates a slab node for `id`, recycling freed slots.
    fn alloc(&mut self, id: ImageId) -> usize {
        match self.free.pop() {
            Some(n) => {
                self.nodes[n] = Node {
                    id,
                    prev: NIL,
                    next: NIL,
                };
                n
            }
            None => {
                self.nodes.push(Node {
                    id,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        }
    }

    /// Records a lookup; on a hit the image becomes most-recently-used.
    pub fn touch(&mut self, id: ImageId) -> bool {
        if let Some(&n) = self.index.get(&id) {
            self.unlink(n);
            self.push_hot(n);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Inserts an image as most-recently-used, returning any images that
    /// must be dropped from the disk tier to make room.
    pub fn insert(&mut self, id: ImageId) -> Vec<ImageId> {
        if let Some(&n) = self.index.get(&id) {
            self.unlink(n);
            self.push_hot(n);
        } else {
            let n = self.alloc(id);
            self.push_hot(n);
            self.index.insert(id, n);
        }
        let mut evicted = Vec::new();
        while self.index.len() > self.capacity {
            // Evict the coldest unpinned image; never the one just
            // inserted (it reached the cold end only if everything
            // colder is pinned, and evicting the incoming image would
            // defeat the insert).
            let mut n = self.head;
            while n != NIL && self.pins.contains_key(&self.nodes[n].id) {
                n = self.nodes[n].next;
            }
            if n == NIL || self.nodes[n].id == id {
                // Everything (else) is pinned: tolerate overflow rather
                // than evict a sole copy.
                break;
            }
            let victim = self.nodes[n].id;
            self.unlink(n);
            self.free.push(n);
            self.index.remove(&victim);
            self.stats.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Removes an image (e.g. the disk copy was dropped for space). Any
    /// pin state dies with the residency: a pin protects the resident
    /// copy, and a later re-insert must start unprotected.
    pub fn remove(&mut self, id: ImageId) -> bool {
        if let Some(n) = self.index.remove(&id) {
            self.unlink(n);
            self.free.push(n);
            self.pins.remove(&id);
            true
        } else {
            false
        }
    }

    /// Pins an image against eviction (unburned images).
    pub fn pin(&mut self, id: ImageId) {
        *self.pins.entry(id).or_insert(0) += 1;
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: ImageId) {
        if let Some(count) = self.pins.get_mut(&id) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&id);
            }
        }
    }

    /// Returns the images in LRU order (coldest first).
    pub fn lru_order(&self) -> impl Iterator<Item = ImageId> + '_ {
        let mut cur = self.head;
        core::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let node = &self.nodes[cur];
                cur = node.next;
                Some(node.id)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<ImageId> {
        v.iter().copied().map(ImageId).collect()
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ReadCache::new(3);
        assert!(c.insert(ImageId(1)).is_empty());
        assert!(c.insert(ImageId(2)).is_empty());
        assert!(c.insert(ImageId(3)).is_empty());
        // Touch 1 so 2 becomes coldest.
        assert!(c.touch(ImageId(1)));
        let evicted = c.insert(ImageId(4));
        assert_eq!(evicted, ids(&[2]));
        assert!(c.contains(ImageId(1)));
        assert!(!c.contains(ImageId(2)));
    }

    #[test]
    fn pinned_images_survive() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        c.pin(ImageId(1));
        c.insert(ImageId(2));
        let evicted = c.insert(ImageId(3));
        // 1 is pinned; 2 must go instead.
        assert_eq!(evicted, ids(&[2]));
        assert!(c.contains(ImageId(1)));
        // Unpin and it becomes evictable.
        c.unpin(ImageId(1));
        let evicted = c.insert(ImageId(4));
        assert_eq!(evicted, ids(&[1]));
    }

    #[test]
    fn all_pinned_overflows_gracefully() {
        let mut c = ReadCache::new(2);
        for i in 1..=3 {
            c.insert(ImageId(i));
            c.pin(ImageId(i));
        }
        assert_eq!(c.len(), 3, "overflow tolerated when all pinned");
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        c.insert(ImageId(2));
        c.insert(ImageId(1)); // refresh
        let evicted = c.insert(ImageId(3));
        assert_eq!(evicted, ids(&[2]));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        assert!(c.touch(ImageId(1)));
        assert!(!c.touch(ImageId(9)));
        c.insert(ImageId(2));
        c.insert(ImageId(3));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn remove_and_empty() {
        let mut c = ReadCache::new(2);
        assert!(c.is_empty());
        c.insert(ImageId(5));
        assert!(c.remove(ImageId(5)));
        assert!(!c.remove(ImageId(5)));
        assert!(c.is_empty());
        // Double pin requires double unpin.
        c.insert(ImageId(7));
        c.pin(ImageId(7));
        c.pin(ImageId(7));
        c.unpin(ImageId(7));
        c.insert(ImageId(8));
        let evicted = c.insert(ImageId(9));
        assert!(!evicted.contains(&ImageId(7)));
    }

    #[test]
    fn remove_clears_pin_state() {
        // Regression: removing a pinned image used to leave its pin
        // count behind, permanently shielding a later re-insert of the
        // same id from eviction.
        let mut c = ReadCache::new(2);
        c.insert(ImageId(1));
        c.pin(ImageId(1));
        assert!(c.remove(ImageId(1)));
        c.insert(ImageId(1)); // fresh residency, no pins outstanding
        c.insert(ImageId(2));
        let evicted = c.insert(ImageId(3));
        assert_eq!(evicted, ids(&[1]), "re-inserted image must be evictable");
    }

    #[test]
    fn lru_order_walks_cold_to_hot() {
        let mut c = ReadCache::new(4);
        for i in [3u64, 1, 4, 2] {
            c.insert(ImageId(i));
        }
        c.touch(ImageId(4));
        let order: Vec<ImageId> = c.lru_order().collect();
        assert_eq!(order, ids(&[3, 1, 2, 4]));
    }

    #[test]
    fn slab_recycles_after_heavy_churn() {
        // The slab must not grow proportionally to total inserts, only
        // to peak residency.
        let mut c = ReadCache::new(8);
        for i in 0..10_000u64 {
            c.insert(ImageId(i));
            if i % 3 == 0 {
                c.remove(ImageId(i));
            }
        }
        assert!(c.len() <= 8);
        assert!(
            c.nodes.len() <= 16,
            "slab grew to {} nodes for capacity 8",
            c.nodes.len()
        );
    }
}
