//! System configuration.

use ros_drive::DiscClass;
use ros_mech::RackLayout;
use serde::{Deserialize, Serialize};

/// Disc-array redundancy schema (§4.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redundancy {
    /// No parity discs (every disc is data).
    None,
    /// 11 data + 1 parity per 12-disc array; array error rate ~1e-23.
    Raid5,
    /// 10 data + 2 parity per 12-disc array; array error rate ~1e-40.
    Raid6,
}

impl Redundancy {
    /// Number of parity images per disc array.
    pub fn parity_discs(self) -> u32 {
        match self {
            Redundancy::None => 0,
            Redundancy::Raid5 => 1,
            Redundancy::Raid6 => 2,
        }
    }

    /// Number of data images per array of `array_size` discs.
    pub fn data_discs(self, array_size: u32) -> u32 {
        array_size - self.parity_discs()
    }

    /// How many lost discs per array the schema tolerates.
    pub fn tolerated_losses(self) -> u32 {
        self.parity_discs()
    }

    /// Order-of-magnitude array error rate given a per-disc sector error
    /// rate (§4.7's 1e-16 → 1e-23 / 1e-40 argument: an array is lost only
    /// if more discs fail than the parity covers, and failure
    /// probabilities multiply).
    pub fn array_error_rate(self, disc_rate: f64, array_size: u32) -> f64 {
        let k = self.tolerated_losses() + 1;
        // C(n, k) ways to pick the failing discs.
        let n = array_size as f64;
        let mut comb = 1.0;
        for i in 0..k {
            comb = comb * (n - i as f64) / (i as f64 + 1.0);
        }
        comb * disc_rate.powi(i32::try_from(k).unwrap_or(i32::MAX))
    }
}

/// Read policy when every drive is busy burning (§4.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusyReadPolicy {
    /// Wait for a burn to finish (minutes to more than an hour).
    Wait,
    /// Interrupt the burn, serve the read, re-load and append-burn the
    /// interrupted array afterwards.
    InterruptBurn,
}

/// Full system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RosConfig {
    /// Mechanical rack layout.
    pub layout: RackLayout,
    /// Disc class populating the rollers.
    pub disc_class: DiscClass,
    /// Number of drive bays (sets of 12 drives); the prototype has 2
    /// (24 drives), a full rack up to 4 (§3.2).
    pub drive_bays: usize,
    /// Drives per bay.
    pub drives_per_bay: usize,
    /// Redundancy schema for disc arrays.
    pub redundancy: Redundancy,
    /// Number of open buckets kept ready (§4.3: "a couple of updatable
    /// buckets").
    pub open_buckets: usize,
    /// Read-cache capacity in disc images (§4.1: LRU over images).
    pub read_cache_images: usize,
    /// Forepart bytes stored inline in index files; 0 disables (§4.8).
    pub forepart_bytes: u64,
    /// Behaviour when a cold read finds all drives burning.
    pub busy_read_policy: BusyReadPolicy,
    /// Schedule the four §4.7 I/O streams onto separate RAID volumes.
    pub separate_volumes: bool,
    /// Prefetch the whole loaded array into the read cache after a
    /// fetch (§4.1's suggested refinement: "the read cache also can ...
    /// prefetch some files according to specific access patterns" —
    /// here, spatial locality across the array's sibling images).
    pub prefetch_array: bool,
    /// Burn with the forced write-and-check mode (§4.7: "almost halves
    /// the actual write throughput"); the paper's design keeps this off
    /// and relies on system-level redundancy instead.
    pub write_and_check: bool,
    /// Periodic idle-time scrub interval (§4.7: "disc sector-error
    /// checking can be scheduled at idle times"); `None` disables the
    /// scheduler (scrubs can still be run via the maintenance
    /// interface).
    pub scrub_interval: Option<ros_sim::SimDuration>,
    /// RNG seed for all stochastic behaviour.
    pub seed: u64,
    /// Identity of this rack within a multi-rack deployment (§6 prices
    /// whole racks as the unit of growth). Standalone racks use 0; a
    /// cluster front end assigns each member a distinct id and the value
    /// is surfaced through [`crate::maintenance::SystemStatus`] so
    /// aggregated status reports stay attributable.
    pub rack_id: u32,
    /// Worker threads for the real-bytes data plane (parity encode,
    /// scrub verification, recovery reconstruction). `0` auto-detects
    /// available parallelism capped at 8. The plane is deterministic:
    /// results are byte-identical at any setting (DESIGN.md §12), so
    /// this knob trades wall-clock only, never behaviour.
    #[serde(default)]
    pub data_plane_threads: usize,
    /// Content-addressable dedup on the write path (DESIGN.md §14).
    /// When enabled, payloads whose `ros-cas` content digest matches an
    /// already-stored object share that object's bucket residency and
    /// burn instead of being placed again. Off by default: dedup changes
    /// placement, so existing workload traces only opt in explicitly.
    #[serde(default)]
    pub dedup: bool,
    /// LOCKSS-style sampled audit: how many images each scheduled scrub
    /// tick digest-verifies end to end (buffer copies *and* burned
    /// in-tray tracks), repairing latent rot through the redundancy
    /// ladder (DESIGN.md §16). 0 disables the sampled audit; the scan
    /// and any repairs are charged to the sim clock, so audit bandwidth
    /// competes with foreground traffic.
    #[serde(default)]
    pub audit_sample_images: usize,
}

impl RosConfig {
    /// The paper's prototype: 2 rollers of 6120 × 100 GB discs, 24
    /// drives, 2 SSDs + 14 HDDs (§5.1) — 1.16 PB total after parity.
    pub fn prototype() -> Self {
        RosConfig {
            layout: RackLayout::default(),
            disc_class: DiscClass::Bd100,
            drive_bays: 2,
            drives_per_bay: 12,
            redundancy: Redundancy::Raid5,
            open_buckets: 4,
            read_cache_images: 500,
            forepart_bytes: crate::params::FOREPART_BYTES,
            busy_read_policy: BusyReadPolicy::Wait,
            separate_volumes: true,
            prefetch_array: false,
            write_and_check: false,
            scrub_interval: Some(ros_sim::SimDuration::from_secs(7 * 24 * 3600)),
            seed: 0x20170423, // EuroSys'17 opening day.
            rack_id: 0,
            data_plane_threads: 0,
            dedup: false,
            audit_sample_images: 0,
        }
    }

    /// A scaled-down configuration for tests and examples: tiny rack,
    /// 4 MB discs, small cache. The *timing models* are unchanged — only
    /// capacities shrink.
    pub fn tiny() -> Self {
        RosConfig {
            layout: RackLayout::tiny(),
            disc_class: DiscClass::Custom {
                capacity: 4 * 1024 * 1024,
            },
            drive_bays: 1,
            drives_per_bay: 12,
            redundancy: Redundancy::Raid5,
            open_buckets: 2,
            read_cache_images: 4,
            forepart_bytes: 4 * 1024,
            busy_read_policy: BusyReadPolicy::Wait,
            separate_volumes: true,
            prefetch_array: false,
            write_and_check: false,
            scrub_interval: None,
            seed: 42,
            rack_id: 0,
            data_plane_threads: 0,
            dedup: false,
            audit_sample_images: 0,
        }
    }

    /// Discs per array (= discs per tray).
    pub fn array_size(&self) -> u32 {
        self.layout.discs_per_tray
    }

    /// Data images needed to fill one array.
    pub fn data_discs_per_array(&self) -> u32 {
        self.redundancy.data_discs(self.array_size())
    }

    /// Raw capacity of the whole rack in bytes.
    pub fn raw_capacity(&self) -> u64 {
        self.layout.total_discs() as u64 * self.disc_class.capacity()
    }

    /// Usable capacity after parity overhead.
    pub fn usable_capacity(&self) -> u64 {
        let data = self.data_discs_per_array() as u64;
        let total = self.array_size() as u64;
        self.raw_capacity() / total * data
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), crate::error::OlfsError> {
        let invalid = |m: String| crate::error::OlfsError::Invalid(m);
        if self.drive_bays == 0 || self.drives_per_bay == 0 {
            return Err(invalid(
                "at least one drive bay with one drive required".into(),
            ));
        }
        if self.drives_per_bay != self.layout.discs_per_tray as usize {
            return Err(invalid(format!(
                "drives per bay ({}) must match discs per tray ({})",
                self.drives_per_bay, self.layout.discs_per_tray
            )));
        }
        if self.redundancy.parity_discs() >= self.array_size() {
            return Err(invalid("parity discs must leave room for data".into()));
        }
        if self.open_buckets == 0 {
            return Err(invalid("need at least one open bucket".into()));
        }
        if self.disc_class.capacity() == 0 {
            return Err(invalid("disc capacity must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_is_a_pb_system() {
        let c = RosConfig::prototype();
        c.validate().unwrap();
        // §5.1: "the ROS prototype has a total capacity of 1.16 PB".
        let pb = c.raw_capacity() as f64 / 1e15;
        assert!((pb - 1.22).abs() < 0.05, "raw = {pb:.2} PB");
        let usable = c.usable_capacity() as f64 / 1e15;
        assert!((usable - 1.12).abs() < 0.05, "usable = {usable:.2} PB");
    }

    #[test]
    fn tiny_validates() {
        RosConfig::tiny().validate().unwrap();
    }

    #[test]
    fn validation_catches_mistakes() {
        let mut c = RosConfig::tiny();
        c.drive_bays = 0;
        assert!(c.validate().is_err());
        let mut c = RosConfig::tiny();
        c.drives_per_bay = 6;
        assert!(c.validate().is_err());
        let mut c = RosConfig::tiny();
        c.open_buckets = 0;
        assert!(c.validate().is_err());
        let mut c = RosConfig::tiny();
        c.disc_class = DiscClass::Custom { capacity: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn redundancy_arithmetic() {
        assert_eq!(Redundancy::Raid5.data_discs(12), 11);
        assert_eq!(Redundancy::Raid6.data_discs(12), 10);
        assert_eq!(Redundancy::None.data_discs(12), 12);
        assert_eq!(Redundancy::Raid5.tolerated_losses(), 1);
        assert_eq!(Redundancy::Raid6.tolerated_losses(), 2);
    }

    #[test]
    fn error_rates_match_section_4_7() {
        // §4.7: disc rate 1e-16 → RAID-5 array ~1e-23 wait, the paper
        // says "about 10^-23"; C(12,2)*1e-32 = 6.6e-31. The paper's 1e-23
        // arises from its own sector-level model; we check orders of
        // magnitude relative improvement instead: RAID-6 must be
        // dramatically safer than RAID-5, which must beat bare discs.
        let bare = Redundancy::None.array_error_rate(1e-16, 12);
        let r5 = Redundancy::Raid5.array_error_rate(1e-16, 12);
        let r6 = Redundancy::Raid6.array_error_rate(1e-16, 12);
        assert!(bare > 1e-16 / 2.0);
        assert!(r5 < bare * 1e-10);
        assert!(r6 < r5 * 1e-10);
    }
}
