//! Operation traces — the instrumentation behind Figure 7.
//!
//! §5.2: "To accurately measure the I/O latency caused by OLFS precisely,
//! we add timestamps in OLFS code to trace the internal OLFS operation".
//! Every POSIX-level operation records its internal steps (stat, mknod,
//! write, read, close...) with durations; the kernel-user switches between
//! consecutive steps are charged on top.

use crate::params;
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One internal OLFS operation within a POSIX call.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpStep {
    /// Step name ("stat", "mknod", "write", "read", "close"...).
    pub name: String,
    /// Time inside the step (device time + per-op overhead).
    pub duration: SimDuration,
}

/// The trace of one POSIX-level operation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    /// Steps in execution order.
    pub steps: Vec<OpStep>,
    /// Extra time charged outside internal steps (e.g. SMB round trips,
    /// mechanical waits); labelled for the report.
    pub extra: Vec<OpStep>,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        OpTrace::default()
    }

    /// Records an internal step: the device time plus the per-operation
    /// FUSE/direct-I/O overhead of §5.3.
    pub fn step(&mut self, name: &str, device_time: SimDuration) -> SimDuration {
        let duration = params::internal_op_overhead() + device_time;
        self.steps.push(OpStep {
            name: name.to_string(),
            duration,
        });
        duration
    }

    /// Records extra non-step time (mechanical fetch, SMB overhead...).
    pub fn extra(&mut self, name: &str, duration: SimDuration) {
        self.extra.push(OpStep {
            name: name.to_string(),
            duration,
        });
    }

    /// Number of kernel-user switches: one between each pair of
    /// consecutive internal steps.
    pub fn switches(&self) -> u64 {
        self.steps.len().saturating_sub(1) as u64
    }

    /// Total latency: steps + switches + extra.
    pub fn total(&self) -> SimDuration {
        let steps: SimDuration = self.steps.iter().map(|s| s.duration).sum();
        let extra: SimDuration = self.extra.iter().map(|s| s.duration).sum();
        steps + params::kernel_user_switch() * self.switches() + extra
    }

    /// The step names in order (Figure 7's x-axis).
    pub fn step_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.name.as_str()).collect()
    }

    /// Counts steps with a given name.
    pub fn count(&self, name: &str) -> usize {
        self.steps.iter().filter(|s| s.name == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_olfs_write_sequence() {
        // stat, mknod, stat, write, close — §5.3's five internal ops.
        let mut t = OpTrace::new();
        for name in ["stat", "mknod", "stat", "write", "close"] {
            let device = if name == "write" {
                crate::params::bucket_write_device()
            } else {
                SimDuration::ZERO
            };
            t.step(name, device);
        }
        assert_eq!(t.switches(), 4);
        let ms = t.total().as_millis_f64();
        assert!((ms - 16.0).abs() < 0.5, "OLFS write = {ms} ms, paper: 16");
    }

    #[test]
    fn figure7_olfs_read_sequence() {
        let mut t = OpTrace::new();
        for name in ["stat", "read", "close"] {
            let device = if name == "read" {
                crate::params::bucket_read_device()
            } else {
                SimDuration::ZERO
            };
            t.step(name, device);
        }
        assert_eq!(t.switches(), 2);
        let ms = t.total().as_millis_f64();
        assert!((ms - 9.0).abs() < 0.5, "OLFS read = {ms} ms, paper: 9");
    }

    #[test]
    fn device_time_adds_on_top() {
        let mut t = OpTrace::new();
        t.step("read", SimDuration::from_millis(100));
        assert!(t.total() >= SimDuration::from_millis(100));
        assert_eq!(t.switches(), 0);
    }

    #[test]
    fn extra_time_is_counted_but_not_switched() {
        let mut t = OpTrace::new();
        t.step("stat", SimDuration::ZERO);
        t.extra("mechanical fetch", SimDuration::from_secs(70));
        let total = t.total().as_secs_f64();
        assert!(total > 70.0 && total < 70.1);
        assert_eq!(t.switches(), 0);
    }

    #[test]
    fn counting_and_names() {
        let mut t = OpTrace::new();
        for name in ["stat", "stat", "mknod", "stat", "write", "close"] {
            t.step(name, SimDuration::ZERO);
        }
        assert_eq!(t.count("stat"), 3);
        assert_eq!(t.count("write"), 1);
        assert_eq!(t.step_names()[2], "mknod");
    }
}
