//! Unified OLFS error type.

use crate::ids::{ArrayId, DiscId, ImageId};
use ros_disk::volume::VolumeError;
use ros_drive::media::MediaError;
use ros_drive::DriveError;
use ros_mech::ops::MechError;
use ros_udf::bucket::BucketError;
use ros_udf::tree::TreeError;

/// Any error OLFS can surface to a caller.
#[derive(Clone, Debug, PartialEq)]
pub enum OlfsError {
    /// The path does not exist in the global namespace.
    NotFound(String),
    /// A file already exists at the path.
    AlreadyExists(String),
    /// Invalid path or argument.
    Invalid(String),
    /// The requested version of a file is no longer recorded.
    VersionGone {
        /// The file path.
        path: String,
        /// The requested version.
        version: u32,
    },
    /// An image is referenced but cannot be located anywhere.
    ImageLost(ImageId),
    /// A disc cannot be read and redundancy cannot repair it.
    Unrecoverable {
        /// The damaged image.
        image: ImageId,
        /// Its array, if assigned.
        array: Option<ArrayId>,
    },
    /// No drive bay can serve a fetch and the policy forbids waiting.
    NoDriveAvailable,
    /// No empty disc array remains for burning.
    OutOfDiscs,
    /// The write buffer is out of space.
    BufferFull,
    /// Mechanical failure.
    Mech(String),
    /// Optical drive failure.
    Drive(String),
    /// Disk volume failure.
    Volume(String),
    /// Media failure naming the disc.
    Media {
        /// The failing disc.
        disc: DiscId,
        /// The underlying error text.
        detail: String,
    },
    /// UDF bucket/tree failure.
    Udf(String),
    /// System is in a state that forbids the operation.
    BadState(String),
    /// A transient fault (servo glitch, mechanical misfeed, drive being
    /// rerouted around); the same operation may succeed on retry.
    Transient(String),
    /// A supervised operation ran out of retry budget; `last` is the
    /// transient error from the final attempt.
    RetriesExhausted {
        /// The supervised operation ("read", "write", ...).
        op: String,
        /// Attempts performed before giving up.
        attempts: u32,
        /// The last transient failure.
        last: Box<OlfsError>,
    },
}

impl core::fmt::Display for OlfsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OlfsError::NotFound(p) => write!(f, "not found: {p}"),
            OlfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            OlfsError::Invalid(m) => write!(f, "invalid: {m}"),
            OlfsError::VersionGone { path, version } => {
                write!(f, "version {version} of {path} is no longer recorded")
            }
            OlfsError::ImageLost(i) => write!(f, "image {i} lost"),
            OlfsError::Unrecoverable { image, array } => {
                write!(f, "image {image} unrecoverable (array {array:?})")
            }
            OlfsError::NoDriveAvailable => write!(f, "no drive available"),
            OlfsError::OutOfDiscs => write!(f, "no empty disc arrays remain"),
            OlfsError::BufferFull => write!(f, "disk write buffer full"),
            OlfsError::Mech(m) => write!(f, "mechanical: {m}"),
            OlfsError::Drive(m) => write!(f, "drive: {m}"),
            OlfsError::Volume(m) => write!(f, "volume: {m}"),
            OlfsError::Media { disc, detail } => write!(f, "disc {disc}: {detail}"),
            OlfsError::Udf(m) => write!(f, "udf: {m}"),
            OlfsError::BadState(m) => write!(f, "bad state: {m}"),
            OlfsError::Transient(m) => write!(f, "transient: {m}"),
            OlfsError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for OlfsError {}

impl From<MechError> for OlfsError {
    fn from(e: MechError) -> Self {
        match e {
            MechError::Transient(_) => OlfsError::Transient(e.to_string()),
            other => OlfsError::Mech(other.to_string()),
        }
    }
}

impl From<DriveError> for OlfsError {
    fn from(e: DriveError) -> Self {
        match e {
            DriveError::TransientRead => OlfsError::Transient(e.to_string()),
            other => OlfsError::Drive(other.to_string()),
        }
    }
}

/// Only [`OlfsError::Transient`] is worth a bounded retry; everything
/// else is either a hard fault or a semantic error.
impl ros_faults::Transience for OlfsError {
    fn is_transient(&self) -> bool {
        matches!(self, OlfsError::Transient(_))
    }
}

impl From<VolumeError> for OlfsError {
    fn from(e: VolumeError) -> Self {
        OlfsError::Volume(e.to_string())
    }
}

impl From<BucketError> for OlfsError {
    fn from(e: BucketError) -> Self {
        OlfsError::Udf(e.to_string())
    }
}

impl From<TreeError> for OlfsError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::NotFound(p) => OlfsError::NotFound(p),
            TreeError::AlreadyExists(p) => OlfsError::AlreadyExists(p),
            other => OlfsError::Udf(other.to_string()),
        }
    }
}

impl OlfsError {
    /// Wraps a media error with its disc id.
    pub fn media(disc: DiscId, e: MediaError) -> Self {
        OlfsError::Media {
            disc,
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_meaning() {
        let e: OlfsError = TreeError::NotFound("/x".into()).into();
        assert_eq!(e, OlfsError::NotFound("/x".into()));
        let e: OlfsError = TreeError::AlreadyExists("/y".into()).into();
        assert_eq!(e, OlfsError::AlreadyExists("/y".into()));
        let e: OlfsError = TreeError::InvalidPath("zzz".into()).into();
        assert!(matches!(e, OlfsError::Udf(_)));
    }

    #[test]
    fn displays_are_informative() {
        let e = OlfsError::VersionGone {
            path: "/a".into(),
            version: 3,
        };
        assert!(e.to_string().contains("version 3"));
        assert!(OlfsError::ImageLost(ImageId(9)).to_string().contains('9'));
    }
}
