//! Delayed parity generation and disc-array reconstruction (§4.7).
//!
//! "OLFS does not generate parity data synchronously when data are written
//! into images. On the contrary, parity disc images are generated only
//! when all data disc images in the same disc array have been prepared...
//! Note that the parity image is not a UDF volume."
//!
//! Parity is computed over the *raw serialized bytes* of the data images,
//! zero-padded to the longest member (burned images are physically
//! zero-filled past their used region anyway). Reconstruction therefore
//! recovers the exact image bytes, which re-parse into the exact file
//! tree — verified end to end in the tests.

use crate::config::Redundancy;
use bytes::Bytes;
use ros_cas::{verify_payload, Digest};
use ros_disk::parity::{self, ParityError};
use ros_disk::plane::DataPlane;

/// Parity payloads for one disc array.
#[derive(Clone, Debug, PartialEq)]
pub struct ParitySet {
    /// XOR parity (present for RAID-5 and RAID-6).
    pub p: Option<Bytes>,
    /// Reed-Solomon Q parity (RAID-6 only).
    pub q: Option<Bytes>,
    /// Length every member was padded to.
    pub stripe_len: usize,
}

/// Errors from redundancy operations.
#[derive(Clone, Debug, PartialEq)]
pub enum RedundancyError {
    /// Underlying parity math failed.
    Parity(ParityError),
    /// Losses exceed what the schema tolerates.
    TooManyLost {
        /// Missing member count.
        lost: usize,
        /// Tolerated count.
        tolerated: usize,
    },
    /// No members supplied.
    Empty,
    /// A reconstructed member's content digest disagrees with the
    /// expected one — the surviving inputs were themselves corrupt.
    DigestMismatch {
        /// Index of the failing member.
        member: usize,
    },
}

impl From<ParityError> for RedundancyError {
    fn from(e: ParityError) -> Self {
        RedundancyError::Parity(e)
    }
}

impl core::fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RedundancyError::Parity(e) => write!(f, "parity: {e}"),
            RedundancyError::TooManyLost { lost, tolerated } => {
                write!(f, "{lost} members lost, {tolerated} tolerated")
            }
            RedundancyError::Empty => write!(f, "no members"),
            RedundancyError::DigestMismatch { member } => {
                write!(
                    f,
                    "reconstructed member {member} failed digest verification"
                )
            }
        }
    }
}

impl std::error::Error for RedundancyError {}

fn pad_to(data: &[u8], len: usize) -> Vec<u8> {
    let mut v = data.to_vec();
    v.resize(len, 0);
    v
}

/// Generates the parity payload(s) for a prepared set of data images.
///
/// Returns `ParitySet { p: None, q: None, .. }` for [`Redundancy::None`].
pub fn generate(schema: Redundancy, data_images: &[&[u8]]) -> Result<ParitySet, RedundancyError> {
    generate_with(schema, data_images, &DataPlane::single())
}

/// [`generate`] on a data plane: the ragged kernels treat short members
/// as zero-filled to the longest, so no padded copies are allocated, and
/// RAID-6 computes P and Q in one fused pass over each image.
pub fn generate_with(
    schema: Redundancy,
    data_images: &[&[u8]],
    plane: &DataPlane,
) -> Result<ParitySet, RedundancyError> {
    if data_images.is_empty() {
        return Err(RedundancyError::Empty);
    }
    let stripe_len = data_images.iter().map(|d| d.len()).max().unwrap_or(0);
    if schema == Redundancy::None {
        return Ok(ParitySet {
            p: None,
            q: None,
            stripe_len,
        });
    }
    let (p, q) = match schema {
        Redundancy::Raid6 => {
            let (p, q) = parity::encode_pq_padded_with(data_images, plane)?;
            (Bytes::from(p), Some(Bytes::from(q)))
        }
        _ => (
            Bytes::from(parity::parity_p_padded_with(data_images, plane)?),
            None,
        ),
    };
    // Debug builds re-verify the freshly generated parity group before it
    // is handed to the burn pipeline; compiled out in release. The check
    // runs against explicitly padded members — the invariant the burn
    // pipeline relies on — so the padding cost exists in debug only.
    #[cfg(debug_assertions)]
    {
        let padded: Vec<Vec<u8>> = data_images.iter().map(|d| pad_to(d, stripe_len)).collect();
        let refs: Vec<&[u8]> = padded.iter().map(|v| v.as_slice()).collect();
        parity::debug_assert_group(&refs, &p, q.as_deref());
    }
    Ok(ParitySet {
        p: Some(p),
        q,
        stripe_len,
    })
}

/// Reconstructs lost data images from the survivors plus parity.
///
/// `data[i] = None` marks a lost member; `sizes[i]` gives each member's
/// original (unpadded) length so recovered payloads are trimmed back.
/// Returns the full data set.
pub fn reconstruct(
    schema: Redundancy,
    data: &[Option<&[u8]>],
    sizes: &[usize],
    p: Option<&[u8]>,
    q: Option<&[u8]>,
) -> Result<Vec<Bytes>, RedundancyError> {
    reconstruct_with(schema, data, sizes, p, q, &DataPlane::single())
}

/// [`reconstruct`] on a data plane.
pub fn reconstruct_with(
    schema: Redundancy,
    data: &[Option<&[u8]>],
    sizes: &[usize],
    p: Option<&[u8]>,
    q: Option<&[u8]>,
    plane: &DataPlane,
) -> Result<Vec<Bytes>, RedundancyError> {
    assert_eq!(data.len(), sizes.len(), "one size per member");
    let lost = data.iter().filter(|d| d.is_none()).count();
    let tolerated = schema.tolerated_losses() as usize;
    if lost > tolerated {
        return Err(RedundancyError::TooManyLost { lost, tolerated });
    }
    if lost == 0 {
        return Ok(data
            .iter()
            .flatten()
            .map(|d| Bytes::copy_from_slice(d))
            .collect());
    }
    let stripe_len = p
        .map(<[u8]>::len)
        .or(q.map(<[u8]>::len))
        .or_else(|| data.iter().flatten().map(|d| d.len()).max())
        .ok_or(RedundancyError::Empty)?;
    let padded: Vec<Option<Vec<u8>>> = data
        .iter()
        .map(|d| d.map(|d| pad_to(d, stripe_len)))
        .collect();
    let masked: Vec<Option<&[u8]>> = padded.iter().map(|d| d.as_deref()).collect();
    let recovered: Vec<Vec<u8>> = match schema {
        Redundancy::None => {
            return Err(RedundancyError::TooManyLost { lost, tolerated: 0 });
        }
        Redundancy::Raid5 => parity::reconstruct_p_with(&masked, p, plane)?.0,
        Redundancy::Raid6 => parity::reconstruct_pq_with(&masked, p, q, plane)?.0,
    };
    Ok(recovered
        .into_iter()
        .zip(sizes.iter())
        .map(|(mut v, &len)| {
            v.truncate(len);
            Bytes::from(v)
        })
        .collect())
}

/// Content digests of a parity group's members, hashed on the plane.
///
/// Captured at parity-generation time, these pin the exact bytes the
/// parity covers; [`reconstruct_verified`] checks recovered members
/// against them so silent corruption of a *survivor* cannot masquerade
/// as a successful reconstruction.
pub fn member_digests(data_images: &[&[u8]], plane: &DataPlane) -> Vec<Digest> {
    plane.map(data_images, |d| {
        ros_cas::content_digest(d, &DataPlane::single())
    })
}

/// [`reconstruct_with`], then verifies every member against the digests
/// captured by [`member_digests`] at generation time.
pub fn reconstruct_verified(
    schema: Redundancy,
    data: &[Option<&[u8]>],
    sizes: &[usize],
    p: Option<&[u8]>,
    q: Option<&[u8]>,
    expected: &[Digest],
    plane: &DataPlane,
) -> Result<Vec<Bytes>, RedundancyError> {
    let recovered = reconstruct_with(schema, data, sizes, p, q, plane)?;
    for (i, (member, digest)) in recovered.iter().zip(expected.iter()).enumerate() {
        if verify_payload(digest, member, plane).is_err() {
            return Err(RedundancyError::DigestMismatch { member: i });
        }
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn images() -> Vec<Vec<u8>> {
        // Realistically ragged lengths.
        (0..11u8)
            .map(|i| {
                (0..(500 + i as usize * 37))
                    .map(|j| i.wrapping_mul(31) ^ (j as u8))
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<u8>]) -> Vec<&[u8]> {
        v.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn raid5_round_trip_any_single_loss() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let set = generate(Redundancy::Raid5, &refs(&imgs)).unwrap();
        assert!(set.p.is_some() && set.q.is_none());
        for lost in 0..imgs.len() {
            let masked: Vec<Option<&[u8]>> = imgs
                .iter()
                .enumerate()
                .map(|(i, d)| (i != lost).then_some(d.as_slice()))
                .collect();
            let rec =
                reconstruct(Redundancy::Raid5, &masked, &sizes, set.p.as_deref(), None).unwrap();
            for (r, orig) in rec.iter().zip(imgs.iter()) {
                assert_eq!(r.as_ref(), orig.as_slice());
            }
        }
    }

    #[test]
    fn raid6_round_trip_any_double_loss() {
        let imgs: Vec<Vec<u8>> = images().into_iter().take(10).collect();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let set = generate(Redundancy::Raid6, &refs(&imgs)).unwrap();
        assert!(set.p.is_some() && set.q.is_some());
        for x in 0..imgs.len() {
            for y in (x + 1)..imgs.len() {
                let masked: Vec<Option<&[u8]>> = imgs
                    .iter()
                    .enumerate()
                    .map(|(i, d)| (i != x && i != y).then_some(d.as_slice()))
                    .collect();
                let rec = reconstruct(
                    Redundancy::Raid6,
                    &masked,
                    &sizes,
                    set.p.as_deref(),
                    set.q.as_deref(),
                )
                .unwrap();
                for (r, orig) in rec.iter().zip(imgs.iter()) {
                    assert_eq!(r.as_ref(), orig.as_slice());
                }
            }
        }
    }

    #[test]
    fn generate_and_reconstruct_are_thread_count_invariant() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let expect = generate(Redundancy::Raid6, &refs(&imgs)).unwrap();
        let mut masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        masked[2] = None;
        masked[9] = None;
        let expect_rec = reconstruct(
            Redundancy::Raid6,
            &masked,
            &sizes,
            expect.p.as_deref(),
            expect.q.as_deref(),
        )
        .unwrap();
        for threads in [2, 4] {
            let plane = DataPlane::new(threads);
            let got = generate_with(Redundancy::Raid6, &refs(&imgs), &plane).unwrap();
            assert_eq!(got, expect, "threads={threads}");
            let rec = reconstruct_with(
                Redundancy::Raid6,
                &masked,
                &sizes,
                got.p.as_deref(),
                got.q.as_deref(),
                &plane,
            )
            .unwrap();
            assert_eq!(rec, expect_rec, "threads={threads}");
        }
    }

    #[test]
    fn raid5_rejects_double_loss() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let set = generate(Redundancy::Raid5, &refs(&imgs)).unwrap();
        let mut masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        masked[0] = None;
        masked[1] = None;
        assert!(matches!(
            reconstruct(Redundancy::Raid5, &masked, &sizes, set.p.as_deref(), None).unwrap_err(),
            RedundancyError::TooManyLost {
                lost: 2,
                tolerated: 1
            }
        ));
    }

    #[test]
    fn none_schema_has_no_parity_and_no_recovery() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let set = generate(Redundancy::None, &refs(&imgs)).unwrap();
        assert!(set.p.is_none() && set.q.is_none());
        let mut masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        masked[3] = None;
        assert!(matches!(
            reconstruct(Redundancy::None, &masked, &sizes, None, None).unwrap_err(),
            RedundancyError::TooManyLost { .. }
        ));
    }

    #[test]
    fn no_loss_is_identity() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        let rec = reconstruct(Redundancy::Raid5, &masked, &sizes, None, None).unwrap();
        for (r, orig) in rec.iter().zip(imgs.iter()) {
            assert_eq!(r.as_ref(), orig.as_slice());
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            generate(Redundancy::Raid5, &[]).unwrap_err(),
            RedundancyError::Empty
        ));
    }

    #[test]
    fn verified_reconstruction_catches_corrupt_survivors() {
        let imgs = images();
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let plane = DataPlane::single();
        let set = generate(Redundancy::Raid5, &refs(&imgs)).unwrap();
        let digests = member_digests(&refs(&imgs), &plane);
        assert_eq!(digests.len(), imgs.len());

        // Clean single-loss reconstruction passes verification.
        let mut masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        masked[4] = None;
        let rec = reconstruct_verified(
            Redundancy::Raid5,
            &masked,
            &sizes,
            set.p.as_deref(),
            None,
            &digests,
            &plane,
        )
        .unwrap();
        assert_eq!(rec[4].as_ref(), imgs[4].as_slice());

        // Flip one byte in a *survivor*: parity math still "succeeds",
        // but the digest check names the poisoned reconstruction.
        let mut corrupt = imgs.clone();
        corrupt[0][10] ^= 0xff;
        let masked: Vec<Option<&[u8]>> = corrupt
            .iter()
            .enumerate()
            .map(|(i, d)| (i != 4).then_some(d.as_slice()))
            .collect();
        let err = reconstruct_verified(
            Redundancy::Raid5,
            &masked,
            &sizes,
            set.p.as_deref(),
            None,
            &digests,
            &plane,
        )
        .unwrap_err();
        assert!(matches!(err, RedundancyError::DigestMismatch { .. }));
    }

    #[test]
    fn member_digests_are_thread_count_invariant() {
        let imgs = images();
        let expect = member_digests(&refs(&imgs), &DataPlane::single());
        for threads in [2, 4] {
            let got = member_digests(&refs(&imgs), &DataPlane::new(threads));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parity_image_is_not_a_udf_volume() {
        // §4.7: the parity payload need not parse as an image.
        let imgs = images();
        let set = generate(Redundancy::Raid5, &refs(&imgs)).unwrap();
        let p = set.p.unwrap();
        assert!(ros_udf::SealedImage::from_bytes(p).is_err());
    }
}
