//! Write-path deduplication over the `ros-cas` blob store (DESIGN.md
//! §14).
//!
//! The engine consults this layer before placing file data: a payload
//! whose content digest is already catalogued shares the canonical
//! copy's segments — one bucket residency, one parity charge, one burn —
//! instead of being placed again. The layer owns three maps:
//!
//! - a refcounted [`BlobStore`] keyed by content digest (the dedup
//!   accounting source of truth);
//! - a *catalog* from digest to the canonical placement (`segments`,
//!   `seg_sizes`, and the stored path inside the image tree);
//! - per-version bookkeeping: `(path, version) → digest` for unlink
//!   refcounting and `(path, version) → stored path` aliases so reads
//!   of a deduplicated version resolve to the canonical copy's bytes.
//!
//! Invariant: a version's payload may only be destroyed in place when
//! its digest has exactly one reference — the engine's in-place update
//! guard ([`DedupLayer::version_shared`]) forces a regenerating update
//! otherwise, so no alias ever points at overwritten bytes.

use crate::ids::ImageId;
use bytes::Bytes;
use ros_cas::{BlobStore, Digest};
use ros_disk::plane::DataPlane;
use ros_udf::UdfPath;
use std::collections::BTreeMap;

/// The canonical placement of a deduplicated payload.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Segment images holding the canonical copy, in order.
    pub segments: Vec<ImageId>,
    /// Per-segment payload sizes.
    pub seg_sizes: Vec<u64>,
    /// Stored path of the canonical copy inside its image tree(s).
    pub stored: UdfPath,
}

/// Dedup accounting snapshot (surfaced through the maintenance
/// interface and `repro perf`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DedupStats {
    /// Live deduplicated blobs.
    pub blobs: u64,
    /// Total references across blobs (catalogued versions).
    pub links: u64,
    /// Bytes as written by clients.
    pub logical_bytes: u64,
    /// Bytes actually resident/burned once.
    pub unique_bytes: u64,
    /// `logical / unique`; 1.0 when the store is empty.
    pub dedup_ratio: f64,
}

/// The engine-owned dedup state.
#[derive(Debug, Default)]
pub struct DedupLayer {
    store: BlobStore,
    catalog: BTreeMap<Digest, CatalogEntry>,
    /// `(path, version) → digest` for every catalogued version.
    versions: BTreeMap<(String, u32), Digest>,
    /// `(path, version) → canonical stored path` for dedup-hit versions
    /// whose bytes live under another file's stored path.
    aliases: BTreeMap<(String, u32), UdfPath>,
}

impl DedupLayer {
    /// An empty layer.
    pub fn new() -> Self {
        DedupLayer::default()
    }

    /// Canonical placement for a digest, if catalogued.
    pub fn lookup(&self, digest: &Digest) -> Option<&CatalogEntry> {
        self.catalog.get(digest)
    }

    /// Registers the canonical (first) copy of a payload: the blob is
    /// put into the store with one reference and the placement is
    /// catalogued under `digest`.
    pub fn record_canonical(
        &mut self,
        path: &UdfPath,
        version: u32,
        digest: Digest,
        data: &Bytes,
        entry: CatalogEntry,
    ) {
        self.store.put_prehashed(digest, data.clone());
        self.catalog.insert(digest, entry);
        self.versions.insert((path.to_string(), version), digest);
    }

    /// Records a dedup hit: `version` of `path` shares the canonical
    /// blob. Links one more reference and installs the read alias.
    /// Returns `false` (and records nothing) if the blob vanished — the
    /// caller then falls back to a normal placement.
    pub fn record_duplicate(
        &mut self,
        path: &UdfPath,
        version: u32,
        digest: Digest,
        stored: &UdfPath,
    ) -> bool {
        if self.store.link(&digest).is_err() {
            return false;
        }
        let key = (path.to_string(), version);
        self.versions.insert(key.clone(), digest);
        if stored != path {
            self.aliases.insert(key, stored.clone());
        }
        true
    }

    /// Canonical stored path serving `version` of `path`, when the
    /// version was a dedup hit against another file's bytes.
    pub fn alias(&self, path: &UdfPath, version: u32) -> Option<&UdfPath> {
        self.aliases.get(&(path.to_string(), version))
    }

    /// True when the digest behind `version` of `path` is referenced by
    /// more than one version — its bytes must not be updated in place.
    pub fn version_shared(&self, path: &UdfPath, version: u32) -> bool {
        self.versions
            .get(&(path.to_string(), version))
            .and_then(|d| self.store.refs(d))
            .map(|refs| refs > 1)
            .unwrap_or(false)
    }

    /// Drops `version` of `path` from the dedup accounting: unlinks its
    /// blob reference and, when the blob dies, retires the catalog
    /// entry. Called on in-place overwrites (the engine guarantees the
    /// digest was unshared) and per-version on unlink.
    pub fn invalidate_version(&mut self, path: &UdfPath, version: u32) {
        let key = (path.to_string(), version);
        self.aliases.remove(&key);
        let Some(digest) = self.versions.remove(&key) else {
            return;
        };
        if let Ok(0) = self.store.unlink(&digest) {
            self.catalog.remove(&digest);
        }
    }

    /// Drops every catalogued version of `path` (file unlink).
    pub fn on_unlink(&mut self, path: &UdfPath) {
        let prefix = path.to_string();
        let versions: Vec<u32> = self
            .versions
            .range((prefix.clone(), 0)..=(prefix, u32::MAX))
            .map(|((_, v), _)| *v)
            .collect();
        for v in versions {
            self.invalidate_version(path, v);
        }
    }

    /// Verifies a payload claimed to be `version` of `path` against its
    /// recorded digest, via the single `ros-cas` verify entry point.
    pub fn verify_version(
        &self,
        path: &UdfPath,
        version: u32,
        data: &[u8],
        plane: &DataPlane,
    ) -> Result<(), ros_cas::CasError> {
        match self.versions.get(&(path.to_string(), version)) {
            Some(digest) => ros_cas::verify_payload(digest, data, plane),
            None => Ok(()), // Not catalogued: nothing to verify against.
        }
    }

    /// The underlying blob store (read-only).
    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    /// Dedup accounting snapshot.
    pub fn stats(&self) -> DedupStats {
        let s = self.store.stats();
        DedupStats {
            blobs: s.blobs,
            links: s.links,
            logical_bytes: s.logical_bytes,
            unique_bytes: s.unique_bytes,
            dedup_ratio: s.dedup_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> DataPlane {
        DataPlane::single()
    }

    fn path(s: &str) -> UdfPath {
        // ros-analysis: allow(L2, test fixture paths are static literals)
        s.parse().unwrap()
    }

    #[test]
    fn duplicate_links_and_unlink_retires_catalog() {
        let mut layer = DedupLayer::new();
        let data = Bytes::from_static(b"shared payload bytes");
        let digest = ros_cas::content_digest(&data, &plane());
        let a = path("/a");
        let b = path("/b");
        layer.record_canonical(
            &a,
            1,
            digest,
            &data,
            CatalogEntry {
                segments: vec![ImageId(1)],
                seg_sizes: vec![data.len() as u64],
                stored: a.clone(),
            },
        );
        assert!(layer.lookup(&digest).is_some());
        assert!(layer.record_duplicate(&b, 1, digest, &a));
        assert_eq!(layer.alias(&b, 1), Some(&a));
        assert!(layer.alias(&a, 1).is_none(), "canonical has no alias");
        assert!(layer.version_shared(&a, 1) && layer.version_shared(&b, 1));
        assert!((layer.stats().dedup_ratio - 2.0).abs() < 1e-12);

        layer.on_unlink(&b);
        assert!(!layer.version_shared(&a, 1));
        assert!(layer.lookup(&digest).is_some(), "canonical still live");
        layer.invalidate_version(&a, 1);
        assert!(layer.lookup(&digest).is_none(), "dead blob leaves catalog");
        assert_eq!(layer.stats().blobs, 0);
    }

    #[test]
    fn verify_version_checks_recorded_digest() {
        let mut layer = DedupLayer::new();
        let data = Bytes::from_static(b"payload");
        let digest = ros_cas::content_digest(&data, &plane());
        let a = path("/a");
        layer.record_canonical(
            &a,
            1,
            digest,
            &data,
            CatalogEntry {
                segments: vec![ImageId(7)],
                seg_sizes: vec![7],
                stored: a.clone(),
            },
        );
        assert!(layer.verify_version(&a, 1, &data, &plane()).is_ok());
        assert!(layer.verify_version(&a, 1, b"tampered", &plane()).is_err());
        // Uncatalogued versions are vacuously fine.
        assert!(layer.verify_version(&a, 9, b"anything", &plane()).is_ok());
    }
}
