//! Disc Image Management (DIM): the image store, DAindex and DILindex.
//!
//! §4.1: "OLFS defines a disc array index DAindex to maintain the state of
//! each disc array in one of the three states, 'Empty', 'Used', 'Failed'...
//! OLFS also uses a disc image location index DILindex to record each disc
//! image identifier and its own physical location."
//!
//! The store tracks every image through its life: sealed on the disk
//! buffer → grouped into a disc array → parity generated → burned → (disk
//! copy evicted or retained by the read cache). The physical discs
//! themselves live in the [`DiscRegistry`].

use crate::error::OlfsError;
use crate::ids::{ArrayId, DiscId, ImageId};
use bytes::Bytes;
use ros_cas::{content_digest, verify_payload, Digest};
use ros_disk::plane::DataPlane;
use ros_drive::media::{Disc, DiscClass, MediaKind};
use ros_mech::{RackLayout, SlotAddress};
use ros_udf::SealedImage;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Disc-array state in the DAindex (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaState {
    /// The tray holds blank discs.
    Empty,
    /// The tray's discs carry burned data.
    Used,
    /// A burn to this tray failed; its discs are suspect.
    Failed,
}

/// A burned image's physical location (a DILindex entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscLocation {
    /// The disc carrying the image.
    pub disc: DiscId,
    /// The tray the disc belongs to.
    pub slot: SlotAddress,
    /// Position within the tray (0 = bottom).
    pub position: u32,
}

/// Data vs parity image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImageKind {
    /// A UDF image holding files.
    Data,
    /// A parity payload (not a UDF volume, §4.7).
    Parity,
}

/// Lifecycle of a disc-array group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupState {
    /// Accumulating data images.
    Collecting,
    /// All data images present; parity generation scheduled/underway.
    ParityPending,
    /// Parity done; waiting for drives and an empty tray.
    ReadyToBurn,
    /// Burn in progress.
    Burning,
    /// On disc.
    Burned,
}

/// One disc-array group: the images burned together onto one tray.
#[derive(Clone, Debug)]
pub struct ArrayGroup {
    /// Group id.
    pub id: ArrayId,
    /// Data image ids in tray order.
    pub data: Vec<ImageId>,
    /// Parity image ids (0-2).
    pub parity: Vec<ImageId>,
    /// Lifecycle state.
    pub state: GroupState,
    /// Tray assigned at burn time.
    pub slot: Option<SlotAddress>,
}

/// One image's bookkeeping record.
#[derive(Clone, Debug)]
pub struct ImageInfo {
    /// The image id.
    pub id: ImageId,
    /// Data or parity.
    pub kind: ImageKind,
    /// Payload size in bytes.
    pub size: u64,
    /// 256-bit `ros-cas` content digest of the payload; every restore
    /// from disc re-verifies against it.
    pub digest: Digest,
    /// Parsed image while a disk copy exists (data images only),
    /// refcounted so readers share one parse instead of deep-cloning.
    pub sealed: Option<Arc<SealedImage>>,
    /// Raw payload while a disk copy exists.
    pub payload: Option<Bytes>,
    /// Physical location once burned.
    pub burned: Option<DiscLocation>,
    /// Owning array group.
    pub array: Option<ArrayId>,
}

impl ImageInfo {
    /// Returns true while a copy exists on the disk tier.
    pub fn on_disk(&self) -> bool {
        self.payload.is_some()
    }
}

/// The image store plus DAindex/DILindex.
#[derive(Debug, Default)]
pub struct ImageStore {
    images: BTreeMap<ImageId, ImageInfo>,
    groups: BTreeMap<ArrayId, ArrayGroup>,
    next_image: u64,
    next_group: u64,
    /// DAindex keyed by dense slot index.
    da_index: BTreeMap<u32, DaState>,
    /// Open group accumulating data images.
    collecting: Option<ArrayId>,
}

impl ImageStore {
    /// Creates an empty store with every tray Empty in the DAindex.
    pub fn new(layout: &RackLayout) -> Self {
        let mut da_index = BTreeMap::new();
        for i in 0..layout.total_slots() {
            da_index.insert(i, DaState::Empty);
        }
        ImageStore {
            images: BTreeMap::new(),
            groups: BTreeMap::new(),
            next_image: 1,
            next_group: 1,
            da_index,
            collecting: None,
        }
    }

    /// Allocates a fresh image id (for a new bucket).
    pub fn allocate_image_id(&mut self) -> ImageId {
        let id = ImageId(self.next_image);
        self.next_image += 1;
        id
    }

    /// Looks up an image.
    pub fn get(&self, id: ImageId) -> Option<&ImageInfo> {
        self.images.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: ImageId) -> Option<&mut ImageInfo> {
        self.images.get_mut(&id)
    }

    /// All registered images in id order.
    pub fn images(&self) -> impl Iterator<Item = &ImageInfo> {
        self.images.values()
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when no image is registered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Registers a sealed data image (a bucket just closed, §4.3) and
    /// adds it to the collecting array group.
    ///
    /// Returns the group that became *complete* (reached `data_per_array`
    /// data images), if any — the trigger for delayed parity generation.
    pub fn register_sealed(
        &mut self,
        sealed: SealedImage,
        data_per_array: u32,
        plane: &DataPlane,
    ) -> Option<ArrayId> {
        let gid = match self.collecting {
            Some(g) => g,
            None => {
                let g = ArrayId(self.next_group);
                self.next_group += 1;
                self.collecting = Some(g);
                g
            }
        };
        let id = ImageId(sealed.image_id());
        let payload = sealed.bytes().clone();
        let info = ImageInfo {
            id,
            kind: ImageKind::Data,
            size: payload.len() as u64,
            digest: content_digest(&payload, plane),
            sealed: Some(Arc::new(sealed)),
            payload: Some(payload),
            burned: None,
            array: Some(gid),
        };
        self.images.insert(id, info);
        let group = self.groups.entry(gid).or_insert_with(|| ArrayGroup {
            id: gid,
            data: Vec::new(),
            parity: Vec::new(),
            state: GroupState::Collecting,
            slot: None,
        });
        group.data.push(id);
        if group.data.len() >= data_per_array as usize {
            group.state = GroupState::ParityPending;
            self.collecting = None;
            Some(gid)
        } else {
            None
        }
    }

    /// Registers the parity payload(s) of a group and marks it ready.
    pub fn register_parity(
        &mut self,
        gid: ArrayId,
        payloads: Vec<Bytes>,
        plane: &DataPlane,
    ) -> Result<(), OlfsError> {
        let ids: Vec<ImageId> = payloads
            .iter()
            .map(|_| {
                let id = ImageId(self.next_image);
                self.next_image += 1;
                id
            })
            .collect();
        let group = self
            .groups
            .get_mut(&gid)
            .ok_or(OlfsError::BadState(format!("no group {gid}")))?;
        if group.state != GroupState::ParityPending {
            return Err(OlfsError::BadState(format!(
                "group {gid} is {:?}, expected ParityPending",
                group.state
            )));
        }
        for (id, payload) in ids.iter().zip(payloads) {
            group.parity.push(*id);
            self.images.insert(
                *id,
                ImageInfo {
                    id: *id,
                    kind: ImageKind::Parity,
                    size: payload.len() as u64,
                    digest: content_digest(&payload, plane),
                    sealed: None,
                    payload: Some(payload),
                    burned: None,
                    array: Some(gid),
                },
            );
        }
        self.groups
            .get_mut(&gid)
            .ok_or(OlfsError::BadState(format!("no group {gid}")))?
            .state = GroupState::ReadyToBurn;
        Ok(())
    }

    /// Forces an under-filled collecting group to ParityPending (flush).
    ///
    /// Returns the group id if there was one collecting.
    pub fn force_close_collecting(&mut self) -> Option<ArrayId> {
        let gid = self.collecting.take()?;
        let g = self.groups.get_mut(&gid)?;
        g.state = GroupState::ParityPending;
        Some(gid)
    }

    /// Looks up a group.
    pub fn group(&self, id: ArrayId) -> Option<&ArrayGroup> {
        self.groups.get(&id)
    }

    /// Mutable group lookup.
    pub fn group_mut(&mut self, id: ArrayId) -> Option<&mut ArrayGroup> {
        self.groups.get_mut(&id)
    }

    /// Groups in a given state, in id order.
    pub fn groups_in_state(&self, state: GroupState) -> Vec<ArrayId> {
        let mut v: Vec<ArrayId> = self
            .groups
            .values()
            .filter(|g| g.state == state)
            .map(|g| g.id)
            .collect();
        v.sort_unstable();
        v
    }

    /// DAindex read.
    pub fn da_state(&self, slot_index: u32) -> Option<DaState> {
        self.da_index.get(&slot_index).copied()
    }

    /// DAindex write.
    pub fn set_da_state(&mut self, slot_index: u32, state: DaState) {
        self.da_index.insert(slot_index, state);
    }

    /// Finds the first Empty tray, preferring low indices (uppermost
    /// layers first — the cheapest mechanical trips).
    pub fn first_empty_slot(&self, layout: &RackLayout) -> Option<SlotAddress> {
        (0..layout.total_slots())
            .find(|i| self.da_index.get(i) == Some(&DaState::Empty))
            .map(|i| layout.slot_at(i))
    }

    /// Counts trays per DAindex state.
    pub fn da_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in self.da_index.values() {
            match s {
                DaState::Empty => counts.0 += 1,
                DaState::Used => counts.1 += 1,
                DaState::Failed => counts.2 += 1,
            }
        }
        counts
    }

    /// Marks an image burned at a location (a DILindex insert).
    pub fn mark_burned(&mut self, id: ImageId, loc: DiscLocation) -> Result<(), OlfsError> {
        let info = self.images.get_mut(&id).ok_or(OlfsError::ImageLost(id))?;
        info.burned = Some(loc);
        Ok(())
    }

    /// DILindex lookup: where is this image on disc?
    pub fn location_of(&self, id: ImageId) -> Option<DiscLocation> {
        self.images.get(&id).and_then(|i| i.burned)
    }

    /// Drops the disk-tier copy of a burned image (read-cache eviction).
    pub fn evict_disk_copy(&mut self, id: ImageId) -> Result<u64, OlfsError> {
        let info = self.images.get_mut(&id).ok_or(OlfsError::ImageLost(id))?;
        if info.burned.is_none() {
            return Err(OlfsError::BadState(format!(
                "image {id} is not burned; its disk copy is the only copy"
            )));
        }
        let freed = info.payload.as_ref().map(|p| p.len() as u64).unwrap_or(0);
        info.payload = None;
        info.sealed = None;
        Ok(freed)
    }

    /// Restores a disk-tier copy after a fetch from disc, verifying the
    /// payload against the image's `ros-cas` content digest.
    pub fn restore_disk_copy(
        &mut self,
        id: ImageId,
        payload: Bytes,
        plane: &DataPlane,
    ) -> Result<(), OlfsError> {
        let info = self.images.get_mut(&id).ok_or(OlfsError::ImageLost(id))?;
        if let Err(e) = verify_payload(&info.digest, &payload, plane) {
            return Err(OlfsError::BadState(format!(
                "image {id} payload digest mismatch after fetch: {e}"
            )));
        }
        if info.kind == ImageKind::Data {
            info.sealed = Some(Arc::new(
                SealedImage::from_bytes(payload.clone())
                    .map_err(|e| OlfsError::Udf(e.to_string()))?,
            ));
        }
        info.payload = Some(payload);
        Ok(())
    }

    /// Resets a burned group for a rewrite to a fresh array (§4.7: "The
    /// recovered data can be written to new buckets and finally burned
    /// into free disc arrays"): drops its old parity images, clears the
    /// slot assignment and burn locations, and returns the old slot so
    /// the caller can retire it.
    pub fn reset_group_for_rewrite(
        &mut self,
        gid: ArrayId,
    ) -> Result<Option<SlotAddress>, OlfsError> {
        let group = self
            .groups
            .get_mut(&gid)
            .ok_or(OlfsError::BadState(format!("no group {gid}")))?;
        if group.state != GroupState::Burned {
            return Err(OlfsError::BadState(format!(
                "group {gid} is {:?}, only burned groups can be rewritten",
                group.state
            )));
        }
        let old_slot = group.slot.take();
        let old_parity = std::mem::take(&mut group.parity);
        group.state = GroupState::ParityPending;
        let data = group.data.clone();
        for pid in old_parity {
            self.images.remove(&pid);
        }
        for id in data {
            if let Some(info) = self.images.get_mut(&id) {
                info.burned = None;
            }
        }
        Ok(old_slot)
    }

    /// Serialises DAindex + DILindex for the MV state store.
    pub fn state_json(&self) -> serde_json::Value {
        let da: BTreeMap<String, DaState> = self
            .da_index
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let dil: BTreeMap<String, DiscLocation> = self
            .images
            .values()
            .filter_map(|i| i.burned.map(|b| (i.id.0.to_string(), b)))
            .collect();
        serde_json::json!({ "da_index": da, "dil_index": dil })
    }
}

/// The physical discs of the rack: blank media in trays, moving to drives
/// and back.
#[derive(Debug)]
pub struct DiscRegistry {
    /// Disc objects; `None` while the disc sits in a drive.
    discs: BTreeMap<DiscId, Option<Disc>>,
    /// Disc ids per dense slot index, bottom-first.
    slots: BTreeMap<u32, Vec<DiscId>>,
}

impl DiscRegistry {
    /// Populates every tray with blank WORM discs of `class`.
    pub fn new(layout: &RackLayout, class: DiscClass) -> Self {
        let mut discs = BTreeMap::new();
        let mut slots = BTreeMap::new();
        let mut next = 0u64;
        for i in 0..layout.total_slots() {
            let mut tray = Vec::with_capacity(layout.discs_per_tray as usize);
            for _ in 0..layout.discs_per_tray {
                let id = DiscId(next);
                next += 1;
                discs.insert(id, Some(Disc::blank(id.0, class, MediaKind::Worm)));
                tray.push(id);
            }
            slots.insert(i, tray);
        }
        DiscRegistry { discs, slots }
    }

    /// Disc ids in a tray, bottom-first.
    pub fn tray(&self, slot_index: u32) -> Option<&[DiscId]> {
        self.slots.get(&slot_index).map(Vec::as_slice)
    }

    /// Takes a disc out of the registry (into a drive).
    pub fn take(&mut self, id: DiscId) -> Result<Disc, OlfsError> {
        self.discs
            .get_mut(&id)
            .ok_or(OlfsError::BadState(format!("unknown disc {id}")))?
            .take()
            .ok_or(OlfsError::BadState(format!("disc {id} already in a drive")))
    }

    /// Returns a disc to the registry (back in its tray).
    pub fn put_back(&mut self, disc: Disc) -> Result<(), OlfsError> {
        let id = DiscId(disc.id);
        let slot = self
            .discs
            .get_mut(&id)
            .ok_or(OlfsError::BadState(format!("unknown disc {id}")))?;
        if slot.is_some() {
            return Err(OlfsError::BadState(format!("disc {id} is not out")));
        }
        *slot = Some(disc);
        Ok(())
    }

    /// Immutable access to a disc in its tray.
    pub fn disc(&self, id: DiscId) -> Option<&Disc> {
        self.discs.get(&id).and_then(Option::as_ref)
    }

    /// Mutable access (fault injection in tests).
    pub fn disc_mut(&mut self, id: DiscId) -> Option<&mut Disc> {
        self.discs.get_mut(&id).and_then(Option::as_mut)
    }

    /// Total number of discs.
    pub fn len(&self) -> usize {
        self.discs.len()
    }

    /// True when no discs exist.
    pub fn is_empty(&self) -> bool {
        self.discs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_udf::Bucket;

    fn layout() -> RackLayout {
        RackLayout::tiny()
    }

    fn p() -> DataPlane {
        DataPlane::single()
    }

    fn sealed(store: &mut ImageStore, tag: u8) -> SealedImage {
        let id = store.allocate_image_id();
        let mut b = Bucket::new(id.0, 64 * 2048);
        b.write(&format!("/f{tag}").parse().unwrap(), vec![tag; 1000], 0)
            .unwrap();
        b.close().unwrap()
    }

    #[test]
    fn groups_complete_at_data_count() {
        let mut store = ImageStore::new(&layout());
        let mut completed = None;
        for i in 0..3 {
            let img = sealed(&mut store, i);
            completed = store.register_sealed(img, 3, &p());
        }
        let gid = completed.expect("third image completes the group");
        let g = store.group(gid).unwrap();
        assert_eq!(g.state, GroupState::ParityPending);
        assert_eq!(g.data.len(), 3);
        // Next image starts a fresh group.
        let img = sealed(&mut store, 9);
        assert!(store.register_sealed(img, 3, &p()).is_none());
        assert_eq!(store.groups_in_state(GroupState::Collecting).len(), 1);
    }

    #[test]
    fn parity_registration_advances_state() {
        let mut store = ImageStore::new(&layout());
        let mut gid = None;
        for i in 0..2 {
            let img = sealed(&mut store, i);
            gid = store.register_sealed(img, 2, &p());
        }
        let gid = gid.unwrap();
        store
            .register_parity(gid, vec![Bytes::from(vec![0u8; 100])], &p())
            .unwrap();
        let g = store.group(gid).unwrap();
        assert_eq!(g.state, GroupState::ReadyToBurn);
        assert_eq!(g.parity.len(), 1);
        let parity = store.get(g.parity[0]).unwrap();
        assert_eq!(parity.kind, ImageKind::Parity);
        assert!(parity.on_disk());
        // Double registration rejected.
        assert!(store
            .register_parity(gid, vec![Bytes::new()], &p())
            .is_err());
    }

    #[test]
    fn da_index_lifecycle() {
        let l = layout();
        let mut store = ImageStore::new(&l);
        assert_eq!(store.da_counts(), (8, 0, 0));
        let slot = store.first_empty_slot(&l).unwrap();
        assert_eq!(slot, SlotAddress::new(0, 0, 0));
        store.set_da_state(l.slot_index(slot), DaState::Used);
        assert_eq!(
            store.first_empty_slot(&l).unwrap(),
            SlotAddress::new(0, 0, 1)
        );
        store.set_da_state(1, DaState::Failed);
        assert_eq!(store.da_counts(), (6, 1, 1));
        assert_eq!(store.da_state(1), Some(DaState::Failed));
    }

    #[test]
    fn burn_and_evict_lifecycle() {
        let l = layout();
        let mut store = ImageStore::new(&l);
        let img = sealed(&mut store, 1);
        let id = ImageId(img.image_id());
        store.register_sealed(img, 2, &p());
        // Cannot evict before burning.
        assert!(store.evict_disk_copy(id).is_err());
        let loc = DiscLocation {
            disc: DiscId(5),
            slot: SlotAddress::new(0, 0, 0),
            position: 3,
        };
        store.mark_burned(id, loc).unwrap();
        assert_eq!(store.location_of(id), Some(loc));
        let freed = store.evict_disk_copy(id).unwrap();
        assert!(freed > 0);
        assert!(!store.get(id).unwrap().on_disk());
        // Restore with wrong bytes fails the digest verification.
        assert!(store
            .restore_disk_copy(id, Bytes::from_static(b"junk"), &p())
            .is_err());
    }

    #[test]
    fn restore_validates_and_reparses() {
        let l = layout();
        let mut store = ImageStore::new(&l);
        let img = sealed(&mut store, 2);
        let id = ImageId(img.image_id());
        let bytes = img.bytes().clone();
        store.register_sealed(img, 2, &p());
        store
            .mark_burned(
                id,
                DiscLocation {
                    disc: DiscId(0),
                    slot: SlotAddress::new(0, 0, 0),
                    position: 0,
                },
            )
            .unwrap();
        store.evict_disk_copy(id).unwrap();
        store.restore_disk_copy(id, bytes, &p()).unwrap();
        let info = store.get(id).unwrap();
        assert!(info.on_disk());
        assert!(info.sealed.is_some());
    }

    #[test]
    fn force_close_flushes_partial_group() {
        let l = layout();
        let mut store = ImageStore::new(&l);
        let img = sealed(&mut store, 1);
        assert!(store.register_sealed(img, 5, &p()).is_none());
        let gid = store.force_close_collecting().unwrap();
        assert_eq!(store.group(gid).unwrap().state, GroupState::ParityPending);
        assert!(store.force_close_collecting().is_none());
    }

    #[test]
    fn disc_registry_take_and_return() {
        let l = layout();
        let mut reg = DiscRegistry::new(&l, DiscClass::Custom { capacity: 1 << 20 });
        assert_eq!(reg.len(), 8 * 12);
        let tray = reg.tray(0).unwrap().to_vec();
        assert_eq!(tray.len(), 12);
        let d = reg.take(tray[0]).unwrap();
        assert!(reg.take(tray[0]).is_err(), "double take must fail");
        assert!(reg.disc(tray[0]).is_none());
        reg.put_back(d).unwrap();
        assert!(reg.disc(tray[0]).is_some());
        let d2 = reg.take(tray[1]).unwrap();
        assert!(reg.put_back(d2.clone()).is_ok());
        assert!(reg.put_back(d2).is_err(), "double return must fail");
    }

    #[test]
    fn state_json_reflects_indices() {
        let l = layout();
        let mut store = ImageStore::new(&l);
        let img = sealed(&mut store, 1);
        let id = ImageId(img.image_id());
        store.register_sealed(img, 2, &p());
        store
            .mark_burned(
                id,
                DiscLocation {
                    disc: DiscId(3),
                    slot: SlotAddress::new(0, 1, 0),
                    position: 2,
                },
            )
            .unwrap();
        store.set_da_state(2, DaState::Used);
        let json = store.state_json();
        assert_eq!(json["da_index"]["2"], serde_json::json!("Used"));
        assert!(json["dil_index"][id.0.to_string()].is_object());
    }
}

#[cfg(test)]
mod rewrite_tests {
    use super::*;
    use ros_udf::Bucket;

    #[test]
    fn reset_group_for_rewrite_requires_burned_state() {
        let l = RackLayout::tiny();
        let mut store = ImageStore::new(&l);
        let id = store.allocate_image_id();
        let mut b = Bucket::new(id.0, 64 * 2048);
        b.write(&"/f".parse().unwrap(), vec![1u8; 100], 0).unwrap();
        let gid = store
            .register_sealed(b.close().unwrap(), 1, &DataPlane::single())
            .unwrap();
        // ParityPending, not Burned: reset must refuse.
        assert!(store.reset_group_for_rewrite(gid).is_err());
        store
            .register_parity(
                gid,
                vec![bytes::Bytes::from(vec![0u8; 100])],
                &DataPlane::single(),
            )
            .unwrap();
        assert!(store.reset_group_for_rewrite(gid).is_err());
        // Mark burned with a slot, then reset succeeds and clears it.
        let slot = SlotAddress::new(0, 0, 0);
        {
            let g = store.group_mut(gid).unwrap();
            g.state = GroupState::Burned;
            g.slot = Some(slot);
        }
        let parity_id = store.group(gid).unwrap().parity[0];
        store
            .mark_burned(
                id,
                DiscLocation {
                    disc: DiscId(0),
                    slot,
                    position: 0,
                },
            )
            .unwrap();
        let old = store.reset_group_for_rewrite(gid).unwrap();
        assert_eq!(old, Some(slot));
        let g = store.group(gid).unwrap();
        assert_eq!(g.state, GroupState::ParityPending);
        assert!(g.parity.is_empty());
        assert!(g.slot.is_none());
        // The data image's burn location is cleared; the old parity
        // image record is dropped entirely.
        assert!(store.location_of(id).is_none());
        assert!(store.get(parity_id).is_none());
    }

    #[test]
    fn store_and_registry_emptiness() {
        let l = RackLayout::tiny();
        let store = ImageStore::new(&l);
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        let reg = DiscRegistry::new(&l, DiscClass::Custom { capacity: 2048 });
        assert!(!reg.is_empty());
    }
}
