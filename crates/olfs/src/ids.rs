//! Identifier newtypes used across OLFS.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type! {
    /// A disc image's universal unique identifier (§4.1).
    ImageId
}

id_type! {
    /// A disc array group (11+1 or 10+2 images burned together).
    ArrayId
}

id_type! {
    /// A physical disc.
    DiscId
}

id_type! {
    /// A background task (burn, fetch, parity, scrub).
    TaskId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_readably() {
        assert_eq!(format!("{:?}", ImageId(7)), "ImageId(7)");
        assert_eq!(format!("{}", DiscId(12)), "12");
        assert_eq!(ArrayId(1), ArrayId(1));
        assert!(TaskId(1) < TaskId(2));
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property; just exercise hashing.
        let mut set = std::collections::HashSet::new();
        set.insert(ImageId(1));
        set.insert(ImageId(1));
        assert_eq!(set.len(), 1);
    }
}
