//! Calibrated OLFS software-path constants.

use ros_sim::SimDuration;

/// Average duration of one OLFS internal operation (stat / mknod / write /
/// read / close against MV with direct I/O). §5.3: "Each internal
/// operation in OLFS takes almost 2.5ms in average"; calibrated to
/// 2.3 ms so the composed write (5 ops + the 1.5 ms bucket insert) and
/// read (3 ops + the 1 ms bucket lookup) land on the measured 16 ms and
/// 9 ms of Figure 7 while Table 1's pure data-access rows stay at their
/// measured 1 ms / 2 ms.
pub fn internal_op_overhead() -> SimDuration {
    SimDuration::from_micros(2_300)
}

/// Device-side cost of inserting file data into an open bucket (loop
/// device + UDF allocation), charged inside the "write" step. Sized so
/// Table 1's 2 ms disk-bucket write splits across insert and flush.
pub fn bucket_write_device() -> SimDuration {
    SimDuration::from_micros(1_500)
}

/// Device-side cost of reading a file out of an open bucket (Table 1:
/// "Disk bucket  0.001 s").
pub fn bucket_read_device() -> SimDuration {
    SimDuration::from_millis(1)
}

/// Device-side cost of reading a file out of a sealed disc image on the
/// disk buffer (Table 1: "Disc image  0.002 s" — the extra millisecond
/// is the read-only UDF mount lookup).
pub fn image_read_device() -> SimDuration {
    SimDuration::from_millis(2)
}

/// Kernel-user mode switch between two consecutive internal operations
/// (§5.3: FUSE routes every operation through the kernel and back).
pub fn kernel_user_switch() -> SimDuration {
    SimDuration::from_micros(700)
}

/// Mounting a fetched disc's image into the local VFS (§5.4: "mounting
/// disc into local VFS with about 220ms delay").
pub fn vfs_mount() -> SimDuration {
    SimDuration::from_millis(220)
}

/// Spin-up charged after a mechanical load before the freshly inserted
/// discs are readable. §5.4 quotes ≈2 s from sleep; after an array load
/// most drives have already spun up while the arm finished separating, so
/// the residual charged here is shorter (calibrated to Table 1's 70.553 s
/// roller-with-free-drives row).
pub fn post_load_spin_up() -> SimDuration {
    SimDuration::from_millis(1_600)
}

/// Default forepart size stored inline in the index file (§4.8: "a
/// forepart-data-stored mechanism to store the forepart (eg. 256KB) of
/// data files in their corresponding index file").
pub const FOREPART_BYTES: u64 = 256 * 1024;

/// First-word response latency when the forepart mechanism answers from
/// MV (§4.8: "ensures that the first word of the file can quickly respond
/// within 2 ms").
pub fn forepart_first_byte() -> SimDuration {
    SimDuration::from_millis(2)
}

/// MV block size (§4.2: "the block size of MV can be set to 1KB").
pub const MV_BLOCK_BYTES: u64 = 1_024;

/// MV inode size (§4.2: "the inode size in MV is set to the smallest 128
/// bytes").
pub const MV_INODE_BYTES: u64 = 128;

/// Maximum version entries an index file retains before the ring wraps
/// (§4.6: "an index file with 2 KB can store up to 15 entries").
pub const MAX_VERSION_ENTRIES: usize = 15;

/// Typical serialized index-file size the format is expected to stay
/// around (§4.2: "Its typical size is 388 bytes").
pub const TYPICAL_INDEX_BYTES: usize = 388;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_compositions() {
        let op = internal_op_overhead().as_millis_f64();
        let sw = kernel_user_switch().as_millis_f64();
        // OLFS write: stat, mknod, stat, write(+bucket insert), close.
        let write = 5.0 * op + 4.0 * sw + bucket_write_device().as_millis_f64();
        assert!(
            (write - 16.0).abs() < 0.5,
            "write = {write} ms, paper: 16 ms"
        );
        // OLFS read: stat, read(+bucket lookup), close.
        let read = 3.0 * op + 2.0 * sw + bucket_read_device().as_millis_f64();
        assert!((read - 9.0).abs() < 0.5, "read = {read} ms, paper: 9 ms");
    }

    #[test]
    fn mv_capacity_claim() {
        // §4.2: "MV with 1 billion files and 1 billion directories only
        // needs about 2.3 TB".
        let billion = 1_000_000_000u64;
        let bytes = billion * (MV_INODE_BYTES + MV_BLOCK_BYTES)
            + billion * (MV_INODE_BYTES + MV_BLOCK_BYTES);
        let tb = bytes as f64 / 1e12;
        assert!(
            (tb - 2.3).abs() < 0.1,
            "MV needs {tb:.2} TB, paper: ~2.3 TB"
        );
    }
}
