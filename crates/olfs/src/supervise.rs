//! Fault routing and retry supervision over the engine.
//!
//! Two halves:
//!
//! - [`Ros`] implements [`FaultSink`], routing each typed
//!   [`FaultEvent`] to the subsystem it targets (a drive, the mechanical
//!   scheduler, a RAID volume, a burned disc's media) through that
//!   layer's own sink or failure hook.
//! - Supervised foreground operations ([`Ros::read_file_supervised`],
//!   [`Ros::write_file_supervised`]) wrap the plain calls in a bounded
//!   retry loop: transient faults back off exponentially in *simulated*
//!   time and retry; hard faults and exhausted budgets surface as typed
//!   errors, never a panic and never a silent partial success.

use crate::engine::{ReadReport, Ros, WriteReport};
use crate::error::OlfsError;
use crate::ids::DiscId;
use bytes::Bytes;
use ros_faults::{
    FaultEvent, FaultKind, FaultSink, InjectionOutcome, RetryPolicy, RetryStats, Transience,
    VolumeTarget,
};
use ros_udf::UdfPath;

impl Ros {
    /// Reads a file under `policy`: transient faults retry with backoff
    /// charged to the simulated clock; the stats report what the
    /// supervision spent.
    pub fn read_file_supervised(
        &mut self,
        path: &UdfPath,
        policy: &RetryPolicy,
    ) -> Result<(ReadReport, RetryStats), OlfsError> {
        self.supervised("read", policy, |ros| ros.read_file(path))
    }

    /// Writes a file under `policy` (see [`Ros::read_file_supervised`]).
    pub fn write_file_supervised(
        &mut self,
        path: &UdfPath,
        data: Bytes,
        policy: &RetryPolicy,
    ) -> Result<(WriteReport, RetryStats), OlfsError> {
        self.supervised("write", policy, |ros| ros.write_file(path, data.clone()))
    }

    /// The shared retry loop: bounded attempts, exponential backoff on
    /// transient errors, typed [`OlfsError::RetriesExhausted`] when the
    /// budget runs out.
    pub(crate) fn supervised<T>(
        &mut self,
        op: &str,
        policy: &RetryPolicy,
        mut attempt: impl FnMut(&mut Ros) -> Result<T, OlfsError>,
    ) -> Result<(T, RetryStats), OlfsError> {
        let mut stats = RetryStats::new();
        loop {
            stats.attempts += 1;
            match attempt(self) {
                Ok(v) => return Ok((v, stats)),
                Err(e) if e.is_transient() => {
                    if !policy.should_retry(stats.attempts) {
                        return Err(OlfsError::RetriesExhausted {
                            op: op.to_string(),
                            attempts: stats.attempts,
                            last: Box::new(e),
                        });
                    }
                    let backoff = policy.backoff(stats.attempts);
                    stats.note_backoff(backoff);
                    self.run_for(backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Replaces every failed member across the three RAID volumes
    /// (maintenance window: spare devices swap in and rebuild). Returns
    /// the number of members replaced.
    pub fn heal_volumes(&mut self) -> Result<usize, OlfsError> {
        let mut replaced = 0;
        for vol in [self.vol_mv, self.vol_buffer, self.vol_aux] {
            let array = self.vm.array_mut(vol)?;
            let failed = array.failed_members();
            if failed == 0 {
                continue;
            }
            for i in 0..array.members() {
                let _ = array.replace_member(i);
            }
            replaced += failed;
        }
        Ok(replaced)
    }
}

/// Routes each fault kind to the subsystem implementing its hook. The
/// modulo-wrapping of targeting coordinates happens here, so generated
/// plans always land on real hardware.
impl FaultSink for Ros {
    fn inject_fault(&mut self, event: &FaultEvent) -> InjectionOutcome {
        match &event.kind {
            FaultKind::DriveTransientReads { bay, drive, .. }
            | FaultKind::DriveBurnFaults { bay, drive, .. }
            | FaultKind::DriveDeath { bay, drive } => {
                let b = *bay as usize % self.bays.len();
                let d = *drive as usize % self.cfg.drives_per_bay;
                match self.bays[b].drive_mut(d) {
                    Some(unit) => unit.inject_fault(event),
                    None => InjectionOutcome::Skipped(format!("no drive {d} in bay {b}")),
                }
            }
            FaultKind::MediaCorruption { disc, sectors } => {
                // Victims are burned discs resting in their trays; a disc
                // currently loaded in a drive is out of the arm's reach.
                let burned: Vec<DiscId> = (0..self.registry.len() as u64)
                    .map(DiscId)
                    .filter(|id| {
                        self.registry
                            .disc(*id)
                            .map(|d| !d.is_blank())
                            .unwrap_or(false)
                    })
                    .collect();
                if burned.is_empty() {
                    return InjectionOutcome::Skipped("no burned discs in trays".into());
                }
                let victim = burned[*disc as usize % burned.len()];
                let Some(media) = self.registry.disc_mut(victim) else {
                    return InjectionOutcome::Skipped(format!("disc {victim} not in a tray"));
                };
                let Some((start, end)) = media.tracks().first().map(ros_drive::Track::sector_range)
                else {
                    return InjectionOutcome::Skipped(format!("disc {victim} has no tracks"));
                };
                let span = (end - start).max(1);
                for k in 0..u64::from(*sectors) {
                    media.corrupt_sector(start + k % span);
                }
                InjectionOutcome::Injected
            }
            FaultKind::MediaRot { disc, bytes } => {
                // Same victim population as MediaCorruption, but the
                // damage is *silent*: bytes flip with no sector error, so
                // only a digest audit (or a read-path digest check) can
                // see it.
                let burned: Vec<DiscId> = (0..self.registry.len() as u64)
                    .map(DiscId)
                    .filter(|id| {
                        self.registry
                            .disc(*id)
                            .map(|d| !d.is_blank())
                            .unwrap_or(false)
                    })
                    .collect();
                if burned.is_empty() {
                    return InjectionOutcome::Skipped("no burned discs in trays".into());
                }
                let victim = burned[*disc as usize % burned.len()];
                let Some(media) = self.registry.disc_mut(victim) else {
                    return InjectionOutcome::Skipped(format!("disc {victim} not in a tray"));
                };
                if media.rot_bytes(*disc, *bytes) == 0 {
                    return InjectionOutcome::Skipped(format!("disc {victim} has no payload"));
                }
                InjectionOutcome::Injected
            }
            FaultKind::MechTransient { .. } => self.mech.inject_fault(event),
            FaultKind::SsdLoss { volume, .. } | FaultKind::SsdRepair { volume, .. } => {
                let vol = match volume {
                    VolumeTarget::Metadata => self.vol_mv,
                    VolumeTarget::Buffer => self.vol_buffer,
                    VolumeTarget::Aux => self.vol_aux,
                };
                match self.vm.array_mut(vol) {
                    Ok(array) => array.inject_fault(event),
                    Err(e) => InjectionOutcome::Skipped(format!("volume missing: {e}")),
                }
            }
            FaultKind::RackOutage { .. }
            | FaultKind::RackSlow { .. }
            | FaultKind::AtRack { .. } => InjectionOutcome::NotApplicable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn ev(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            seq: 0,
            at_op: 0,
            kind,
        }
    }

    #[test]
    fn transient_mech_fault_is_retried_and_charged() {
        let mut r = Ros::new(RosConfig::tiny());
        let data = vec![5u8; 200_000];
        r.write_file(&p("/sup/a"), data.clone()).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        // Arm one misfeed: the fetch's load_array fails once, then the
        // retry succeeds.
        assert_eq!(
            r.inject_fault(&ev(FaultKind::MechTransient { count: 1 })),
            InjectionOutcome::Injected
        );
        let policy = RetryPolicy::default();
        let (report, stats) = r.read_file_supervised(&p("/sup/a"), &policy).unwrap();
        assert_eq!(report.data.as_ref(), data.as_slice());
        assert_eq!(stats.attempts, 2);
        assert!(stats.backoff_total > ros_sim::SimDuration::ZERO);
    }

    #[test]
    fn exhausted_retries_surface_typed() {
        let mut r = Ros::new(RosConfig::tiny());
        let data = vec![6u8; 200_000];
        r.write_file(&p("/sup/b"), data).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        r.inject_fault(&ev(FaultKind::MechTransient { count: 10 }));
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let err = r.read_file_supervised(&p("/sup/b"), &policy).unwrap_err();
        match err {
            OlfsError::RetriesExhausted { op, attempts, last } => {
                assert_eq!(op, "read");
                assert_eq!(attempts, 3);
                assert!(matches!(*last, OlfsError::Transient(_)));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn hard_errors_do_not_burn_retry_budget() {
        let mut r = Ros::new(RosConfig::tiny());
        let policy = RetryPolicy::default();
        let err = r.read_file_supervised(&p("/missing"), &policy).unwrap_err();
        assert!(matches!(err, OlfsError::NotFound(_)));
    }

    #[test]
    fn dead_drive_quarantines_bay_and_read_reroutes() {
        let mut cfg = RosConfig::tiny();
        cfg.drive_bays = 2;
        let mut r = Ros::new(cfg);
        let data = vec![7u8; 200_000];
        r.write_file(&p("/sup/c"), data.clone()).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        // Kill every drive in bay 0: the first fetch lands there, fails,
        // quarantines the bay, and the retry reroutes through bay 1.
        for d in 0..r.config().drives_per_bay as u32 {
            r.inject_fault(&ev(FaultKind::DriveDeath { bay: 0, drive: d }));
        }
        let (report, stats) = r
            .read_file_supervised(&p("/sup/c"), &RetryPolicy::default())
            .unwrap();
        assert_eq!(report.data.as_ref(), data.as_slice());
        assert!(stats.attempts >= 2, "attempts = {}", stats.attempts);
        assert_eq!(r.quarantined_bays(), vec![0]);
        // Field service returns the bay to rotation.
        assert_eq!(r.service_quarantined_bays(), 1);
        assert!(r.quarantined_bays().is_empty());
    }

    #[test]
    fn spoiled_burn_reburns_onto_spare_tray() {
        let mut r = Ros::new(RosConfig::tiny());
        // Spoil the first burn completion of drive 0.
        r.inject_fault(&ev(FaultKind::DriveBurnFaults {
            bay: 0,
            drive: 0,
            count: 1,
        }));
        let data = vec![8u8; 300_000];
        r.write_file(&p("/sup/d"), data.clone()).unwrap();
        r.flush().unwrap();
        assert!(
            r.counters().reburns >= 1,
            "burn failure must trigger a re-burn"
        );
        assert!(r.counters().burns >= 1, "the re-burn must complete");
        // The data survives the spoiled tray: evict and fetch from disc.
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        let report = r.read_file(&p("/sup/d")).unwrap();
        assert_eq!(report.data.as_ref(), data.as_slice());
    }

    #[test]
    fn ssd_loss_degrades_and_heal_restores() {
        let mut r = Ros::new(RosConfig::tiny());
        assert_eq!(
            r.inject_fault(&ev(FaultKind::SsdLoss {
                volume: VolumeTarget::Buffer,
                member: 3,
            })),
            InjectionOutcome::Injected
        );
        // Degraded, not failed: writes still work.
        r.write_file(&p("/sup/e"), vec![9u8; 10_000]).unwrap();
        assert_eq!(r.heal_volumes().unwrap(), 1);
        assert_eq!(r.heal_volumes().unwrap(), 0);
    }

    #[test]
    fn media_corruption_repairs_through_parity() {
        let mut r = Ros::new(RosConfig::tiny());
        let data = vec![3u8; 400_000];
        r.write_file(&p("/sup/f"), data.clone()).unwrap();
        r.flush().unwrap();
        r.evict_burned_copies();
        r.unload_all_bays().unwrap();
        let out = r.inject_fault(&ev(FaultKind::MediaCorruption {
            disc: 0,
            sectors: 4,
        }));
        assert_eq!(out, InjectionOutcome::Injected);
        let (report, _) = r
            .read_file_supervised(&p("/sup/f"), &RetryPolicy::default())
            .unwrap();
        assert_eq!(report.data.as_ref(), data.as_slice());
        assert!(r.counters().repairs >= 1, "parity repair must have run");
    }
}
