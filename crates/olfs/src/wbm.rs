//! Writing Bucket Management (WBM) — preliminary bucket writing (§4.3).
//!
//! "The actual data of an incoming file is written into an updatable UDF
//! bucket on the disk write buffer... As soon as the file data have been
//! completely written, OLFS immediately acknowledges the completion of the
//! file write."
//!
//! The manager keeps a configurable set of open buckets. Placement is
//! first-come-first-served (§4.5's default policy): a file goes to the
//! first bucket that can admit it whole; when none can, the fullest
//! candidate takes a block-aligned prefix and the bucket is closed,
//! splitting the file across consecutive images with a link file
//! stitching them together.

use crate::ids::ImageId;
use ros_udf::{Bucket, UdfPath};
use serde::{Deserialize, Serialize};

/// Name of the link file stitching a split file back together, placed
/// next to the *second* subfile (§4.5: "OLFS also creates a link file on
/// the second subfile image to point to the first subfile").
pub fn link_file_name(name: &str) -> String {
    format!(".roslink-{name}")
}

/// Returns the original file name if `name` is a link file.
pub fn parse_link_file_name(name: &str) -> Option<&str> {
    name.strip_prefix(".roslink-")
}

/// JSON body of a link file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFile {
    /// Image holding the previous subfile.
    pub prev_image: u64,
    /// Byte offset of this subfile within the whole file.
    pub offset: u64,
    /// Total size of the whole file.
    pub total_size: u64,
}

impl LinkFile {
    /// Serialises to the on-image JSON form.
    pub fn to_json(&self) -> String {
        // ros-analysis: allow(L2, serializing an owned struct of plain fields cannot fail)
        serde_json::to_string(self).expect("link files always serialize")
    }

    /// Parses the on-image JSON form.
    pub fn from_json(s: &str) -> Option<Self> {
        serde_json::from_str(s).ok()
    }
}

/// How a write request maps onto buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The whole file fits in one open bucket.
    Whole {
        /// Index of the bucket.
        bucket: usize,
    },
    /// The file must be split: a prefix into `bucket` (which then
    /// closes), the remainder into subsequent buckets.
    Split {
        /// Index of the bucket taking the first part.
        bucket: usize,
        /// Bytes of the file going into that bucket.
        prefix: u64,
    },
    /// No open bucket can take even one block (all essentially full).
    NoRoom,
}

/// The open-bucket pool.
#[derive(Clone, Debug)]
pub struct BucketManager {
    buckets: Vec<Bucket>,
    capacity: u64,
}

impl BucketManager {
    /// Creates `n` open buckets of `capacity` bytes with the given ids.
    pub fn new(ids: Vec<ImageId>, capacity: u64) -> Self {
        BucketManager {
            buckets: ids
                .into_iter()
                .map(|id| Bucket::new(id.0, capacity))
                .collect(),
            capacity,
        }
    }

    /// Number of open buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Per-bucket capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Read access to a bucket.
    pub fn bucket(&self, i: usize) -> Option<&Bucket> {
        self.buckets.get(i)
    }

    /// Write access to a bucket.
    pub fn bucket_mut(&mut self, i: usize) -> Option<&mut Bucket> {
        self.buckets.get_mut(i)
    }

    /// Finds which open bucket stages `image`, if any.
    pub fn locate_image(&self, image: ImageId) -> Option<usize> {
        self.buckets.iter().position(|b| b.image_id() == image.0)
    }

    /// Debug-build accounting invariant: every open bucket's used and
    /// free byte counts partition its capacity, no bucket overruns it,
    /// and no two open buckets stage the same image. Compiled out in
    /// release builds.
    #[cfg(debug_assertions)]
    pub fn debug_assert_accounting(&self) {
        for (i, b) in self.buckets.iter().enumerate() {
            debug_assert_eq!(
                b.used_bytes() + b.free_bytes(),
                b.capacity_bytes(),
                "bucket {i} byte accounting does not partition its capacity"
            );
            debug_assert!(
                b.used_bytes() <= b.capacity_bytes(),
                "bucket {i} overran its capacity"
            );
            debug_assert_eq!(
                b.capacity_bytes(),
                self.capacity,
                "bucket {i} capacity diverged from the pool capacity"
            );
        }
        let mut ids: Vec<u64> = self.buckets.iter().map(Bucket::image_id).collect();
        ids.sort_unstable();
        ids.dedup();
        debug_assert_eq!(
            ids.len(),
            self.buckets.len(),
            "two open buckets stage the same image"
        );
    }

    /// Release-build no-op twin of [`Self::debug_assert_accounting`].
    #[cfg(not(debug_assertions))]
    pub fn debug_assert_accounting(&self) {}

    /// Plans the placement of a `size`-byte file at `path` (FCFS, §4.5).
    pub fn place(&self, path: &UdfPath, size: u64) -> Placement {
        self.debug_assert_accounting();
        // First bucket that takes the file whole.
        for (i, b) in self.buckets.iter().enumerate() {
            if b.cost_of(path, size) <= b.free_bytes() {
                return Placement::Whole { bucket: i };
            }
        }
        // Otherwise split: pick the bucket able to take the largest
        // prefix (it is closest to full and will close after).
        let best = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.max_prefix(path, size).map(|p| (i, p)))
            .max_by_key(|&(_, p)| p);
        match best {
            Some((bucket, prefix)) if prefix > 0 => Placement::Split { bucket, prefix },
            _ => Placement::NoRoom,
        }
    }

    /// Replaces bucket `i` with a fresh one staged under `new_id`,
    /// returning the old bucket for sealing.
    pub fn rotate(&mut self, i: usize, new_id: ImageId) -> Bucket {
        let fresh = Bucket::new(new_id.0, self.capacity);
        let old = std::mem::replace(&mut self.buckets[i], fresh);
        self.debug_assert_accounting();
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_udf::BLOCK_SIZE;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn mgr(n: usize, blocks: u64) -> BucketManager {
        let ids = (1..=n as u64).map(ImageId).collect();
        BucketManager::new(ids, blocks * BLOCK_SIZE)
    }

    #[test]
    fn whole_placement_is_first_fit() {
        let m = mgr(3, 64);
        match m.place(&p("/f"), 1000) {
            Placement::Whole { bucket } => assert_eq!(bucket, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn skips_full_buckets() {
        let mut m = mgr(2, 16);
        // Nearly fill bucket 0.
        m.bucket_mut(0)
            .unwrap()
            .write(&p("/fill"), vec![0u8; 10 * BLOCK_SIZE as usize], 0)
            .unwrap();
        match m.place(&p("/f"), 8 * BLOCK_SIZE) {
            Placement::Whole { bucket } => assert_eq!(bucket, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_picks_largest_prefix() {
        let mut m = mgr(2, 16);
        m.bucket_mut(0)
            .unwrap()
            .write(&p("/a"), vec![0u8; 8 * BLOCK_SIZE as usize], 0)
            .unwrap();
        m.bucket_mut(1)
            .unwrap()
            .write(&p("/b"), vec![0u8; 4 * BLOCK_SIZE as usize], 0)
            .unwrap();
        // A file too big for either whole: bucket 1 has more room.
        match m.place(&p("/big"), 30 * BLOCK_SIZE) {
            Placement::Split { bucket, prefix } => {
                assert_eq!(bucket, 1);
                assert!(prefix > 0);
                assert_eq!(prefix % BLOCK_SIZE, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_room_when_everything_is_full() {
        let mut m = mgr(1, 8);
        m.bucket_mut(0)
            .unwrap()
            .write(&p("/fill"), vec![0u8; 2 * BLOCK_SIZE as usize], 0)
            .unwrap();
        // Bucket has ~1 free block left after overheads; a new file needs
        // entry + data, so nothing fits and no prefix is possible.
        assert_eq!(m.place(&p("/f"), 10 * BLOCK_SIZE), Placement::NoRoom);
    }

    #[test]
    fn rotate_swaps_in_a_fresh_bucket() {
        let mut m = mgr(2, 64);
        m.bucket_mut(0)
            .unwrap()
            .write(&p("/x"), vec![1u8; 100], 0)
            .unwrap();
        let old = m.rotate(0, ImageId(99));
        assert_eq!(old.image_id(), 1);
        assert!(!old.is_empty());
        assert!(m.bucket(0).unwrap().is_empty());
        assert_eq!(m.bucket(0).unwrap().image_id(), 99);
        assert_eq!(m.locate_image(ImageId(99)), Some(0));
        assert_eq!(m.locate_image(ImageId(1)), None);
    }

    #[test]
    fn link_file_roundtrip() {
        let l = LinkFile {
            prev_image: 7,
            offset: 4096,
            total_size: 10_000,
        };
        let parsed = LinkFile::from_json(&l.to_json()).unwrap();
        assert_eq!(parsed, l);
        assert_eq!(link_file_name("data.bin"), ".roslink-data.bin");
        assert_eq!(parse_link_file_name(".roslink-data.bin"), Some("data.bin"));
        assert_eq!(parse_link_file_name("data.bin"), None);
        assert!(LinkFile::from_json("nonsense").is_none());
    }
}
