//! The Metadata Volume (MV) — the global namespace store (§4.2).
//!
//! "OLFS stores all files' mapping information in a small and fast volume,
//! referred to as Metadata Volume (MV)... MV is built on a small RAID-1
//! formatted as ext4... Besides index files, all system running states and
//! maintenance information are also stored in MV in the Json format."
//!
//! `MetadataVolume` is the pure data structure: a flat `Hash(path) → entry`
//! namespace (the §4.4 unique-file-path identity, so every lookup is O(1)
//! regardless of depth) plus a JSON state store. Directory listings come
//! from a *sorted child sidecar* kept per directory, so `readdir` order is
//! name order by construction — never hash-table order (lint L6). The
//! snapshot format is unchanged: serde goes through a shadow struct that
//! re-emits the historical sorted-map JSON byte-for-byte.
//! All *timing* (SSD RAID-1 random I/O, direct-I/O sync costs) is charged
//! by the engine, keeping this module unit-testable.

use crate::error::OlfsError;
use crate::index::IndexFile;
use ros_udf::{PathIndex, UdfPath};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A directory's sorted child sidecar: `(name, is_dir)` in name order,
/// maintained by the same operations that mutate the namespace, so
/// `list` is a clone — deterministic without a sort at read time.
#[derive(Clone, Debug, Default)]
struct DirNode {
    children: Vec<(String, bool)>,
}

impl DirNode {
    fn link(&mut self, name: &str, is_dir: bool) {
        match self
            .children
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.children[i].1 = is_dir,
            Err(i) => self.children.insert(i, (name.to_string(), is_dir)),
        }
    }

    fn unlink(&mut self, name: &str) {
        if let Ok(i) = self
            .children
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            self.children.remove(i);
        }
    }
}

/// The metadata volume contents.
#[derive(Clone, Debug)]
pub struct MetadataVolume {
    /// Index files in a flat path-hash index.
    files: PathIndex<IndexFile>,
    /// All directories ever created (the namespace skeleton), each with
    /// its sorted child sidecar.
    dirs: PathIndex<DirNode>,
    /// System running state, JSON-valued (§4.2's checkpoint store).
    state: BTreeMap<String, serde_json::Value>,
}

impl Default for MetadataVolume {
    fn default() -> Self {
        Self::new()
    }
}

/// Serde shadow of [`MetadataVolume`]: the historical sorted-map layout,
/// so MV snapshots are byte-identical to the pre-index format and old
/// snapshots restore cleanly.
#[derive(Serialize, Deserialize)]
struct MvSnapshot {
    files: BTreeMap<String, IndexFile>,
    dirs: BTreeSet<String>,
    state: BTreeMap<String, serde_json::Value>,
}

impl Serialize for MetadataVolume {
    fn serialize_value(&self) -> serde::Value {
        let files: BTreeMap<String, IndexFile> = self
            .files
            .iter()
            .map(|(p, i)| (p.to_string(), i.clone()))
            .collect();
        let dirs: BTreeSet<String> = self.dirs.iter().map(|(p, _)| p.to_string()).collect();
        MvSnapshot {
            files,
            dirs,
            state: self.state.clone(),
        }
        .serialize_value()
    }
}

impl Deserialize for MetadataVolume {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let snap = MvSnapshot::deserialize_value(v)?;
        let mut mv = MetadataVolume::new();
        mv.state = snap.state;
        // BTreeSet order is parent-before-child ("/a" < "/a/b"), but
        // mkdir_p builds missing ancestors anyway; root already exists.
        for d in &snap.dirs {
            if d == "/" {
                continue;
            }
            let path: UdfPath = d
                .parse()
                .map_err(|_| serde::DeError::custom(format!("bad dir path {d}")))?;
            mv.mkdir_p(&path)
                .map_err(|e| serde::DeError::custom(format!("snapshot dir {d}: {e}")))?;
        }
        for (k, idx) in snap.files {
            let path: UdfPath = k
                .parse()
                .map_err(|_| serde::DeError::custom(format!("bad file path {k}")))?;
            *mv.create(&path)
                .map_err(|e| serde::DeError::custom(format!("snapshot file {k}: {e}")))? = idx;
        }
        Ok(mv)
    }
}

impl MetadataVolume {
    /// Creates an empty MV with just the root directory.
    pub fn new() -> Self {
        let mut dirs = PathIndex::new();
        dirs.insert(UdfPath::root(), DirNode::default());
        MetadataVolume {
            files: PathIndex::new(),
            dirs,
            state: BTreeMap::new(),
        }
    }

    /// Looks up a file's index — one flat-index probe.
    pub fn get(&self, path: &UdfPath) -> Option<&IndexFile> {
        self.files.get(path)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, path: &UdfPath) -> Option<&mut IndexFile> {
        self.files.get_mut(path)
    }

    /// Returns true if a file exists at the path.
    pub fn is_file(&self, path: &UdfPath) -> bool {
        self.files.contains(path)
    }

    /// Returns true if a directory exists at the path.
    pub fn is_dir(&self, path: &UdfPath) -> bool {
        self.dirs.contains(path)
    }

    /// Links `path` into its parent's child sidecar (root has no parent).
    fn link_child(&mut self, path: &UdfPath, is_dir: bool) {
        let (Some(parent), Some(name)) = (path.parent(), path.name()) else {
            return;
        };
        let name = name.to_string();
        if let Some(node) = self.dirs.get_mut(&parent) {
            node.link(&name, is_dir);
        }
    }

    /// Ensures `dir` and every missing ancestor exist as directories,
    /// linking each new one into its parent. Errors *before* mutating if
    /// any ancestor on the missing stretch is a file. Stops climbing at
    /// the first existing directory: a directory can only have been
    /// created with directory ancestors, so the rest of the chain is
    /// already in place.
    fn ensure_dir_chain(&mut self, dir: Option<UdfPath>) -> Result<(), OlfsError> {
        let mut missing: Vec<UdfPath> = Vec::new();
        let mut cur = dir;
        while let Some(d) = cur {
            if self.files.contains(&d) {
                return Err(OlfsError::Invalid(format!("{d} is a file")));
            }
            if self.dirs.contains(&d) {
                break;
            }
            cur = d.parent();
            missing.push(d);
        }
        for d in missing.into_iter().rev() {
            self.link_child(&d, true);
            self.dirs.insert(d, DirNode::default());
        }
        Ok(())
    }

    /// Creates an index file (and its ancestor directories).
    pub fn create(&mut self, path: &UdfPath) -> Result<&mut IndexFile, OlfsError> {
        if self.files.contains(path) {
            return Err(OlfsError::AlreadyExists(path.to_string()));
        }
        if self.dirs.contains(path) {
            return Err(OlfsError::Invalid(format!("{path} is a directory")));
        }
        self.ensure_dir_chain(path.parent())?;
        self.link_child(path, false);
        self.files.insert(path.clone(), IndexFile::default());
        self.files
            .get_mut(path)
            .ok_or_else(|| OlfsError::BadState(format!("{path} vanished after insert")))
    }

    /// Creates a directory path explicitly.
    pub fn mkdir_p(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        self.ensure_dir_chain(Some(path.clone()))
    }

    /// Removes a file from the global view (a tombstone in spirit: disc
    /// data remains, §4.6's provenance survives in old MV snapshots).
    pub fn unlink(&mut self, path: &UdfPath) -> Result<IndexFile, OlfsError> {
        let idx = self
            .files
            .remove(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        if let Some(name) = path.name() {
            let name = name.to_string();
            if let Some(parent) = path.parent() {
                if let Some(node) = self.dirs.get_mut(&parent) {
                    node.unlink(&name);
                }
            }
        }
        Ok(idx)
    }

    /// Lists the immediate children of a directory: `(name, is_dir)`,
    /// sorted by name. O(children) — a clone of the maintained sidecar,
    /// cross-checked in debug builds against a full namespace sweep.
    pub fn list(&self, dir: &UdfPath) -> Result<Vec<(String, bool)>, OlfsError> {
        match self.dirs.get(dir) {
            Some(node) => {
                debug_assert_eq!(
                    node.children,
                    self.sweep_children(dir),
                    "sidecar and namespace-sweep oracle disagree on list({dir})"
                );
                Ok(node.children.clone())
            }
            None => Err(OlfsError::NotFound(dir.to_string())),
        }
    }

    /// Debug oracle for [`MetadataVolume::list`]: recomputes a directory's
    /// children by sweeping the whole namespace, the way the old sorted-map
    /// MV derived listings.
    fn sweep_children(&self, dir: &UdfPath) -> Vec<(String, bool)> {
        let depth = dir.components().len();
        let mut out: BTreeMap<String, bool> = BTreeMap::new();
        for (p, _) in self.dirs.iter() {
            if p.components().len() > depth && p.starts_with(dir) {
                out.insert(p.components()[depth].clone(), true);
            }
        }
        for (p, _) in self.files.iter() {
            if p.components().len() > depth && p.starts_with(dir) {
                let is_dir = p.components().len() > depth + 1;
                out.entry(p.components()[depth].clone()).or_insert(is_dir);
            }
        }
        out.into_iter().collect()
    }

    /// Iterates over every `(path, index)` pair in path-string order —
    /// the same order the old sorted-map MV yielded, so maintenance
    /// sweeps visit files identically.
    pub fn iter_files(&self) -> impl Iterator<Item = (&UdfPath, &IndexFile)> {
        let mut v: Vec<(&UdfPath, &IndexFile)> = self.files.iter().collect();
        v.sort_by_cached_key(|(p, _)| p.to_string());
        v.into_iter()
    }

    /// Number of index files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of directories (including the root).
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Total MV bytes consumed: index files plus a block+inode per
    /// directory (§4.2's 2.3 TB-per-2-billion-entries accounting).
    pub fn usage_bytes(&self) -> u64 {
        let files: u64 = self.files.iter().map(|(_, i)| i.mv_bytes()).sum();
        let dirs = self.dirs.len() as u64
            * (crate::params::MV_INODE_BYTES + crate::params::MV_BLOCK_BYTES);
        files + dirs
    }

    /// Stores a JSON state record (DAindex, DILindex, checkpoints...).
    pub fn put_state(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.state.insert(key.into(), value);
    }

    /// Reads a JSON state record.
    pub fn get_state(&self, key: &str) -> Option<&serde_json::Value> {
        self.state.get(key)
    }

    /// Serialises the whole MV (for periodic burning to discs, §4.2).
    pub fn snapshot(&self) -> String {
        // ros-analysis: allow(L2, serializing an owned tree of strings and integers cannot fail)
        serde_json::to_string(self).expect("MV always serializes")
    }

    /// Restores an MV from a snapshot (§4.2: "Once MV fails, the entire
    /// global namespace can be recovered from discs").
    pub fn restore(snapshot: &str) -> Result<Self, OlfsError> {
        serde_json::from_str(snapshot)
            .map_err(|e| OlfsError::BadState(format!("corrupt MV snapshot: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ImageId;
    use crate::index::LocTag;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn create_builds_namespace() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/a/b/file")).unwrap();
        assert!(mv.is_file(&p("/a/b/file")));
        assert!(mv.is_dir(&p("/a")));
        assert!(mv.is_dir(&p("/a/b")));
        assert!(mv.is_dir(&p("/")));
        assert_eq!(mv.file_count(), 1);
        assert_eq!(mv.dir_count(), 3);
    }

    #[test]
    fn create_conflicts() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/f")).unwrap();
        assert!(matches!(
            mv.create(&p("/f")).unwrap_err(),
            OlfsError::AlreadyExists(_)
        ));
        // A file cannot be a directory on the path of another file.
        assert!(matches!(
            mv.create(&p("/f/inner")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
        mv.mkdir_p(&p("/d")).unwrap();
        assert!(matches!(
            mv.create(&p("/d")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
        assert!(matches!(
            mv.mkdir_p(&p("/f")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
    }

    #[test]
    fn listing_separates_dirs_and_files() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/root/one.txt")).unwrap();
        mv.create(&p("/root/sub/two.txt")).unwrap();
        mv.mkdir_p(&p("/root/empty")).unwrap();
        let mut ls = mv.list(&p("/root")).unwrap();
        ls.sort();
        assert_eq!(
            ls,
            vec![
                ("empty".to_string(), true),
                ("one.txt".to_string(), false),
                ("sub".to_string(), true),
            ]
        );
        let top = mv.list(&p("/")).unwrap();
        assert_eq!(top, vec![("root".to_string(), true)]);
        assert!(mv.list(&p("/missing")).is_err());
    }

    #[test]
    fn listing_does_not_leak_siblings() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/ab/x")).unwrap();
        mv.create(&p("/abc/y")).unwrap();
        let ls = mv.list(&p("/ab")).unwrap();
        assert_eq!(ls, vec![("x".to_string(), false)]);
    }

    #[test]
    fn unlink_removes_from_view() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/f")).unwrap();
        let idx = mv.unlink(&p("/f")).unwrap();
        assert_eq!(idx.version_count(), 0);
        assert!(!mv.is_file(&p("/f")));
        assert!(matches!(
            mv.unlink(&p("/f")).unwrap_err(),
            OlfsError::NotFound(_)
        ));
    }

    #[test]
    fn state_store_roundtrip() {
        let mut mv = MetadataVolume::new();
        mv.put_state("da_index", serde_json::json!({"0": "Used"}));
        assert_eq!(
            mv.get_state("da_index").unwrap()["0"],
            serde_json::json!("Used")
        );
        assert!(mv.get_state("missing").is_none());
    }

    #[test]
    fn snapshot_restores_everything() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/x/data"))
            .unwrap()
            .push_version(LocTag::Bucket, 7, 1, vec![ImageId(3)]);
        mv.put_state("k", serde_json::json!(42));
        let snap = mv.snapshot();
        let back = MetadataVolume::restore(&snap).unwrap();
        assert!(back.is_file(&p("/x/data")));
        assert_eq!(back.get(&p("/x/data")).unwrap().latest().unwrap().size, 7);
        assert_eq!(back.get_state("k").unwrap(), &serde_json::json!(42));
        assert!(MetadataVolume::restore("garbage").is_err());
    }

    #[test]
    fn usage_grows_with_entries() {
        let mut mv = MetadataVolume::new();
        let base = mv.usage_bytes();
        mv.create(&p("/a/file"))
            .unwrap()
            .push_version(LocTag::Bucket, 10, 0, vec![ImageId(1)]);
        let after = mv.usage_bytes();
        // One file (inode + block) and one new directory (/a).
        assert_eq!(after - base, 2 * (128 + 1024));
    }
}
