//! The Metadata Volume (MV) — the global namespace store (§4.2).
//!
//! "OLFS stores all files' mapping information in a small and fast volume,
//! referred to as Metadata Volume (MV)... MV is built on a small RAID-1
//! formatted as ext4... Besides index files, all system running states and
//! maintenance information are also stored in MV in the Json format."
//!
//! `MetadataVolume` is the pure data structure: a sorted map from global
//! paths to [`IndexFile`]s plus a directory set and a JSON state store.
//! All *timing* (SSD RAID-1 random I/O, direct-I/O sync costs) is charged
//! by the engine, keeping this module unit-testable.

use crate::error::OlfsError;
use crate::index::IndexFile;
use ros_udf::UdfPath;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The metadata volume contents.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetadataVolume {
    /// Index files keyed by global path string.
    files: BTreeMap<String, IndexFile>,
    /// All directories ever created (the namespace skeleton).
    dirs: BTreeSet<String>,
    /// System running state, JSON-valued (§4.2's checkpoint store).
    state: BTreeMap<String, serde_json::Value>,
}

impl MetadataVolume {
    /// Creates an empty MV with just the root directory.
    pub fn new() -> Self {
        let mut dirs = BTreeSet::new();
        dirs.insert("/".to_string());
        MetadataVolume {
            files: BTreeMap::new(),
            dirs,
            state: BTreeMap::new(),
        }
    }

    /// Looks up a file's index.
    pub fn get(&self, path: &UdfPath) -> Option<&IndexFile> {
        self.files.get(&path.to_string())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, path: &UdfPath) -> Option<&mut IndexFile> {
        self.files.get_mut(&path.to_string())
    }

    /// Returns true if a file exists at the path.
    pub fn is_file(&self, path: &UdfPath) -> bool {
        self.files.contains_key(&path.to_string())
    }

    /// Returns true if a directory exists at the path.
    pub fn is_dir(&self, path: &UdfPath) -> bool {
        self.dirs.contains(&path.to_string())
    }

    /// Creates an index file (and its ancestor directories).
    pub fn create(&mut self, path: &UdfPath) -> Result<&mut IndexFile, OlfsError> {
        let key = path.to_string();
        if self.files.contains_key(&key) {
            return Err(OlfsError::AlreadyExists(key));
        }
        if self.dirs.contains(&key) {
            return Err(OlfsError::Invalid(format!("{key} is a directory")));
        }
        let mut dir = path.parent();
        while let Some(d) = dir {
            if self.files.contains_key(&d.to_string()) {
                return Err(OlfsError::Invalid(format!("{d} is a file")));
            }
            self.dirs.insert(d.to_string());
            dir = d.parent();
        }
        Ok(self.files.entry(key).or_default())
    }

    /// Creates a directory path explicitly.
    pub fn mkdir_p(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        let key = path.to_string();
        if self.files.contains_key(&key) {
            return Err(OlfsError::Invalid(format!("{key} is a file")));
        }
        let mut cur = Some(path.clone());
        while let Some(d) = cur {
            if self.files.contains_key(&d.to_string()) {
                return Err(OlfsError::Invalid(format!("{d} is a file")));
            }
            self.dirs.insert(d.to_string());
            cur = d.parent();
        }
        Ok(())
    }

    /// Removes a file from the global view (a tombstone in spirit: disc
    /// data remains, §4.6's provenance survives in old MV snapshots).
    pub fn unlink(&mut self, path: &UdfPath) -> Result<IndexFile, OlfsError> {
        self.files
            .remove(&path.to_string())
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))
    }

    /// Lists the immediate children of a directory: `(name, is_dir)`.
    pub fn list(&self, dir: &UdfPath) -> Result<Vec<(String, bool)>, OlfsError> {
        let key = dir.to_string();
        if !self.dirs.contains(&key) {
            return Err(OlfsError::NotFound(key));
        }
        let prefix = if key == "/" {
            "/".to_string()
        } else {
            format!("{key}/")
        };
        let mut out: BTreeMap<String, bool> = BTreeMap::new();
        let child_of = |full: &str| -> Option<(String, bool)> {
            let rest = full.strip_prefix(&prefix)?;
            if rest.is_empty() {
                return None;
            }
            match rest.split_once('/') {
                Some((head, _)) => Some((head.to_string(), true)),
                None => Some((rest.to_string(), false)),
            }
        };
        for d in self.dirs.range(prefix.clone()..) {
            if !d.starts_with(&prefix) {
                break;
            }
            if let Some((name, _)) = child_of(d) {
                out.insert(name, true);
            }
        }
        for f in self.files.range(prefix.clone()..) {
            if !f.0.starts_with(&prefix) {
                break;
            }
            if let Some((name, is_dir)) = child_of(f.0) {
                out.entry(name).or_insert(is_dir);
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Iterates over every `(path, index)` pair.
    pub fn iter_files(&self) -> impl Iterator<Item = (&String, &IndexFile)> {
        self.files.iter()
    }

    /// Number of index files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of directories (including the root).
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Total MV bytes consumed: index files plus a block+inode per
    /// directory (§4.2's 2.3 TB-per-2-billion-entries accounting).
    pub fn usage_bytes(&self) -> u64 {
        let files: u64 = self.files.values().map(IndexFile::mv_bytes).sum();
        let dirs = self.dirs.len() as u64
            * (crate::params::MV_INODE_BYTES + crate::params::MV_BLOCK_BYTES);
        files + dirs
    }

    /// Stores a JSON state record (DAindex, DILindex, checkpoints...).
    pub fn put_state(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.state.insert(key.into(), value);
    }

    /// Reads a JSON state record.
    pub fn get_state(&self, key: &str) -> Option<&serde_json::Value> {
        self.state.get(key)
    }

    /// Serialises the whole MV (for periodic burning to discs, §4.2).
    pub fn snapshot(&self) -> String {
        // ros-analysis: allow(L2, serializing an owned tree of strings and integers cannot fail)
        serde_json::to_string(self).expect("MV always serializes")
    }

    /// Restores an MV from a snapshot (§4.2: "Once MV fails, the entire
    /// global namespace can be recovered from discs").
    pub fn restore(snapshot: &str) -> Result<Self, OlfsError> {
        serde_json::from_str(snapshot)
            .map_err(|e| OlfsError::BadState(format!("corrupt MV snapshot: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ImageId;
    use crate::index::LocTag;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn create_builds_namespace() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/a/b/file")).unwrap();
        assert!(mv.is_file(&p("/a/b/file")));
        assert!(mv.is_dir(&p("/a")));
        assert!(mv.is_dir(&p("/a/b")));
        assert!(mv.is_dir(&p("/")));
        assert_eq!(mv.file_count(), 1);
        assert_eq!(mv.dir_count(), 3);
    }

    #[test]
    fn create_conflicts() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/f")).unwrap();
        assert!(matches!(
            mv.create(&p("/f")).unwrap_err(),
            OlfsError::AlreadyExists(_)
        ));
        // A file cannot be a directory on the path of another file.
        assert!(matches!(
            mv.create(&p("/f/inner")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
        mv.mkdir_p(&p("/d")).unwrap();
        assert!(matches!(
            mv.create(&p("/d")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
        assert!(matches!(
            mv.mkdir_p(&p("/f")).unwrap_err(),
            OlfsError::Invalid(_)
        ));
    }

    #[test]
    fn listing_separates_dirs_and_files() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/root/one.txt")).unwrap();
        mv.create(&p("/root/sub/two.txt")).unwrap();
        mv.mkdir_p(&p("/root/empty")).unwrap();
        let mut ls = mv.list(&p("/root")).unwrap();
        ls.sort();
        assert_eq!(
            ls,
            vec![
                ("empty".to_string(), true),
                ("one.txt".to_string(), false),
                ("sub".to_string(), true),
            ]
        );
        let top = mv.list(&p("/")).unwrap();
        assert_eq!(top, vec![("root".to_string(), true)]);
        assert!(mv.list(&p("/missing")).is_err());
    }

    #[test]
    fn listing_does_not_leak_siblings() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/ab/x")).unwrap();
        mv.create(&p("/abc/y")).unwrap();
        let ls = mv.list(&p("/ab")).unwrap();
        assert_eq!(ls, vec![("x".to_string(), false)]);
    }

    #[test]
    fn unlink_removes_from_view() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/f")).unwrap();
        let idx = mv.unlink(&p("/f")).unwrap();
        assert_eq!(idx.version_count(), 0);
        assert!(!mv.is_file(&p("/f")));
        assert!(matches!(
            mv.unlink(&p("/f")).unwrap_err(),
            OlfsError::NotFound(_)
        ));
    }

    #[test]
    fn state_store_roundtrip() {
        let mut mv = MetadataVolume::new();
        mv.put_state("da_index", serde_json::json!({"0": "Used"}));
        assert_eq!(
            mv.get_state("da_index").unwrap()["0"],
            serde_json::json!("Used")
        );
        assert!(mv.get_state("missing").is_none());
    }

    #[test]
    fn snapshot_restores_everything() {
        let mut mv = MetadataVolume::new();
        mv.create(&p("/x/data"))
            .unwrap()
            .push_version(LocTag::Bucket, 7, 1, vec![ImageId(3)]);
        mv.put_state("k", serde_json::json!(42));
        let snap = mv.snapshot();
        let back = MetadataVolume::restore(&snap).unwrap();
        assert!(back.is_file(&p("/x/data")));
        assert_eq!(back.get(&p("/x/data")).unwrap().latest().unwrap().size, 7);
        assert_eq!(back.get_state("k").unwrap(), &serde_json::json!(42));
        assert!(MetadataVolume::restore("garbage").is_err());
    }

    #[test]
    fn usage_grows_with_entries() {
        let mut mv = MetadataVolume::new();
        let base = mv.usage_bytes();
        mv.create(&p("/a/file"))
            .unwrap()
            .push_version(LocTag::Bucket, 10, 0, vec![ImageId(1)]);
        let after = mv.usage_bytes();
        // One file (inode + block) and one new directory (/a).
        assert_eq!(after - base, 2 * (128 + 1024));
    }
}
