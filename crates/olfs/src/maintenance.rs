//! The Maintenance Interface (MI) — administrator operations (§4.1).
//!
//! "OLFS also offers a Maintenance Interface module (MI) to configure and
//! maintain the system by an interactive interface for administrators."
//!
//! Everything here is read-mostly introspection plus the long-running
//! care tasks: DAindex/DILindex inspection, scrubbing (§4.7's idle-time
//! sector-error checking), checkpointing system state into MV, and media
//! ageing injection for reliability drills.

use crate::dim::{DaState, GroupState};
use crate::engine::Ros;
use crate::error::OlfsError;
use crate::ids::{ArrayId, DiscId, ImageId};
use ros_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A point-in-time status summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemStatus {
    /// Identity of the reporting rack ([`crate::config::RosConfig::rack_id`]);
    /// 0 for a standalone deployment. Lets a cluster front end aggregate
    /// per-rack status without wrapping the type.
    pub rack_id: u32,
    /// Simulated time of the snapshot.
    pub now_nanos: u64,
    /// Files in the global namespace.
    pub files: usize,
    /// Directories in the global namespace.
    pub dirs: usize,
    /// MV bytes consumed.
    pub mv_bytes: u64,
    /// Registered images.
    pub images: usize,
    /// DAindex counts: (empty, used, failed).
    pub da_counts: (usize, usize, usize),
    /// Groups waiting to burn.
    pub burn_backlog: usize,
    /// Disk-buffer usage: (used, capacity).
    pub buffer_usage: (u64, u64),
    /// Read-cache residents.
    pub cached_images: usize,
}

/// Result of a [`Ros::verify_resident_images`] digest sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImageVerifyReport {
    /// Resident images whose payloads matched their recorded digest.
    pub verified: usize,
    /// Images whose resident bytes no longer match — candidates for
    /// re-fetch or parity repair.
    pub mismatched: Vec<ImageId>,
}

/// Result of a full-library scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Discs scanned.
    pub discs_scanned: usize,
    /// Images found with sector errors, per disc.
    pub damaged: Vec<(DiscId, Vec<ImageId>)>,
    /// Simulated time the scan consumed.
    pub elapsed: SimDuration,
}

impl Ros {
    /// Produces a status summary (the MI dashboard).
    pub fn status(&self) -> SystemStatus {
        SystemStatus {
            rack_id: self.cfg.rack_id,
            now_nanos: self.now().as_nanos(),
            files: self.mv.file_count(),
            dirs: self.mv.dir_count(),
            mv_bytes: self.mv.usage_bytes(),
            images: self.store.len(),
            da_counts: self.store.da_counts(),
            burn_backlog: self.burn_queue.len(),
            buffer_usage: self.vm.usage(self.vol_buffer).unwrap_or((0, 0)),
            cached_images: self.cache.len(),
        }
    }

    /// DAindex state of a tray, by dense slot index.
    pub fn da_state(&self, slot_index: u32) -> Option<DaState> {
        self.store.da_state(slot_index)
    }

    /// DILindex lookup: the physical location of a burned image.
    pub fn locate_image(&self, image: ImageId) -> Option<crate::dim::DiscLocation> {
        self.store.location_of(image)
    }

    /// Number of array groups in each lifecycle state:
    /// (collecting, parity-pending, ready, burning, burned).
    pub fn group_census(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.store.groups_in_state(GroupState::Collecting).len(),
            self.store.groups_in_state(GroupState::ParityPending).len(),
            self.store.groups_in_state(GroupState::ReadyToBurn).len(),
            self.store.groups_in_state(GroupState::Burning).len(),
            self.store.groups_in_state(GroupState::Burned).len(),
        )
    }

    /// Seals every non-empty open bucket into an image *without* waiting
    /// for burns (unlike [`Ros::flush`]). Returns how many were sealed.
    pub fn seal_open_buckets(&mut self) -> Result<usize, OlfsError> {
        let mut sealed = 0;
        for i in 0..self.wbm.len() {
            if self.wbm.bucket(i).is_some_and(|b| !b.is_empty()) {
                let d = self.seal_bucket(i)?;
                self.run_for(d);
                sealed += 1;
            }
        }
        Ok(sealed)
    }

    /// Drops the disk-tier copies of all burned images (simulating full
    /// cache pressure), forcing subsequent reads onto the discs. Returns
    /// how many copies were dropped.
    pub fn evict_burned_copies(&mut self) -> usize {
        let ids: Vec<ImageId> = self
            .cache
            .lru_order()
            .filter(|id| {
                self.store
                    .get(*id)
                    .map(|i| i.burned.is_some() && i.on_disk())
                    .unwrap_or(false)
            })
            .collect();
        let mut n = 0;
        for id in ids {
            if let Ok(freed) = self.store.evict_disk_copy(id) {
                let _ = self.vm.release(self.vol_buffer, freed);
                self.cache.remove(id);
                n += 1;
            }
        }
        n
    }

    /// Drops the disk-tier copies of *every* burned image — data and
    /// parity alike — modelling fully cold storage where the optical
    /// media hold the only copy. [`Ros::evict_burned_copies`] walks the
    /// read cache and therefore only sees data images; this sweep also
    /// drops the parity payloads the burn pipeline leaves in the
    /// buffer, which otherwise mask on-media rot from the audit.
    /// Returns how many copies were dropped.
    pub fn evict_all_burned_copies(&mut self) -> usize {
        let ids: Vec<ImageId> = self
            .store
            .images()
            .filter(|i| i.burned.is_some() && i.on_disk())
            .map(|i| i.id)
            .collect();
        let mut n = 0;
        for id in ids {
            if let Ok(freed) = self.store.evict_disk_copy(id) {
                let _ = self.vm.release(self.vol_buffer, freed);
                self.cache.remove(id);
                n += 1;
            }
        }
        n
    }

    /// Flips `bytes` payload bytes on every burned in-tray disc —
    /// latent rot, the counterpart of [`Ros::age_media`]'s sector
    /// errors. The flips raise no I/O error and are invisible to
    /// [`Ros::scrub`]; only an end-to-end digest audit
    /// ([`Ros::audit_sample`]) can find them. Each disc is struck once
    /// with its own id as the selector, so the drill is deterministic.
    /// Returns how many discs were rotted.
    pub fn rot_media(&mut self, bytes: u32) -> usize {
        let mut rotted = 0;
        let ids: Vec<DiscId> = (0..self.registry.len() as u64).map(DiscId).collect();
        for id in ids {
            if let Some(disc) = self.registry.disc_mut(id) {
                if !disc.is_blank() && disc.rot_bytes(id.0, bytes) > 0 {
                    rotted += 1;
                }
            }
        }
        rotted
    }

    /// Unloads every idle (non-burning) bay back to the roller, leaving
    /// all drives free. Returns the bays unloaded.
    pub fn unload_all_bays(&mut self) -> Result<usize, OlfsError> {
        let mut n = 0;
        for bay in 0..self.bays.len() {
            if matches!(self.mech.bay_contents(bay), Ok(Some(_))) {
                self.unload_bay(bay)?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Returns the image segments of a file's newest version.
    pub fn image_segments(&self, path: &ros_udf::UdfPath) -> Option<Vec<ImageId>> {
        self.mv
            .get(path)
            .and_then(|i| i.latest())
            .map(|e| e.segs.clone())
    }

    /// Rewrites every array a scrub found damaged onto fresh discs
    /// (§4.7): repaired data images are pulled back to the buffer (the
    /// fetch path reconstructs them through parity), the old tray is
    /// retired as Failed, fresh parity is generated and the array is
    /// re-burned to an empty tray. Returns how many arrays were
    /// rewritten; the DILindex is updated by the re-burn.
    pub fn rewrite_damaged_arrays(&mut self, report: &ScrubReport) -> Result<usize, OlfsError> {
        use std::collections::BTreeSet;
        let mut gids: BTreeSet<ArrayId> = BTreeSet::new();
        for (_disc, images) in &report.damaged {
            for image in images {
                if let Some(gid) = self.store.get(*image).and_then(|i| i.array) {
                    gids.insert(gid);
                }
            }
        }
        let mut rewritten = 0;
        for gid in gids {
            let group = match self.store.group(gid) {
                Some(g) => g.clone(),
                None => continue,
            };
            // Pull every data image back to the buffer; damaged members
            // are reconstructed through parity by the fetch path.
            for image in &group.data {
                let on_disk = self
                    .store
                    .get(*image)
                    .map(crate::dim::ImageInfo::on_disk)
                    .unwrap_or(false);
                if !on_disk {
                    self.fetch_for_repair(*image)?;
                }
                // Pin until the rewrite completes.
                self.cache.insert(*image);
                self.cache.pin(*image);
            }
            // Bring the array home and retire its tray.
            for bay in 0..self.bays.len() {
                if self.mech.bay_contents(bay).is_ok_and(|c| c == group.slot) {
                    self.unload_bay(bay)?;
                }
            }
            let old_slot = self.store.reset_group_for_rewrite(gid)?;
            if let Some(slot) = old_slot {
                let idx = self.cfg.layout.slot_index(slot);
                self.store.set_da_state(idx, DaState::Failed);
            }
            self.schedule_parity(gid);
            rewritten += 1;
        }
        // Let the re-burns complete.
        self.run_until_quiescent(ros_sim::SimDuration::from_secs(3600 * 24));
        Ok(rewritten)
    }

    /// Force-closes the partially filled collecting group and schedules
    /// its delayed parity generation — what `flush` does, without waiting
    /// for the burns.
    pub fn force_close_collecting_group(&mut self) -> Option<ArrayId> {
        let gid = self.store.force_close_collecting()?;
        self.schedule_parity(gid);
        Some(gid)
    }

    /// Checkpoints DAindex/DILindex and counters into MV's state store
    /// (§4.2: "Once ROS crashes, OLFS can recover from its previous
    /// checkpoint state with all state information stored in MV").
    pub fn checkpoint(&mut self) {
        let state = self.store.state_json();
        self.mv.put_state("dim", state);
        self.mv.put_state(
            "counters",
            serde_json::json!({
                "writes": self.counters.writes,
                "reads": self.counters.reads,
                "burns": self.counters.burns,
            }),
        );
        self.mv
            .put_state("checkpoint_nanos", serde_json::json!(self.now().as_nanos()));
    }

    /// Reads back the last checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<SimTime> {
        self.mv
            .get_state("checkpoint_nanos")
            .and_then(serde_json::Value::as_u64)
            .map(SimTime::from_nanos)
    }

    /// Ages every burned disc in the library with an elevated sector
    /// error rate (reliability drills; the nominal rate of §4.7 is
    /// 1e-16 and would never fire at test scale).
    pub fn age_media(&mut self, rate: f64) -> usize {
        let mut rng = self.rng_mut().fork(0xA6E);
        let mut failures = 0;
        let ids: Vec<DiscId> = (0..self.registry.len() as u64).map(DiscId).collect();
        for id in ids {
            if let Some(disc) = self.registry.disc_mut(id) {
                if !disc.is_blank() {
                    failures += disc.age(rate, &mut rng);
                }
            }
        }
        failures
    }

    /// Scrubs all *in-tray* burned discs for sector errors (§4.7:
    /// "disc sector-error checking can be scheduled at idle times and can
    /// periodically scan all the burned disc arrays").
    ///
    /// The scan charges read time per burned disc surface at the drive
    /// aggregate rate; it does not move any discs (a full mechanical
    /// verify would use the fetch path).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let agg = self.bays[0].aggregate_read_speed(self.cfg.disc_class);
        // The per-disc surface scan is pure read-only real-bytes work,
        // so it fans out on the data plane; results come back in disc-id
        // order, so the report and the simulated read time charged below
        // are identical at any thread count.
        let plane = self.data_plane();
        let registry = &self.registry;
        let ids: Vec<DiscId> = (0..registry.len() as u64).map(DiscId).collect();
        let scans: Vec<Option<(u64, Vec<u64>)>> = plane.map(&ids, |id| {
            let disc = registry.disc(*id)?;
            if disc.is_blank() {
                return None;
            }
            let bytes = disc.tracks().iter().map(ros_drive::Track::len).sum::<u64>();
            Some((bytes, disc.scrub()))
        });
        let mut total_bytes = 0u64;
        for (id, scan) in ids.iter().zip(scans) {
            let Some((bytes, damaged)) = scan else {
                continue;
            };
            report.discs_scanned += 1;
            total_bytes += bytes;
            if !damaged.is_empty() {
                report
                    .damaged
                    .push((*id, damaged.into_iter().map(ImageId).collect()));
            }
        }
        report.elapsed = agg.time_for(total_bytes);
        let elapsed = report.elapsed;
        self.run_for(elapsed);
        self.last_scrub = Some(report.clone());
        report
    }

    /// The most recent scrub result, whether scheduled (§4.7's idle-time
    /// pass) or run manually.
    pub fn last_scrub_report(&self) -> Option<&ScrubReport> {
        self.last_scrub.as_ref()
    }

    /// Verifies every image payload resident on the disk tier against
    /// its recorded `ros-cas` content digest — the MI's verify-by-digest
    /// sweep (DESIGN.md §14). Complements [`Ros::scrub`]: the scrub
    /// finds *media* damage on burned discs, this pass proves the
    /// *buffered* bytes still match what was sealed. Burned-and-evicted
    /// images are skipped; their bytes are re-verified by
    /// `restore_disk_copy` on the next fetch.
    ///
    /// Verification fans out across images on the data plane (each
    /// image is hashed serially to avoid nested planes); the result is
    /// independent of the thread count.
    pub fn verify_resident_images(&self) -> ImageVerifyReport {
        let plane = self.data_plane();
        let resident: Vec<&crate::dim::ImageInfo> = self
            .store
            .images()
            .filter(|i| i.payload.is_some())
            .collect();
        let serial = ros_disk::DataPlane::single();
        let ok: Vec<bool> = plane.map(&resident, |info| match &info.payload {
            Some(p) => ros_cas::verify_payload(&info.digest, p, &serial).is_ok(),
            None => true,
        });
        let mut report = ImageVerifyReport::default();
        for (info, ok) in resident.iter().zip(ok) {
            if ok {
                report.verified += 1;
            } else {
                report.mismatched.push(info.id);
            }
        }
        report
    }

    /// Repairs every image a scrub found damaged, by fetching its array
    /// and reconstructing through parity (§4.7: "data on the failed
    /// sectors can be recovered from their parity discs and the
    /// corresponding data discs in the same disc array"). The recovered
    /// data re-enters the buffer and is re-burned with the next flush.
    ///
    /// Returns the repaired images.
    pub fn repair_damaged(&mut self, report: &ScrubReport) -> Result<Vec<ImageId>, OlfsError> {
        let mut repaired = Vec::new();
        for (_disc, images) in &report.damaged {
            for image in images {
                // The fetch path notices the sector errors and repairs
                // through redundancy automatically.
                let info = self.store.get(*image).ok_or(OlfsError::ImageLost(*image))?;
                if info.on_disk() {
                    repaired.push(*image);
                    continue; // Buffer copy already healthy.
                }
                self.fetch_for_repair(*image)?;
                repaired.push(*image);
            }
        }
        Ok(repaired)
    }

    /// Like [`Ros::repair_damaged`], but rides out transient mechanical
    /// and drive faults under `policy`. Repair fetches are idempotent
    /// (already-repaired images short-circuit on the healthy buffer
    /// copy), so a retried pass only redoes the work that failed.
    pub fn repair_damaged_supervised(
        &mut self,
        report: &ScrubReport,
        policy: &ros_faults::RetryPolicy,
    ) -> Result<(Vec<ImageId>, ros_faults::RetryStats), OlfsError> {
        self.supervised("repair", policy, |ros| ros.repair_damaged(report))
    }

    pub(crate) fn fetch_for_repair(&mut self, image: ImageId) -> Result<(), OlfsError> {
        // Reuse the read path: reading any of the image's files forces
        // the fetch + repair. Read via the image's recorded paths.
        let paths = self.image_paths.get(&image).cloned().unwrap_or_default();
        let Some(first) = paths.first() else {
            return Err(OlfsError::ImageLost(image));
        };
        let original = {
            // Shadow paths resolve through their original index files.

            first.clone()
        };
        let _ = self.read_file(&original)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RosConfig;

    #[test]
    fn status_reflects_activity() {
        let mut ros = Ros::new(RosConfig::tiny());
        let before = ros.status();
        assert_eq!(before.files, 0);
        assert_eq!(before.rack_id, 0, "standalone racks report id 0");
        ros.write_file(&"/a/b".parse().unwrap(), vec![1u8; 100])
            .unwrap();
        let after = ros.status();
        assert_eq!(after.files, 1);
        assert!(after.mv_bytes > before.mv_bytes);
        assert_eq!(after.da_counts.0, 8);
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut ros = Ros::new(RosConfig::tiny());
        assert!(ros.last_checkpoint().is_none());
        ros.write_file(&"/f".parse().unwrap(), vec![0u8; 10])
            .unwrap();
        ros.checkpoint();
        let t = ros.last_checkpoint().unwrap();
        assert_eq!(t, ros.now());
    }

    #[test]
    fn scrub_on_clean_library_is_clean() {
        let mut ros = Ros::new(RosConfig::tiny());
        ros.write_file(&"/f".parse().unwrap(), vec![0u8; 4096])
            .unwrap();
        let report = ros.scrub();
        assert!(report.damaged.is_empty());
        assert_eq!(report.discs_scanned, 0, "nothing burned yet");
    }
}

/// A consistency violation found by [`Ros::verify_consistency`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyIssue {
    /// What is inconsistent.
    pub what: String,
}

impl Ros {
    /// Cross-checks the internal indices against each other — the
    /// invariants the design relies on:
    ///
    /// 1. every Burned group's images carry a DILindex location,
    /// 2. every DILindex location points at a Used (or Failed) tray,
    /// 3. every read-cache resident actually has a disk copy,
    /// 4. every MV entry's segments are known to the image store,
    /// 5. unburned images still hold their (only) disk copy.
    ///
    /// Returns the violations found (empty = consistent).
    pub fn verify_consistency(&self) -> Vec<ConsistencyIssue> {
        let mut issues = Vec::new();
        let mut push = |what: String| issues.push(ConsistencyIssue { what });

        // 1 + 2: burned groups.
        for gid in self.store.groups_in_state(GroupState::Burned) {
            let Some(group) = self.store.group(gid) else {
                continue;
            };
            for img in group.data.iter().chain(group.parity.iter()) {
                match self.store.location_of(*img) {
                    None => push(format!("burned image {img} missing from DILindex")),
                    Some(loc) => {
                        let idx = self.cfg.layout.slot_index(loc.slot);
                        match self.store.da_state(idx) {
                            Some(DaState::Used) | Some(DaState::Failed) => {}
                            other => push(format!(
                                "image {img} burned on tray {idx} in state {other:?}"
                            )),
                        }
                    }
                }
            }
        }

        // 3: cache residency.
        for id in self.cache.lru_order() {
            let on_disk = self
                .store
                .get(id)
                .map(crate::dim::ImageInfo::on_disk)
                .unwrap_or(false);
            if !on_disk {
                push(format!("cached image {id} has no disk copy"));
            }
        }

        // 4: MV references resolve.
        for (path, idx) in self.mv.iter_files() {
            for entry in idx.versions() {
                for seg in &entry.segs {
                    let known =
                        self.store.get(*seg).is_some() || self.wbm.locate_image(*seg).is_some();
                    if !known {
                        push(format!(
                            "{path} v{} references unknown image {seg}",
                            entry.ver
                        ));
                    }
                }
            }
        }

        // 5: unburned images must be on disk (they have no other copy).
        for gid in self
            .store
            .groups_in_state(GroupState::Collecting)
            .into_iter()
            .chain(self.store.groups_in_state(GroupState::ParityPending))
            .chain(self.store.groups_in_state(GroupState::ReadyToBurn))
        {
            let Some(group) = self.store.group(gid) else {
                continue;
            };
            for img in group.data.iter().chain(group.parity.iter()) {
                let ok = self
                    .store
                    .get(*img)
                    .map(crate::dim::ImageInfo::on_disk)
                    .unwrap_or(false);
                if !ok {
                    push(format!("unburned image {img} lost its disk copy"));
                }
            }
        }

        issues
    }
}

/// One entry of a file's provenance trail (§4.6: "OLFS can conveniently
/// implement data provenance and data audit").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Version number.
    pub version: u32,
    /// Size of that version, bytes.
    pub size: u64,
    /// Write time, simulation nanoseconds.
    pub mtime_nanos: u64,
    /// Whether the bytes are still retrievable (in-place bucket updates
    /// physically replace their predecessor, §4.6).
    pub readable: bool,
    /// Where each segment of that version physically lives right now.
    pub locations: Vec<ProvenanceLocation>,
}

/// Physical location of one segment of one version.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProvenanceLocation {
    /// Still staged in an open write bucket.
    OpenBucket {
        /// The staging image id.
        image: ImageId,
    },
    /// A sealed image on the disk buffer / read cache.
    DiskBuffer {
        /// The image id.
        image: ImageId,
    },
    /// Burned onto a disc (with its tray coordinates).
    Disc {
        /// The image id.
        image: ImageId,
        /// The physical disc.
        disc: DiscId,
        /// Dense tray index.
        slot_index: u32,
        /// Position within the tray.
        position: u32,
    },
    /// The image is referenced but cannot be located (should not happen
    /// in a consistent system).
    Unknown {
        /// The image id.
        image: ImageId,
    },
}

impl Ros {
    /// Returns the full audit trail of a file: every retained version,
    /// its write time, and the physical home of each of its segments.
    pub fn provenance(&self, path: &ros_udf::UdfPath) -> Result<Vec<ProvenanceRecord>, OlfsError> {
        let idx = self
            .mv
            .get(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        let mut out = Vec::new();
        for entry in idx.versions() {
            let readable = !self.overwritten.contains(&(path.to_string(), entry.ver));
            let locations = entry
                .segs
                .iter()
                .map(|&image| {
                    if self.wbm.locate_image(image).is_some() {
                        return ProvenanceLocation::OpenBucket { image };
                    }
                    match self.store.get(image) {
                        Some(info) => match info.burned {
                            Some(loc) => ProvenanceLocation::Disc {
                                image,
                                disc: loc.disc,
                                slot_index: self.cfg.layout.slot_index(loc.slot),
                                position: loc.position,
                            },
                            None if info.on_disk() => ProvenanceLocation::DiskBuffer { image },
                            None => ProvenanceLocation::Unknown { image },
                        },
                        None => ProvenanceLocation::Unknown { image },
                    }
                })
                .collect();
            out.push(ProvenanceRecord {
                version: entry.ver,
                size: entry.size,
                mtime_nanos: entry.mtime,
                readable,
                locations,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod provenance_tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> ros_udf::UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn provenance_tracks_versions_through_the_tiers() {
        let mut r = Ros::new(RosConfig::tiny());
        r.write_file(&p("/audit"), vec![1u8; 10_000]).unwrap();
        r.seal_open_buckets().unwrap();
        r.write_file(&p("/audit"), vec![2u8; 12_000]).unwrap();
        let trail = r.provenance(&p("/audit")).unwrap();
        assert_eq!(trail.len(), 2);
        assert!(trail.iter().all(|rec| rec.readable));
        assert!(matches!(
            trail[0].locations[0],
            ProvenanceLocation::DiskBuffer { .. }
        ));
        assert!(matches!(
            trail[1].locations[0],
            ProvenanceLocation::OpenBucket { .. }
        ));
        // Burn everything: both versions now name physical discs.
        r.flush().unwrap();
        let trail = r.provenance(&p("/audit")).unwrap();
        for rec in &trail {
            assert!(matches!(rec.locations[0], ProvenanceLocation::Disc { .. }));
        }
        // Timestamps are ordered.
        assert!(trail[0].mtime_nanos <= trail[1].mtime_nanos);
    }

    #[test]
    fn provenance_marks_in_place_overwrites_unreadable() {
        let mut r = Ros::new(RosConfig::tiny());
        r.write_file(&p("/ip"), vec![1u8; 100]).unwrap();
        r.write_file(&p("/ip"), vec![2u8; 100]).unwrap(); // In place.
        let trail = r.provenance(&p("/ip")).unwrap();
        assert_eq!(trail.len(), 2);
        assert!(!trail[0].readable, "v1 physically replaced");
        assert!(trail[1].readable);
        assert!(r.provenance(&p("/missing")).is_err());
    }
}
