//! The OLFS engine: POSIX-style facade, tiered data path, task scheduling.
//!
//! `Ros` owns every subsystem — metadata volume, buckets, image store,
//! disk volumes, drive bays, the mechanical scheduler and the physical
//! disc registry — and drives them on a single discrete-event clock.
//!
//! Foreground calls ([`Ros::write_file`], [`Ros::read_file`], ...) walk
//! the paper's internal-operation sequences (Figure 7), charge simulated
//! time for every device touched, and advance the clock, delivering any
//! background events (parity completion, burn completion) that fall due
//! on the way. Background work — delayed parity generation (§4.7), burn
//! task management (§4.1), read-cache eviction — runs entirely off the
//! event queue, so writes return in milliseconds while hour-long burns
//! proceed "asynchronously" exactly as the paper describes.

use crate::cache::ReadCache;
use crate::config::{BusyReadPolicy, Redundancy, RosConfig};
use crate::dim::{DaState, DiscLocation, DiscRegistry, GroupState, ImageStore};
use crate::error::OlfsError;
use crate::ids::{ArrayId, DiscId, ImageId};
use crate::index::LocTag;
use crate::mv::MetadataVolume;
use crate::params;
use crate::redundancy;
use crate::trace::OpTrace;
use crate::wbm::{link_file_name, BucketManager, LinkFile, Placement};
use bytes::Bytes;
use ros_disk::volume::{VolumeId, VolumeManager};
use ros_disk::RaidArray;
use ros_drive::media::Payload;
use ros_drive::DriveSet;
use ros_mech::plc::Plc;
use ros_mech::{MechScheduler, SlotAddress};
use ros_sim::{EventQueue, SimDuration, SimRng, SimTime};
use ros_udf::UdfPath;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Background events on the engine clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Delayed parity generation finished for a group.
    ParityDone {
        /// The completed group.
        group: ArrayId,
    },
    /// An array burn finished in a bay.
    BurnDone {
        /// The burned group.
        group: ArrayId,
        /// The bay that held it.
        bay: usize,
    },
    /// Periodic idle-time scrub (§4.7).
    ScrubTick,
    /// Background array prefetch finished (spatial-locality refinement
    /// of the read cache, §4.1).
    PrefetchDone {
        /// The bay whose loaded array was being prefetched.
        bay: usize,
        /// Images to pull into the cache.
        images: Vec<ImageId>,
    },
}

/// Where a read was ultimately served from (Table 1's six rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadSource {
    /// Data still staged in an open bucket on the disk buffer.
    DiskBucket,
    /// A sealed disc image resident on the disk buffer / read cache.
    DiskImage,
    /// A disc already sitting in a drive.
    DiscInDrive,
    /// Fetched from the roller into a free drive bay.
    RollerFreeDrives,
    /// Fetched after first unloading a resident (idle) array.
    RollerUnloadFirst,
    /// Fetched after waiting for (or interrupting) a burn.
    RollerDrivesBusy,
}

/// Result of a file write.
#[derive(Clone, Debug)]
pub struct WriteReport {
    /// Version number assigned.
    pub version: u32,
    /// Images the data went to (more than one if split).
    pub segments: Vec<ImageId>,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Internal-operation trace (Figure 7).
    pub trace: OpTrace,
}

/// Result of a file read.
#[derive(Clone, Debug)]
pub struct ReadReport {
    /// The file contents.
    pub data: Bytes,
    /// Version served.
    pub version: u32,
    /// End-to-end latency to the last byte.
    pub latency: SimDuration,
    /// Latency to the first byte (≈2 ms when the forepart answered,
    /// §4.8).
    pub first_byte_latency: SimDuration,
    /// Where the data came from.
    pub source: ReadSource,
    /// Internal-operation trace.
    pub trace: OpTrace,
}

/// Engine activity counters (maintenance interface telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Files written.
    pub writes: u64,
    /// Files read.
    pub reads: u64,
    /// Files updated (regenerating updates, §4.6).
    pub updates: u64,
    /// Buckets sealed into images.
    pub buckets_sealed: u64,
    /// Files split across images.
    pub splits: u64,
    /// Parity generations completed.
    pub parity_runs: u64,
    /// Array burns completed.
    pub burns: u64,
    /// Mechanical fetches performed for reads.
    pub fetches: u64,
    /// Burns interrupted to serve reads (§4.8).
    pub burn_interrupts: u64,
    /// Damaged images repaired via array redundancy (§4.7).
    pub repairs: u64,
    /// Spoiled burns retried onto a spare tray (the ruined write-once
    /// tray is retired as Failed).
    pub reburns: u64,
    /// Writes served by the dedup catalog without placing data (§14).
    pub dedup_hits: u64,
    /// Client bytes that never hit the write buffer thanks to dedup.
    pub dedup_bytes_saved: u64,
    /// Bytes memcpy'd on the read path. Single-segment reads hand back
    /// refcounted slices (zero-copy), so only multi-segment joins count.
    pub read_copy_bytes: u64,
    /// Latent-rot repairs: fetches whose payload read back *cleanly* but
    /// failed the CAS digest check and were reconstructed from array
    /// redundancy before any client saw the corrupt bytes (§16).
    pub latent_repairs: u64,
}

#[derive(Clone, Debug)]
struct BurningInfo {
    group: ArrayId,
    until: SimTime,
    sizes: Vec<u64>,
    append: bool,
}

/// The ROS system.
pub struct Ros {
    pub(crate) cfg: RosConfig,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) rng: SimRng,
    pub(crate) mech: MechScheduler,
    pub(crate) bays: Vec<DriveSet>,
    pub(crate) vm: VolumeManager,
    pub(crate) vol_mv: VolumeId,
    pub(crate) vol_buffer: VolumeId,
    pub(crate) vol_aux: VolumeId,
    pub(crate) mv: MetadataVolume,
    pub(crate) store: ImageStore,
    pub(crate) registry: DiscRegistry,
    pub(crate) wbm: BucketManager,
    pub(crate) cache: ReadCache,
    pub(crate) counters: Counters,
    pub(crate) burn_queue: VecDeque<ArrayId>,
    burning: BTreeMap<usize, BurningInfo>,
    /// Bays reserved by an in-flight foreground fetch; the burn starter
    /// must not grab them.
    reserved_bays: BTreeSet<usize>,
    /// Groups whose next burn must append tracks (post-interrupt).
    append_groups: BTreeSet<ArrayId>,
    /// Which paths each image carries (LocTag promotion & recovery).
    pub(crate) image_paths: BTreeMap<ImageId, Vec<UdfPath>>,
    /// Per-(bay, drive) VFS-mount state (§5.4's 220 ms charge).
    vfs_mounted: BTreeMap<(usize, usize), bool>,
    /// In-place-update bookkeeping: (path, version) -> stored path.
    pub(crate) in_place: BTreeMap<(String, u32), UdfPath>,
    /// Result of the most recent (scheduled or manual) scrub pass.
    pub(crate) last_scrub: Option<crate::maintenance::ScrubReport>,
    /// Result of the most recent sampled audit pass (§16).
    pub(crate) last_audit: Option<crate::audit::AuditReport>,
    /// Last access instant per (bay, drive); drives spin down after
    /// `ros_drive::params::sleep_after_idle()` (§5.4).
    drive_last_used: BTreeMap<(usize, usize), SimTime>,
    /// Versions whose bytes were physically overwritten by a later
    /// in-place bucket update (§4.6) and can no longer be read.
    pub(crate) overwritten: BTreeSet<(String, u32)>,
    /// Bays taken out of rotation after persistent drive failures; the
    /// burn starter and fetch paths route around them until serviced.
    quarantined_bays: BTreeSet<usize>,
    /// Consecutive spoiled burns per bay; two in a row quarantines.
    bay_burn_failures: BTreeMap<usize, u32>,
    /// Content-addressable dedup bookkeeping (§14); consulted only when
    /// `cfg.dedup` is set.
    pub(crate) dedup: crate::dedup::DedupLayer,
}

impl Ros {
    /// Builds a ROS system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RosConfig::validate`]; use
    /// [`Ros::try_new`] to handle an invalid configuration as a value.
    pub fn new(cfg: RosConfig) -> Self {
        // ros-analysis: allow(L2, documented constructor contract: see the # Panics section)
        Self::try_new(cfg).expect("invalid RosConfig")
    }

    /// Builds a ROS system, surfacing configuration errors as values.
    pub fn try_new(cfg: RosConfig) -> Result<Self, OlfsError> {
        cfg.validate()?;
        let mut vm = VolumeManager::new();
        let vol_mv = vm.add_volume("mv", RaidArray::prototype_metadata());
        let vol_buffer = vm.add_volume("buffer", RaidArray::prototype_data());
        let vol_aux = vm.add_volume("aux", RaidArray::prototype_data());
        let mech = MechScheduler::new(Plc::new_full(cfg.layout), cfg.drive_bays);
        let bays = (0..cfg.drive_bays)
            .map(|_| {
                let mut set = DriveSet::new(cfg.drives_per_bay);
                if cfg.write_and_check {
                    for d in set.iter_mut() {
                        d.check_mode = true;
                    }
                }
                set
            })
            .collect();
        let mut store = ImageStore::new(&cfg.layout);
        let bucket_ids = (0..cfg.open_buckets)
            .map(|_| store.allocate_image_id())
            .collect();
        let wbm = BucketManager::new(bucket_ids, cfg.disc_class.capacity());
        let registry = DiscRegistry::new(&cfg.layout, cfg.disc_class);
        let cache = ReadCache::new(cfg.read_cache_images);
        let rng = SimRng::seed_from(cfg.seed);
        let mut queue = EventQueue::new();
        if let Some(interval) = cfg.scrub_interval {
            queue.schedule_in(interval, Event::ScrubTick);
        }
        Ok(Ros {
            queue,
            rng,
            mech,
            bays,
            vm,
            vol_mv,
            vol_buffer,
            vol_aux,
            mv: MetadataVolume::new(),
            store,
            registry,
            wbm,
            cache,
            counters: Counters::default(),
            burn_queue: VecDeque::new(),
            burning: BTreeMap::new(),
            reserved_bays: BTreeSet::new(),
            append_groups: BTreeSet::new(),
            image_paths: BTreeMap::new(),
            vfs_mounted: BTreeMap::new(),
            in_place: BTreeMap::new(),
            last_scrub: None,
            last_audit: None,
            drive_last_used: BTreeMap::new(),
            overwritten: BTreeSet::new(),
            quarantined_bays: BTreeSet::new(),
            bay_burn_failures: BTreeMap::new(),
            dedup: crate::dedup::DedupLayer::new(),
            cfg,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> &RosConfig {
        &self.cfg
    }

    /// The real-bytes data plane sized by `cfg.data_plane_threads`
    /// (0 = auto-detect). Parity encode, scrub verification, and
    /// recovery reconstruction run their kernels here; the plane is
    /// deterministic, so the thread count never changes behaviour.
    pub fn data_plane(&self) -> ros_disk::DataPlane {
        ros_disk::DataPlane::with_threads(self.cfg.data_plane_threads)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Activity counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Read-cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Advances simulated time, delivering due background events.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.queue.now() + d;
        self.run_until(deadline);
    }

    /// Advances simulated time to an absolute instant.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.pop_until(deadline) {
            self.handle(ev.payload);
        }
    }

    /// Runs until no background *work* remains (burns, parity, queued
    /// groups) or `limit` elapses. Periodic scrub ticks do not count as
    /// work. Returns true if fully quiescent.
    pub fn run_until_quiescent(&mut self, limit: SimDuration) -> bool {
        let deadline = self.queue.now() + limit;
        loop {
            self.try_start_burns();
            if !self.has_pending_work() {
                break;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let Some(ev) = self.queue.pop() else { break };
                    self.handle(ev.payload);
                }
                _ => break,
            }
        }
        !self.has_pending_work()
    }

    /// Outstanding background work, for operator diagnostics when a
    /// flush will not quiesce: `(burns_in_flight, burns_queued,
    /// parity_pending_groups, ready_to_burn_groups)`.
    pub fn pending_work(&self) -> (usize, usize, usize, usize) {
        (
            self.burning.len(),
            self.burn_queue.len(),
            self.store.groups_in_state(GroupState::ParityPending).len(),
            self.store.groups_in_state(GroupState::ReadyToBurn).len(),
        )
    }

    /// True while burns are in flight or queued, or parity generation is
    /// outstanding.
    fn has_pending_work(&self) -> bool {
        !self.burning.is_empty()
            || !self.burn_queue.is_empty()
            || !self
                .store
                .groups_in_state(GroupState::ParityPending)
                .is_empty()
            || !self
                .store
                .groups_in_state(GroupState::ReadyToBurn)
                .is_empty()
    }

    fn advance(&mut self, d: SimDuration) {
        let deadline = self.queue.now() + d;
        self.run_until(deadline);
    }

    // ------------------------------------------------------------------
    // Write path (PBW, §4.3-4.6)
    // ------------------------------------------------------------------

    /// Writes a new file, or a new *version* if the path already exists
    /// (the regenerating update of §4.6).
    pub fn write_file(
        &mut self,
        path: &UdfPath,
        data: impl Into<Bytes>,
    ) -> Result<WriteReport, OlfsError> {
        let data = data.into();
        if path.is_root() {
            return Err(OlfsError::Invalid("cannot write to /".into()));
        }
        let mut trace = OpTrace::new();

        // stat: look up the index file (MV random read, direct I/O).
        let mv_read = self.vm.random_read_time(self.vol_mv, 1024)?;
        let d = trace.step("stat", mv_read);
        self.advance(d);
        let exists = self.mv.is_file(path);

        if exists {
            return self.update_file(path, data, trace);
        }

        // mknod: create the index file and the bucket file entry.
        let mv_write = self.vm.random_read_time(self.vol_mv, 1024)?;
        let d = trace.step("mknod", mv_write);
        self.advance(d);
        self.mv.create(path)?;

        // stat again (the VFS re-validates after create, §5.3).
        let d = trace.step("stat", mv_read);
        self.advance(d);

        // Dedup (§14): a payload whose content digest is already
        // catalogued shares the canonical copy's placement — no second
        // bucket residency, no second parity charge, no second burn.
        let dedup_digest = if self.cfg.dedup {
            let digest = ros_cas::content_digest(&data, &self.data_plane());
            if let Some(entry) = self.dedup.lookup(&digest).cloned() {
                return self.finish_dedup_write(path, &data, digest, entry, trace, mv_write, false);
            }
            Some(digest)
        } else {
            None
        };

        // write: place the data into buckets.
        let (segments, seg_sizes, write_time) = self.place_data(path, &data)?;
        let d = trace.step("write", write_time);
        self.advance(d);

        // close/release: update the index file.
        let d = trace.step("close", mv_write);
        self.advance(d);
        let now = self.queue.now().as_nanos();
        let forepart = self.make_forepart(&data);
        let idx = self
            .mv
            .get_mut(path)
            .ok_or_else(|| OlfsError::BadState("index entry vanished after create".into()))?;
        let version = idx.push_version_sized(
            LocTag::Bucket,
            data.len() as u64,
            now,
            segments.clone(),
            seg_sizes.clone(),
        );
        idx.set_forepart(forepart);

        if let Some(digest) = dedup_digest {
            self.dedup.record_canonical(
                path,
                version,
                digest,
                &data,
                crate::dedup::CatalogEntry {
                    segments: segments.clone(),
                    seg_sizes,
                    stored: path.clone(),
                },
            );
        }
        for seg in &segments {
            self.image_paths.entry(*seg).or_default().push(path.clone());
        }
        self.counters.writes += 1;
        if segments.len() > 1 {
            self.counters.splits += 1;
        }
        self.try_start_burns();
        Ok(WriteReport {
            version,
            segments,
            latency: trace.total(),
            trace,
        })
    }

    /// Regenerating update (§4.6).
    fn update_file(
        &mut self,
        path: &UdfPath,
        data: Bytes,
        mut trace: OpTrace,
    ) -> Result<WriteReport, OlfsError> {
        let mv_write = self.vm.random_read_time(self.vol_mv, 1024)?;
        let latest = self
            .mv
            .get(path)
            .and_then(|i| i.latest().cloned())
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;

        // In an open bucket with enough space: simple in-place update.
        // §14: a version whose digest is shared by other versions must
        // never be overwritten in place — regenerate instead.
        let shared = self.cfg.dedup && self.dedup.version_shared(path, latest.ver);
        let in_bucket = latest
            .segs
            .first()
            .and_then(|&img| self.wbm.locate_image(img))
            .filter(|_| latest.segs.len() == 1 && !shared);
        if let Some(bi) = in_bucket {
            // The stored path of the latest version inside the bucket.
            let stored = self
                .resolve_stored_paths(path, latest.ver)
                .into_iter()
                .find(|p| self.wbm.bucket(bi).map(|b| b.contains(p)).unwrap_or(false));
            if let Some(stored) = stored {
                let fits = {
                    let Some(b) = self.wbm.bucket(bi) else {
                        return Err(OlfsError::BadState(format!("bucket {bi} vanished")));
                    };
                    let growth = ros_udf::blocks_for(data.len() as u64)
                        .saturating_sub(ros_udf::blocks_for(latest.size))
                        * ros_udf::BLOCK_SIZE;
                    growth <= b.free_bytes()
                };
                if fits {
                    let io = params::bucket_write_device()
                        + self.vm.write_time(self.vol_buffer, data.len() as u64)?;
                    let d = trace.step("write", io);
                    self.advance(d);
                    let now = self.queue.now().as_nanos();
                    self.wbm
                        .bucket_mut(bi)
                        .ok_or_else(|| OlfsError::BadState(format!("bucket {bi} vanished")))?
                        .update(&stored, data.clone(), now)?;
                    let d = trace.step("close", mv_write);
                    self.advance(d);
                    let forepart = self.make_forepart(&data);
                    let idx = self.mv.get_mut(path).ok_or_else(|| {
                        OlfsError::BadState("index entry vanished mid-update".into())
                    })?;
                    let version = idx.push_version(
                        LocTag::Bucket,
                        data.len() as u64,
                        now,
                        latest.segs.clone(),
                    );
                    idx.set_forepart(forepart);
                    // Record that this version lives at the previous
                    // version's stored path, whose old bytes are gone.
                    self.in_place_updates(path, version, &stored);
                    self.overwritten.insert((path.to_string(), latest.ver));
                    if self.cfg.dedup {
                        // The old bytes are gone (the guard above
                        // guaranteed they were unshared); catalogue the
                        // stored location under the new content digest.
                        self.dedup.invalidate_version(path, latest.ver);
                        let digest = ros_cas::content_digest(&data, &self.data_plane());
                        self.dedup.record_canonical(
                            path,
                            version,
                            digest,
                            &data,
                            crate::dedup::CatalogEntry {
                                segments: latest.segs.clone(),
                                seg_sizes: vec![data.len() as u64],
                                stored: stored.clone(),
                            },
                        );
                    }
                    self.counters.updates += 1;
                    return Ok(WriteReport {
                        version,
                        segments: latest.segs,
                        latency: trace.total(),
                        trace,
                    });
                }
            }
        }

        // Otherwise: regenerate — a fresh copy under a versioned shadow
        // path in current buckets (the old image keeps the old bytes).
        let next_ver = self
            .mv
            .get(path)
            .and_then(|i| i.latest())
            .map(|e| e.ver + 1)
            .unwrap_or(1);
        // Dedup applies to regenerated versions too: an update whose new
        // content matches any catalogued payload links it instead of
        // placing a fresh copy.
        let dedup_digest = if self.cfg.dedup {
            let digest = ros_cas::content_digest(&data, &self.data_plane());
            if let Some(entry) = self.dedup.lookup(&digest).cloned() {
                return self.finish_dedup_write(path, &data, digest, entry, trace, mv_write, true);
            }
            Some(digest)
        } else {
            None
        };
        let shadow = Self::shadow_path(path, next_ver);
        let (segments, seg_sizes, write_time) = self.place_data(&shadow, &data)?;
        let d = trace.step("write", write_time);
        self.advance(d);
        let d = trace.step("close", mv_write);
        self.advance(d);
        let now = self.queue.now().as_nanos();
        let forepart = self.make_forepart(&data);
        let idx = self
            .mv
            .get_mut(path)
            .ok_or_else(|| OlfsError::BadState("index entry vanished mid-update".into()))?;
        let version = idx.push_version_sized(
            LocTag::Bucket,
            data.len() as u64,
            now,
            segments.clone(),
            seg_sizes.clone(),
        );
        idx.set_forepart(forepart);
        if let Some(digest) = dedup_digest {
            self.dedup.record_canonical(
                path,
                version,
                digest,
                &data,
                crate::dedup::CatalogEntry {
                    segments: segments.clone(),
                    seg_sizes,
                    stored: shadow.clone(),
                },
            );
        }
        for seg in &segments {
            self.image_paths
                .entry(*seg)
                .or_default()
                .push(shadow.clone());
        }
        self.counters.updates += 1;
        self.try_start_burns();
        Ok(WriteReport {
            version,
            segments,
            latency: trace.total(),
            trace,
        })
    }

    /// The shadow path regenerated version `ver` of `path` is stored
    /// under inside images.
    fn shadow_path(path: &UdfPath, ver: u32) -> UdfPath {
        // Callers only pass file paths; a root path has no shadow.
        match (path.parent(), path.name()) {
            (Some(parent), Some(name)) => parent.join(&format!(".rosv{ver}-{name}")),
            _ => path.clone(),
        }
    }

    /// Remembers that `version` of `path` was an in-place update stored
    /// at `stored` (so later reads resolve correctly).
    fn in_place_updates(&mut self, path: &UdfPath, version: u32, stored: &UdfPath) {
        self.in_place
            .insert((path.to_string(), version), stored.clone());
    }

    /// Completes a write whose payload dedup-hit a catalogued blob
    /// (§14): the new version points at the canonical copy's segments
    /// and no data is placed — only the index close is charged.
    #[allow(clippy::too_many_arguments)]
    fn finish_dedup_write(
        &mut self,
        path: &UdfPath,
        data: &Bytes,
        digest: ros_cas::Digest,
        entry: crate::dedup::CatalogEntry,
        mut trace: OpTrace,
        mv_write: SimDuration,
        is_update: bool,
    ) -> Result<WriteReport, OlfsError> {
        let d = trace.step("close", mv_write);
        self.advance(d);
        let now = self.queue.now().as_nanos();
        let forepart = self.make_forepart(data);
        let idx = self
            .mv
            .get_mut(path)
            .ok_or_else(|| OlfsError::BadState("index entry vanished before dedup link".into()))?;
        let version = idx.push_version_sized(
            LocTag::Bucket,
            data.len() as u64,
            now,
            entry.segments.clone(),
            entry.seg_sizes.clone(),
        );
        idx.set_forepart(forepart);
        if !self
            .dedup
            .record_duplicate(path, version, digest, &entry.stored)
        {
            return Err(OlfsError::BadState(format!(
                "dedup catalog out of sync for digest {digest}"
            )));
        }
        for seg in &entry.segments {
            self.image_paths.entry(*seg).or_default().push(path.clone());
            // The canonical copy may already have left the write buffer;
            // promote the fresh version's location tag to match.
            let tag = if self.wbm.locate_image(*seg).is_some() {
                None
            } else if self.store.get(*seg).and_then(|i| i.burned).is_some() {
                Some(LocTag::Disc)
            } else {
                Some(LocTag::Image)
            };
            if let Some(tag) = tag {
                if let Some(idx) = self.mv.get_mut(path) {
                    idx.promote_image(*seg, tag);
                }
            }
        }
        if is_update {
            self.counters.updates += 1;
        } else {
            self.counters.writes += 1;
        }
        self.counters.dedup_hits += 1;
        self.counters.dedup_bytes_saved += data.len() as u64;
        Ok(WriteReport {
            version,
            segments: entry.segments,
            latency: trace.total(),
            trace,
        })
    }

    /// Dedup accounting snapshot (§14); all-zero until `cfg.dedup`
    /// routes writes through the catalog.
    pub fn dedup_stats(&self) -> crate::dedup::DedupStats {
        self.dedup.stats()
    }

    fn make_forepart(&self, data: &Bytes) -> Option<Bytes> {
        if self.cfg.forepart_bytes == 0 {
            return None;
        }
        let n = (self.cfg.forepart_bytes as usize).min(data.len());
        Some(data.slice(..n))
    }

    /// Places file data into buckets, splitting and sealing as needed.
    /// Returns `(segments, per-segment sizes, device time)`.
    fn place_data(
        &mut self,
        path: &UdfPath,
        data: &Bytes,
    ) -> Result<(Vec<ImageId>, Vec<u64>, SimDuration), OlfsError> {
        let mut segments = Vec::new();
        let mut seg_sizes: Vec<u64> = Vec::new();
        let mut offset = 0u64;
        let total = data.len() as u64;
        let mut io = SimDuration::ZERO;
        let mut guard = 0u32;
        loop {
            if !(offset < total || (total == 0 && segments.is_empty())) {
                break;
            }
            guard += 1;
            if guard > 10_000 {
                return Err(OlfsError::BadState(
                    "file placement failed to converge".into(),
                ));
            }
            let remaining = total - offset;
            match self.wbm.place(path, remaining) {
                Placement::Whole { bucket } => {
                    let chunk = data.slice(offset as usize..);
                    io += params::bucket_write_device()
                        + self.vm.write_time(self.vol_buffer, chunk.len() as u64)?;
                    let now = self.queue.now().as_nanos();
                    let b = self.wbm.bucket_mut(bucket).ok_or_else(|| {
                        OlfsError::BadState(format!("placement chose missing bucket {bucket}"))
                    })?;
                    let image = ImageId(b.image_id());
                    b.write(path, chunk, now)?;
                    if offset > 0 {
                        self.write_link_file(bucket, path, &segments, offset, total);
                    }
                    segments.push(image);
                    seg_sizes.push(total - offset);
                    break;
                }
                Placement::Split { bucket, prefix } => {
                    let chunk = data.slice(offset as usize..(offset + prefix) as usize);
                    io += params::bucket_write_device()
                        + self.vm.write_time(self.vol_buffer, prefix)?;
                    let now = self.queue.now().as_nanos();
                    let b = self.wbm.bucket_mut(bucket).ok_or_else(|| {
                        OlfsError::BadState(format!("placement chose missing bucket {bucket}"))
                    })?;
                    let image = ImageId(b.image_id());
                    b.write(path, chunk, now)?;
                    if offset > 0 {
                        self.write_link_file(bucket, path, &segments, offset, total);
                    }
                    segments.push(image);
                    seg_sizes.push(prefix);
                    offset += prefix;
                    io += self.seal_bucket(bucket)?;
                }
                Placement::NoRoom => {
                    let fullest = (0..self.wbm.len())
                        .max_by_key(|&i| self.wbm.bucket(i).map(|b| b.used_bytes()).unwrap_or(0))
                        .ok_or_else(|| OlfsError::BadState("no open buckets".into()))?;
                    if self.wbm.bucket(fullest).is_none_or(|b| b.is_empty()) {
                        return Err(OlfsError::Invalid(format!(
                            "file unplaceable: {remaining} bytes left"
                        )));
                    }
                    io += self.seal_bucket(fullest)?;
                }
            }
        }
        Ok((segments, seg_sizes, io))
    }

    /// Writes the link file stitching subfile `offset` of `path` to the
    /// previous segment (§4.5).
    fn write_link_file(
        &mut self,
        bucket: usize,
        path: &UdfPath,
        segments: &[ImageId],
        offset: u64,
        total: u64,
    ) {
        let Some(&prev) = segments.last() else {
            return;
        };
        let link = LinkFile {
            prev_image: prev.0,
            offset,
            total_size: total,
        };
        // Best effort (see below): root paths carry no link file.
        let (Some(parent), Some(name)) = (path.parent(), path.name()) else {
            return;
        };
        let link_path = parent.join(&link_file_name(name));
        let now = self.queue.now().as_nanos();
        // Best effort: if the link file doesn't fit, MV still stitches
        // the segments; only MV-less recovery loses the continuation.
        if let Some(b) = self.wbm.bucket_mut(bucket) {
            let _ = b.write(&link_path, link.to_json().into_bytes(), now);
        }
    }

    /// Seals bucket `i` into an image. Returns device time consumed.
    pub(crate) fn seal_bucket(&mut self, i: usize) -> Result<SimDuration, OlfsError> {
        let new_id = self.store.allocate_image_id();
        let old = self.wbm.rotate(i, new_id);
        if old.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let sealed = old.close()?;
        let image = ImageId(sealed.image_id());
        let bytes = sealed.len();
        self.vm.allocate(self.vol_buffer, bytes)?;
        let plane = self.data_plane();
        let completed = self
            .store
            .register_sealed(sealed, self.cfg.data_discs_per_array(), &plane);
        self.cache.insert(image);
        self.cache.pin(image);
        self.promote_paths(image, LocTag::Image);
        self.counters.buckets_sealed += 1;
        if let Some(gid) = completed {
            self.schedule_parity(gid);
        }
        Ok(SimDuration::from_micros(500))
    }

    fn promote_paths(&mut self, image: ImageId, loc: LocTag) {
        if let Some(paths) = self.image_paths.get(&image).cloned() {
            for p in paths {
                // Shadow paths map back to their original index file.
                let original = Self::original_of(&p);
                if let Some(idx) = self.mv.get_mut(&original) {
                    idx.promote_image(image, loc);
                }
            }
        }
    }

    /// Maps a (possibly shadow) stored path back to the global path.
    fn original_of(p: &UdfPath) -> UdfPath {
        let Some(name) = p.name() else {
            return p.clone();
        };
        if let Some(rest) = name.strip_prefix(".rosv") {
            if let (Some(dash), Some(parent)) = (rest.find('-'), p.parent()) {
                let original = &rest[dash + 1..];
                return parent.join(original);
            }
        }
        p.clone()
    }

    /// Schedules delayed parity generation for a completed group (§4.7).
    pub(crate) fn schedule_parity(&mut self, gid: ArrayId) {
        let Some(group) = self.store.group(gid) else {
            return;
        };
        let read_bytes: u64 = group
            .data
            .iter()
            .filter_map(|id| self.store.get(*id))
            .map(|i| i.size)
            .sum();
        let max_size = group
            .data
            .iter()
            .filter_map(|id| self.store.get(*id))
            .map(|i| i.size)
            .max()
            .unwrap_or(0);
        let write_vol = if self.cfg.separate_volumes {
            self.vol_aux
        } else {
            self.vol_buffer
        };
        let parity_count = self.cfg.redundancy.parity_discs() as u64;
        let read = self
            .vm
            .read_time(self.vol_buffer, read_bytes)
            .unwrap_or(SimDuration::ZERO);
        let write = self
            .vm
            .write_time(write_vol, max_size * parity_count)
            .unwrap_or(SimDuration::ZERO);
        let dur = if self.cfg.separate_volumes {
            // Independent volumes let the read and write streams overlap.
            read.max(write)
        } else {
            // Same volume: the streams serialise and interfere.
            (read + write).mul_f64(1.0 / ros_disk::params::STREAM_INTERFERENCE_FACTOR)
        };
        self.queue
            .schedule_in(dur, Event::ParityDone { group: gid });
    }

    // ------------------------------------------------------------------
    // Background events
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::ParityDone { group } => self.finish_parity(group),
            Event::BurnDone { group, bay } => self.finish_burn(group, bay),
            Event::ScrubTick => self.scheduled_scrub(),
            Event::PrefetchDone { bay, images } => self.finish_prefetch(bay, images),
        }
    }

    /// Completes a background array prefetch: every sibling image still
    /// sitting in the bay's drives gets its payload restored to the disk
    /// tier and becomes a cache resident.
    fn finish_prefetch(&mut self, bay: usize, images: Vec<ImageId>) {
        for image in images {
            let already = self
                .store
                .get(image)
                .map(crate::dim::ImageInfo::on_disk)
                .unwrap_or(true);
            if already {
                continue;
            }
            let Some(loc) = self.store.location_of(image) else {
                continue;
            };
            // The array may have been unloaded since; skip silently.
            if self.mech.bay_contents(bay).ok().flatten() != Some(loc.slot) {
                continue;
            }
            let pos = loc.position as usize;
            let Some(drive) = self.bays[bay].drive_mut(pos) else {
                continue;
            };
            let Ok(timed) = drive.read_image(image.0) else {
                continue;
            };
            if let Payload::Inline(bytes) = timed.payload {
                let plane = self.data_plane();
                if self
                    .vm
                    .allocate(self.vol_buffer, bytes.len() as u64)
                    .is_ok()
                    && self.store.restore_disk_copy(image, bytes, &plane).is_ok()
                {
                    self.cache.insert(image);
                    self.apply_cache_pressure();
                }
            }
        }
    }

    /// Runs the periodic scrub if the library is idle, then reschedules.
    /// Busy ticks (burns in flight) skip the pass — §4.7 schedules the
    /// sector-error checking "at idle times".
    fn scheduled_scrub(&mut self) {
        let Some(interval) = self.cfg.scrub_interval else {
            return;
        };
        if self.burning.is_empty() && self.burn_queue.is_empty() {
            let report = self.scrub();
            self.last_scrub = Some(report);
            // The sampled audit rides the same idle window: a few
            // images get the *end-to-end* digest check the sector
            // scrub cannot provide (§16).
            if self.cfg.audit_sample_images > 0 {
                let report = self.audit_sample(self.cfg.audit_sample_images);
                self.last_audit = Some(report);
            }
        }
        self.queue.schedule_in(interval, Event::ScrubTick);
    }

    fn finish_parity(&mut self, gid: ArrayId) {
        let group = match self.store.group(gid) {
            Some(g) if g.state == GroupState::ParityPending => g.clone(),
            _ => return,
        };
        if self.cfg.redundancy != Redundancy::None {
            let payloads: Vec<Bytes> = group
                .data
                .iter()
                .filter_map(|id| self.store.get(*id))
                .filter_map(|i| i.payload.clone())
                .collect();
            if payloads.len() != group.data.len() {
                return; // A member vanished; leave for maintenance.
            }
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_ref()).collect();
            match redundancy::generate_with(self.cfg.redundancy, &refs, &self.data_plane()) {
                Ok(set) => {
                    let mut parity = Vec::new();
                    if let Some(p) = set.p {
                        parity.push(p);
                    }
                    if let Some(q) = set.q {
                        parity.push(q);
                    }
                    let bytes: u64 = parity.iter().map(|p| p.len() as u64).sum();
                    let _ = self.vm.allocate(self.vol_buffer, bytes);
                    let plane = self.data_plane();
                    if self.store.register_parity(gid, parity, &plane).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        } else {
            let plane = self.data_plane();
            if self.store.register_parity(gid, Vec::new(), &plane).is_err() {
                return;
            }
        }
        self.counters.parity_runs += 1;
        self.burn_queue.push_back(gid);
        self.try_start_burns();
    }

    /// Starts queued burns while a bay and a target tray are available.
    ///
    /// Re-entrancy: picking a bay may unload an idle one, which advances
    /// the simulated clock and delivers queued events (`ParityDone`,
    /// `BurnDone`) that call back into this function. The bay is
    /// therefore reserved *first*, and the group/tray choice is resolved
    /// only afterwards — a stale front-of-queue peek taken before the
    /// pick could pop (and silently drop) a group the re-entrant pass
    /// had already dispatched elsewhere.
    pub(crate) fn try_start_burns(&mut self) {
        loop {
            if self.burn_queue.is_empty() {
                return;
            }
            let Some(bay) = self.pick_bay_for_burn() else {
                return; // All bays busy or reserved.
            };
            let Some(&gid) = self.burn_queue.front() else {
                self.reserved_bays.remove(&bay);
                return; // A re-entrant pass drained the queue meanwhile.
            };
            let append = self.append_groups.contains(&gid);
            let slot = if append {
                self.store.group(gid).and_then(|g| g.slot)
            } else {
                self.store.first_empty_slot(&self.cfg.layout)
            };
            let Some(slot) = slot else {
                self.reserved_bays.remove(&bay);
                return; // Out of empty trays.
            };
            // Book the tray before the mechanical load: start_burn's own
            // clock advances re-enter too, and a concurrent pass must not
            // double-book the same empty tray.
            let idx = self.cfg.layout.slot_index(slot);
            if !append {
                self.store.set_da_state(idx, DaState::Used);
            }
            self.burn_queue.pop_front();
            let append = self.append_groups.remove(&gid);
            let result = self.start_burn(gid, bay, slot, append);
            self.reserved_bays.remove(&bay);
            if let Err(e) = result {
                // A transient mechanical misfeed leaves the tray intact
                // for the next attempt; anything else ruins the
                // write-once tray, and repeated ruin in the same bay
                // means the hardware (not the media) is at fault.
                if matches!(e, OlfsError::Transient(_)) {
                    if !append {
                        self.store.set_da_state(idx, DaState::Empty);
                    }
                } else {
                    self.store.set_da_state(idx, DaState::Failed);
                    let failures = self.bay_burn_failures.entry(bay).or_insert(0);
                    *failures += 1;
                    if *failures >= 2 {
                        self.quarantine_bay(bay);
                    }
                }
                self.burn_queue.push_front(gid);
                if append {
                    self.append_groups.insert(gid);
                }
                return;
            }
        }
    }

    /// Picks and *reserves* a bay for burning: free, or idle-holding
    /// (unloading first). The caller must release the reservation once
    /// the burn is registered (or failed).
    fn pick_bay_for_burn(&mut self) -> Option<usize> {
        for bay in 0..self.bays.len() {
            if self.burning.contains_key(&bay)
                || self.reserved_bays.contains(&bay)
                || self.quarantined_bays.contains(&bay)
            {
                continue;
            }
            if matches!(self.mech.bay_contents(bay), Ok(None)) {
                self.reserved_bays.insert(bay);
                return Some(bay);
            }
        }
        for bay in 0..self.bays.len() {
            if self.burning.contains_key(&bay)
                || self.reserved_bays.contains(&bay)
                || self.quarantined_bays.contains(&bay)
            {
                continue;
            }
            if matches!(self.mech.bay_contents(bay), Ok(Some(_))) {
                // Reserve across the unload so re-entrant event handling
                // (another ParityDone firing during the mechanical wait)
                // cannot steal the bay.
                self.reserved_bays.insert(bay);
                match self.unload_bay(bay) {
                    Ok(_) => return Some(bay),
                    Err(_) => {
                        self.reserved_bays.remove(&bay);
                    }
                }
            }
        }
        None
    }

    /// Unloads a bay's disc array back to its tray.
    pub(crate) fn unload_bay(&mut self, bay: usize) -> Result<SimDuration, OlfsError> {
        for i in 0..self.cfg.drives_per_bay {
            let Some(drive) = self.bays[bay].drive_mut(i) else {
                return Err(OlfsError::BadState(format!("no drive {i} in bay {bay}")));
            };
            if drive.disc().is_some() {
                let (disc, _) = drive.eject()?;
                self.registry.put_back(disc)?;
            }
            self.vfs_mounted.insert((bay, i), false);
        }
        let op = self.mech.unload_array(bay)?;
        self.advance(op.duration);
        Ok(op.duration)
    }

    /// Loads a tray's disc array into a bay's drives.
    pub(crate) fn load_bay(
        &mut self,
        slot: SlotAddress,
        bay: usize,
    ) -> Result<SimDuration, OlfsError> {
        let op = self.mech.load_array(slot, bay)?;
        let idx = self.cfg.layout.slot_index(slot);
        let tray: Vec<DiscId> = self
            .registry
            .tray(idx)
            .ok_or_else(|| OlfsError::BadState(format!("no tray {idx}")))?
            .to_vec();
        for (i, disc_id) in tray.iter().enumerate() {
            let disc = self.registry.take(*disc_id)?;
            let Some(drive) = self.bays[bay].drive_mut(i) else {
                self.registry.put_back(disc)?;
                return Err(OlfsError::BadState(format!("no drive {i} in bay {bay}")));
            };
            drive.insert(disc)?;
            // Drives spin up while the arm finishes its cycle; the
            // residual is charged as post_load_spin_up by the fetch path.
            let _ = drive.mount();
            self.vfs_mounted.insert((bay, i), false);
        }
        self.advance(op.duration);
        Ok(op.duration)
    }

    fn start_burn(
        &mut self,
        gid: ArrayId,
        bay: usize,
        slot: SlotAddress,
        append: bool,
    ) -> Result<(), OlfsError> {
        self.load_bay(slot, bay)?;
        let idx = self.cfg.layout.slot_index(slot);
        self.store.set_da_state(idx, DaState::Used);
        {
            let g = self
                .store
                .group_mut(gid)
                .ok_or(OlfsError::BadState(format!("no group {gid}")))?;
            g.state = GroupState::Burning;
            g.slot = Some(slot);
        }
        let group = self
            .store
            .group(gid)
            .ok_or_else(|| OlfsError::BadState(format!("no group {gid}")))?
            .clone();
        let all_images: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        let mut sizes = vec![0u64; self.cfg.drives_per_bay];
        for (i, img) in all_images.iter().enumerate() {
            if i < sizes.len() {
                sizes[i] = self.store.get(*img).map(|x| x.size).unwrap_or(0);
            }
        }
        let mut format_extra = SimDuration::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            if size > 0 {
                let begun = self.bays[bay]
                    .drive_mut(i)
                    .ok_or_else(|| OlfsError::BadState(format!("no drive {i} in bay {bay}")))?
                    .begin_burn();
                if let Err(e) = begun {
                    // Release the siblings already switched to Burning so
                    // the array stays evacuable.
                    for (j, &s) in sizes.iter().enumerate().take(i) {
                        if s > 0 {
                            if let Some(d) = self.bays[bay].drive_mut(j) {
                                let _ = d.interrupt_burn(all_images.get(j).map_or(0, |x| x.0), 0);
                            }
                        }
                    }
                    return Err(e.into());
                }
                if append {
                    // Appending re-burn pays the metadata-zone formatting
                    // (§2.1: "takes tens of seconds to format").
                    format_extra = ros_drive::params::track_format_time();
                }
            }
        }
        let start = self.now() + format_extra;
        let report = self.bays[bay].simulate_array_burn(&sizes, self.cfg.disc_class, start);
        let until = start + report.total;
        self.burning.insert(
            bay,
            BurningInfo {
                group: gid,
                until,
                sizes,
                append,
            },
        );
        self.queue
            .schedule_at(until, Event::BurnDone { group: gid, bay });
        Ok(())
    }

    fn finish_burn(&mut self, gid: ArrayId, bay: usize) {
        let Some(info) = self.burning.get(&bay) else {
            return; // Interrupted; stale completion event.
        };
        if info.group != gid {
            return;
        }
        let Some(info) = self.burning.remove(&bay) else {
            return;
        };
        let group = match self.store.group(gid) {
            Some(g) => g.clone(),
            None => return,
        };
        let Some(slot) = group.slot else {
            return; // A crash handler already reset the group.
        };
        let slot_index = self.cfg.layout.slot_index(slot);
        let tray: Vec<DiscId> = self
            .registry
            .tray(slot_index)
            .map(<[DiscId]>::to_vec)
            .unwrap_or_default();
        let all_images: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        // First pass: complete every member's burn, collecting failures
        // instead of silently marking a partial array as done.
        let mut spoiled = false;
        for (i, img) in all_images.iter().enumerate() {
            if info.sizes.get(i).copied().unwrap_or(0) == 0 {
                continue;
            }
            let payload = self
                .store
                .get(*img)
                .and_then(|x| x.payload.clone())
                .map(Payload::inline)
                .unwrap_or_else(|| Payload::synthetic(0, 0));
            let Some(drive) = self.bays[bay].drive_mut(i) else {
                spoiled = true;
                continue;
            };
            let res = if info.append {
                drive.finish_burn_track(img.0, payload)
            } else {
                drive.finish_burn(img.0, payload)
            };
            if res.is_err() {
                // A media-level failure leaves the drive in the Burning
                // state; release it so the array can be evacuated.
                if let Some(d) = self.bays[bay].drive_mut(i) {
                    if !d.is_idle_loaded() {
                        let _ = d.interrupt_burn(img.0, 0);
                    }
                }
                spoiled = true;
            }
        }
        if spoiled {
            self.reburn_group_on_spare(gid, bay, slot_index);
            return;
        }
        // Second pass (all members verified): record the burn locations.
        for (i, img) in all_images.iter().enumerate() {
            if info.sizes.get(i).copied().unwrap_or(0) == 0 {
                continue;
            }
            let disc = tray.get(i).copied().unwrap_or(DiscId(u64::MAX));
            let _ = self.store.mark_burned(
                *img,
                DiscLocation {
                    disc,
                    slot,
                    // Group member index; bounded by the tray size.
                    position: u32::try_from(i).unwrap_or(u32::MAX),
                },
            );
            self.cache.unpin(*img);
            self.promote_paths(*img, LocTag::Disc);
        }
        if let Some(g) = self.store.group_mut(gid) {
            g.state = GroupState::Burned;
        }
        self.bay_burn_failures.remove(&bay);
        self.counters.burns += 1;
        self.apply_cache_pressure();
        self.try_start_burns();
    }

    /// A burn came back with spoiled members: the write-once tray is
    /// ruined. Retire it, evacuate the bay, and re-run the group's
    /// parity-and-burn pipeline onto a spare tray. Two consecutive
    /// spoiled burns in the same bay quarantine it (the fault is the
    /// hardware, not the media).
    fn reburn_group_on_spare(&mut self, gid: ArrayId, bay: usize, slot_index: u32) {
        self.store.set_da_state(slot_index, DaState::Failed);
        // `reset_group_for_rewrite` requires the Burned state; the group
        // is mid-Burning here, so settle it first.
        if let Some(g) = self.store.group_mut(gid) {
            g.state = GroupState::Burned;
        }
        let _ = self.store.reset_group_for_rewrite(gid);
        let _ = self.unload_bay(bay);
        self.counters.reburns += 1;
        let failures = self.bay_burn_failures.entry(bay).or_insert(0);
        *failures += 1;
        if *failures >= 2 {
            self.quarantine_bay(bay);
        }
        self.schedule_parity(gid);
    }

    /// Takes `bay` out of rotation: the burn starter and fetch paths
    /// route around it until [`Ros::service_quarantined_bays`] runs.
    pub fn quarantine_bay(&mut self, bay: usize) {
        if bay < self.bays.len() {
            self.quarantined_bays.insert(bay);
        }
    }

    /// Bays currently out of rotation, sorted.
    pub fn quarantined_bays(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.quarantined_bays.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Services every quarantined bay: evacuates any held array, swaps
    /// dead or fault-armed drives for fresh units, and returns the bay to
    /// rotation. Returns the number of bays serviced.
    pub fn service_quarantined_bays(&mut self) -> usize {
        // Sorted order: bay-service side effects (ejects, burn restarts)
        // must replay identically run-to-run.
        let bays = self.quarantined_bays();
        let mut serviced = 0;
        for bay in bays {
            // Swap the drives first: a wedged (mid-burn) unit would block
            // the eject the evacuation below needs.
            for i in 0..self.cfg.drives_per_bay {
                if let Some(d) = self.bays[bay].drive_mut(i) {
                    d.service();
                }
            }
            if self.mech.bay_contents(bay).ok().flatten().is_some() && self.unload_bay(bay).is_err()
            {
                continue; // Still wedged; try again next service window.
            }
            self.bay_burn_failures.remove(&bay);
            self.quarantined_bays.remove(&bay);
            serviced += 1;
        }
        if serviced > 0 {
            self.try_start_burns();
        }
        serviced
    }

    /// Evicts cache overflow: drops disk copies of burned images.
    fn apply_cache_pressure(&mut self) {
        let over = self.cache.len().saturating_sub(self.cache.capacity());
        if over == 0 {
            return;
        }
        let victims: Vec<ImageId> = self
            .cache
            .lru_order()
            .filter(|id| {
                self.store
                    .get(*id)
                    .map(|i| i.burned.is_some() && i.on_disk())
                    .unwrap_or(false)
            })
            .take(over)
            .collect();
        for v in victims {
            if let Ok(freed) = self.store.evict_disk_copy(v) {
                let _ = self.vm.release(self.vol_buffer, freed);
                self.cache.remove(v);
            }
        }
    }

    // ------------------------------------------------------------------
    // Read path (§4.1, §4.8, Table 1)
    // ------------------------------------------------------------------

    /// Reads the newest version of a file.
    pub fn read_file(&mut self, path: &UdfPath) -> Result<ReadReport, OlfsError> {
        self.read_version_inner(path, None)
    }

    /// Reads a specific retained version (data provenance, §4.6).
    pub fn read_version(&mut self, path: &UdfPath, ver: u32) -> Result<ReadReport, OlfsError> {
        self.read_version_inner(path, Some(ver))
    }

    fn read_version_inner(
        &mut self,
        path: &UdfPath,
        ver: Option<u32>,
    ) -> Result<ReadReport, OlfsError> {
        let mut trace = OpTrace::new();
        let mv_read = self.vm.random_read_time(self.vol_mv, 1024)?;
        let d = trace.step("stat", mv_read);
        self.advance(d);

        let idx = self
            .mv
            .get(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        let entry = match ver {
            Some(v) => {
                if self.overwritten.contains(&(path.to_string(), v)) {
                    // The bytes were physically replaced by a later
                    // in-place bucket update (§4.6).
                    return Err(OlfsError::VersionGone {
                        path: path.to_string(),
                        version: v,
                    });
                }
                idx.version(v)
                    .ok_or(OlfsError::VersionGone {
                        path: path.to_string(),
                        version: v,
                    })?
                    .clone()
            }
            None => idx
                .latest()
                .ok_or_else(|| OlfsError::NotFound(path.to_string()))?
                .clone(),
        };
        let forepart_available = ver.is_none() && idx.forepart().is_some();
        let stored_paths = self.resolve_stored_paths(path, entry.ver);

        let mut pieces: Vec<Bytes> = Vec::with_capacity(entry.segs.len());
        let mut io = SimDuration::ZERO;
        let mut source = ReadSource::DiskBucket;
        let mut fetch_extra = SimDuration::ZERO;
        for seg in &entry.segs {
            let (bytes, seg_io, seg_source, seg_fetch) =
                self.read_segment(*seg, &stored_paths, entry.size)?;
            pieces.push(bytes);
            io += seg_io;
            fetch_extra += seg_fetch;
            source = worst_source(source, seg_source);
        }
        let data = Self::join_segments(&mut self.counters, pieces);
        if fetch_extra > SimDuration::ZERO {
            trace.extra("fetch", fetch_extra);
        }
        let d = trace.step("read", io);
        self.advance(d);
        let d = trace.step("close", SimDuration::ZERO);
        self.advance(d);

        let total = trace.total();
        let first_byte = if fetch_extra > SimDuration::ZERO && forepart_available {
            params::forepart_first_byte()
        } else {
            total
        };
        self.counters.reads += 1;
        Ok(ReadReport {
            data,
            version: entry.ver,
            latency: total,
            first_byte_latency: first_byte,
            source,
            trace,
        })
    }

    /// Joins segment slices into a reply payload. A single slice — the
    /// common unsplit-file case — is handed back zero-copy (a refcount
    /// bump over the owning buffer); joining `n > 1` slices is the only
    /// memcpy on the read path, and its volume is counted in
    /// [`Counters::read_copy_bytes`].
    fn join_segments(counters: &mut Counters, mut pieces: Vec<Bytes>) -> Bytes {
        if pieces.len() == 1 {
            return pieces.remove(0);
        }
        let total: usize = pieces.iter().map(Bytes::len).sum();
        let mut buf = Vec::with_capacity(total);
        for b in &pieces {
            buf.extend_from_slice(b);
        }
        counters.read_copy_bytes += buf.len() as u64;
        Bytes::from(buf)
    }

    /// Reads a byte range of a file's newest version (the `pread`
    /// behind the POSIX layer). Segments entirely outside the range are
    /// skipped — including their mechanical fetches — when the index
    /// entry recorded per-segment sizes.
    pub fn read_range(
        &mut self,
        path: &UdfPath,
        offset: u64,
        len: u64,
    ) -> Result<ReadReport, OlfsError> {
        let mut trace = OpTrace::new();
        let mv_read = self.vm.random_read_time(self.vol_mv, 1024)?;
        let d = trace.step("stat", mv_read);
        self.advance(d);

        let idx = self
            .mv
            .get(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        let entry = idx
            .latest()
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?
            .clone();
        let forepart_hit = idx
            .forepart()
            .map(|f| offset < f.len() as u64)
            .unwrap_or(false);
        let stored_paths = self.resolve_stored_paths(path, entry.ver);

        let end = offset.saturating_add(len).min(entry.size);
        let start = offset.min(entry.size);
        let sized = entry.seg_sizes.len() == entry.segs.len() && !entry.segs.is_empty();

        let mut pieces: Vec<Bytes> = Vec::new();
        let mut io = SimDuration::ZERO;
        let mut source = ReadSource::DiskBucket;
        let mut fetch_extra = SimDuration::ZERO;
        let mut cursor = 0u64; // Byte position at the current segment start.
        for (i, seg) in entry.segs.iter().enumerate() {
            let seg_len = if sized {
                entry.seg_sizes[i]
            } else {
                // Unknown layout: read everything and slice at the end.
                u64::MAX
            };
            let seg_end = cursor.saturating_add(seg_len);
            let overlaps = !sized || (seg_end > start && cursor < end);
            if overlaps {
                let (bytes, seg_io, seg_source, seg_fetch) =
                    self.read_segment(*seg, &stored_paths, entry.size)?;
                io += seg_io;
                fetch_extra += seg_fetch;
                source = worst_source(source, seg_source);
                if sized {
                    let lo = start.saturating_sub(cursor).min(bytes.len() as u64);
                    let hi = end.saturating_sub(cursor).min(bytes.len() as u64);
                    // Sub-slicing a refcounted buffer, not copying.
                    pieces.push(bytes.slice(lo as usize..hi as usize));
                } else {
                    pieces.push(bytes);
                }
            }
            if sized {
                cursor = seg_end;
                if cursor >= end {
                    break;
                }
            }
        }
        let data = if sized {
            Self::join_segments(&mut self.counters, pieces)
        } else {
            // Slice the concatenation (zero-copy when one segment).
            let joined = Self::join_segments(&mut self.counters, pieces);
            let lo = start.min(joined.len() as u64) as usize;
            let hi = end.min(joined.len() as u64) as usize;
            joined.slice(lo..hi)
        };
        if fetch_extra > SimDuration::ZERO {
            trace.extra("fetch", fetch_extra);
        }
        let d = trace.step("read", io);
        self.advance(d);
        let d = trace.step("close", SimDuration::ZERO);
        self.advance(d);

        let total = trace.total();
        let first_byte = if fetch_extra > SimDuration::ZERO && forepart_hit {
            params::forepart_first_byte()
        } else {
            total
        };
        self.counters.reads += 1;
        Ok(ReadReport {
            data,
            version: entry.ver,
            latency: total,
            first_byte_latency: first_byte,
            source,
            trace,
        })
    }

    /// Candidate stored paths for a version, most likely first.
    fn resolve_stored_paths(&self, path: &UdfPath, ver: u32) -> Vec<UdfPath> {
        let mut candidates = Vec::new();
        // A dedup-hit version reads the canonical copy's bytes (§14).
        if let Some(alias) = self.dedup.alias(path, ver) {
            candidates.push(alias.clone());
        }
        if let Some(stored) = self.in_place.get(&(path.to_string(), ver)) {
            candidates.push(stored.clone());
        }
        if ver > 1 {
            candidates.push(Self::shadow_path(path, ver));
        }
        candidates.push(path.clone());
        candidates
    }

    /// Reads one segment image, fetching from disc if needed. Returns
    /// `(bytes, device_io, source, mechanical_extra)`.
    fn read_segment(
        &mut self,
        image: ImageId,
        stored_paths: &[UdfPath],
        size_hint: u64,
    ) -> Result<(Bytes, SimDuration, ReadSource, SimDuration), OlfsError> {
        // 1. Still in an open bucket?
        if let Some(bi) = self.wbm.locate_image(image) {
            let b = self.wbm.bucket(bi).ok_or(OlfsError::ImageLost(image))?;
            for p in stored_paths {
                if let Ok(bytes) = b.read(p) {
                    let io = params::bucket_read_device()
                        + self.vm.read_time(self.vol_buffer, bytes.len() as u64)?;
                    return Ok((bytes, io, ReadSource::DiskBucket, SimDuration::ZERO));
                }
            }
            return Err(OlfsError::ImageLost(image));
        }
        // 2. Resident sealed image (buffer / read cache)?
        let has_sealed = self
            .store
            .get(image)
            .ok_or(OlfsError::ImageLost(image))?
            .sealed
            .is_some();
        if has_sealed {
            let sealed = self
                .store
                .get(image)
                .and_then(|i| i.sealed.clone())
                .ok_or(OlfsError::ImageLost(image))?;
            for p in stored_paths {
                if let Ok(bytes) = sealed.read(p) {
                    let io = params::image_read_device()
                        + self.vm.read_time(self.vol_buffer, bytes.len() as u64)?;
                    self.cache.touch(image);
                    return Ok((bytes, io, ReadSource::DiskImage, SimDuration::ZERO));
                }
            }
            return Err(OlfsError::ImageLost(image));
        }
        // 3. On disc: fetch (a read-cache miss by definition).
        self.cache.touch(image);
        let (fetch_time, source) = self.fetch_image(image, size_hint)?;
        self.counters.fetches += 1;
        let sealed = self
            .store
            .get(image)
            .and_then(|i| i.sealed.clone())
            .ok_or(OlfsError::ImageLost(image))?;
        for p in stored_paths {
            if let Ok(bytes) = sealed.read(p) {
                let io = params::image_read_device()
                    + self.vm.read_time(self.vol_buffer, bytes.len() as u64)?;
                self.cache.insert(image);
                return Ok((bytes, io, source, fetch_time));
            }
        }
        Err(OlfsError::ImageLost(image))
    }

    /// Brings a burned image's bytes back to the disk tier, performing
    /// whatever mechanical work is required.
    ///
    /// The foreground read transfers only the requested file
    /// (`file_bytes`) off the mounted disc (§5.4); the rest of the image
    /// streams into the read cache in the background, overlapped with
    /// the remaining mechanical/settling window.
    fn fetch_image(
        &mut self,
        image: ImageId,
        file_bytes: u64,
    ) -> Result<(SimDuration, ReadSource), OlfsError> {
        let loc = self
            .store
            .location_of(image)
            .ok_or(OlfsError::ImageLost(image))?;
        // A quarantined bay may hold the needed array hostage: evacuate
        // it (ejects work even on dead drives) so the array can be loaded
        // into a healthy bay below.
        let hostage = (0..self.bays.len()).find(|&b| {
            self.quarantined_bays.contains(&b)
                && self.mech.bay_contents(b).ok().flatten() == Some(loc.slot)
        });
        if let Some(b) = hostage {
            self.unload_bay(b)?;
        }
        let holding_bay = (0..self.bays.len()).find(|&b| {
            !self.burning.contains_key(&b)
                && !self.quarantined_bays.contains(&b)
                && self.mech.bay_contents(b).ok().flatten() == Some(loc.slot)
        });

        let (bay, mut extra, source) = match holding_bay {
            Some(bay) => {
                self.reserved_bays.insert(bay);
                (bay, SimDuration::ZERO, ReadSource::DiscInDrive)
            }
            None => {
                let (bay, free_time, source) = self.acquire_bay_for_fetch()?;
                let load = match self.load_bay(loc.slot, bay) {
                    Ok(l) => l,
                    Err(e) => {
                        self.reserved_bays.remove(&bay);
                        return Err(e);
                    }
                };
                (bay, free_time + load + params::post_load_spin_up(), source)
            }
        };

        let result = self.read_disc_payload(image, bay, loc, file_bytes, &mut extra);
        self.reserved_bays.remove(&bay);
        let source = match result {
            Ok(()) => source,
            Err(e) => return Err(e),
        };
        if self.cfg.prefetch_array {
            self.schedule_array_prefetch(bay, loc.slot, image);
        }
        self.advance(extra);
        Ok((extra, source))
    }

    /// Schedules a background prefetch of every other image burned on
    /// the array now sitting in `bay` (§4.1's spatial-locality
    /// refinement). The transfer happens off the critical path while the
    /// discs remain loaded.
    fn schedule_array_prefetch(&mut self, bay: usize, slot: SlotAddress, just_read: ImageId) {
        let Some(gid) = self.store.get(just_read).and_then(|i| i.array) else {
            return;
        };
        let Some(group) = self.store.group(gid) else {
            return;
        };
        if group.slot != Some(slot) {
            return;
        }
        let siblings: Vec<ImageId> = group
            .data
            .iter()
            .copied()
            .filter(|&img| {
                img != just_read
                    && self
                        .store
                        .get(img)
                        .map(|i| i.burned.is_some() && !i.on_disk())
                        .unwrap_or(false)
            })
            .collect();
        if siblings.is_empty() {
            return;
        }
        // All sibling drives stream in parallel: the prefetch lands
        // after the slowest full-image read.
        let speed = self.bays[bay].aggregate_read_speed(self.cfg.disc_class)
            / self.cfg.drives_per_bay as f64;
        let slowest = siblings
            .iter()
            .filter_map(|img| self.store.get(*img).map(|i| i.size))
            .max()
            .unwrap_or(0);
        let dur = speed.time_for(slowest) + ros_drive::params::seek_time();
        self.queue.schedule_in(
            dur,
            Event::PrefetchDone {
                bay,
                images: siblings,
            },
        );
    }

    fn read_disc_payload(
        &mut self,
        image: ImageId,
        bay: usize,
        loc: DiscLocation,
        file_bytes: u64,
        extra: &mut SimDuration,
    ) -> Result<(), OlfsError> {
        let pos = loc.position as usize;
        // Idle drives spin down; the next access pays the ≈2 s mount
        // delay (§5.4: "occurs only when the drive is in the sleep
        // state").
        let idle_since = self.drive_last_used.get(&(bay, pos)).copied();
        if let Some(t) = idle_since {
            if self.now().duration_since(t) > ros_drive::params::sleep_after_idle() {
                if let Some(d) = self.bays[bay].drive_mut(pos) {
                    d.sleep();
                }
            }
        }
        self.drive_last_used.insert((bay, pos), self.now());
        let mounted = *self.vfs_mounted.get(&(bay, pos)).unwrap_or(&false);
        if !mounted {
            // The 220 ms VFS mount (§5.4) subsumes the first file seek,
            // which the drive charges separately below.
            *extra += params::vfs_mount() - ros_drive::params::seek_time();
            self.vfs_mounted.insert((bay, pos), true);
        }
        let read = self.bays[bay]
            .drive_mut(pos)
            .ok_or_else(|| OlfsError::BadState(format!("no drive {pos} in bay {bay}")))?
            .read_image(image.0);
        match read {
            Ok(timed) => {
                // Foreground: mount + seek + the requested file's bytes.
                // The remainder of the image streams into the cache in
                // the background (§4.1: the cache unit is a whole image).
                let speed = self.bays[bay]
                    .drive(pos)
                    .and_then(|d| d.read_speed().ok())
                    .unwrap_or_else(ros_drive::params::read_speed_bd25);
                let file_transfer = speed.time_for(file_bytes.min(timed.payload.len()));
                let full_transfer = speed.time_for(timed.payload.len());
                let overhead = timed.duration.saturating_sub(full_transfer);
                *extra += overhead + file_transfer;
                let payload = match timed.payload {
                    Payload::Inline(b) => b,
                    Payload::Synthetic { size, checksum } => {
                        // PB-scale benches burn synthetic payloads; fake
                        // the restore by checksum identity.
                        let _ = (size, checksum);
                        return Err(OlfsError::BadState(format!(
                            "image {image} has no inline payload"
                        )));
                    }
                };
                // End-to-end digest check *before* the restore: latent
                // rot flips bytes without any sector error, so the drive
                // read succeeds and only the CAS digest can tell. A
                // mismatch is repaired from array redundancy in-line —
                // the client never observes corrupt bytes.
                let plane = self.data_plane();
                let digest = self
                    .store
                    .get(image)
                    .map(|i| i.digest)
                    .ok_or(OlfsError::ImageLost(image))?;
                if ros_cas::verify_payload(&digest, &payload, &plane).is_err() {
                    let repair = self.repair_latent_image(image, bay)?;
                    *extra += repair;
                    self.counters.latent_repairs += 1;
                    return Ok(());
                }
                self.vm.allocate(self.vol_buffer, payload.len() as u64)?;
                self.store.restore_disk_copy(image, payload, &plane)?;
                Ok(())
            }
            Err(ros_drive::DriveError::Media(ros_drive::media::MediaError::SectorErrors {
                ..
            })) => {
                let repair = self.repair_image(image, bay)?;
                *extra += repair;
                self.counters.repairs += 1;
                Ok(())
            }
            Err(e @ ros_drive::DriveError::TransientRead) => {
                // A servo recalibration: the retry loop re-reads in place.
                Err(OlfsError::Transient(e.to_string()))
            }
            Err(ros_drive::DriveError::Failed) => {
                // The drive is gone for good: route around the bay. A
                // retry re-fetches through a healthy bay (the quarantined
                // one is evacuated by `fetch_image` first).
                self.quarantine_bay(bay);
                Err(OlfsError::Transient(format!(
                    "drive {pos} in bay {bay} failed; bay quarantined"
                )))
            }
            Err(e) => Err(OlfsError::Drive(e.to_string())),
        }
    }

    /// Finds and reserves a bay for a fetch per the busy-read policy.
    /// Returns `(bay, time_spent_freeing_it, source_classification)`.
    fn acquire_bay_for_fetch(&mut self) -> Result<(usize, SimDuration, ReadSource), OlfsError> {
        let mut spent = SimDuration::ZERO;
        let mut classification = ReadSource::RollerFreeDrives;
        for _round in 0..64 {
            // A free, unreserved, non-burning bay?
            for bay in 0..self.bays.len() {
                if self.burning.contains_key(&bay)
                    || self.reserved_bays.contains(&bay)
                    || self.quarantined_bays.contains(&bay)
                {
                    continue;
                }
                if matches!(self.mech.bay_contents(bay), Ok(None)) {
                    self.reserved_bays.insert(bay);
                    return Ok((bay, spent, classification));
                }
            }
            // An idle holding bay: reserve, unload, return.
            let idle = (0..self.bays.len()).find(|b| {
                !self.burning.contains_key(b)
                    && !self.reserved_bays.contains(b)
                    && !self.quarantined_bays.contains(b)
                    && matches!(self.mech.bay_contents(*b), Ok(Some(_)))
            });
            if let Some(bay) = idle {
                self.reserved_bays.insert(bay);
                match self.unload_bay(bay) {
                    Ok(t) => {
                        spent += t;
                        classification =
                            worst_source(classification, ReadSource::RollerUnloadFirst);
                        return Ok((bay, spent, classification));
                    }
                    Err(_) => {
                        self.reserved_bays.remove(&bay);
                        continue;
                    }
                }
            }
            // Everything is burning (§4.8).
            classification = ReadSource::RollerDrivesBusy;
            match self.cfg.busy_read_policy {
                BusyReadPolicy::Wait => {
                    let next = self
                        .burning
                        .values()
                        .map(|i| i.until)
                        .min()
                        .ok_or(OlfsError::NoDriveAvailable)?;
                    let start = self.now();
                    self.run_until(next);
                    spent += self.now().duration_since(start);
                }
                BusyReadPolicy::InterruptBurn => {
                    let bay = *self
                        .burning
                        .keys()
                        .next()
                        .ok_or(OlfsError::NoDriveAvailable)?;
                    spent += self.interrupt_burn(bay)?;
                }
            }
        }
        Err(OlfsError::NoDriveAvailable)
    }

    /// Interrupts the burn in `bay`, requeueing its group for an
    /// appending re-burn (§4.8's aggressive policy).
    fn interrupt_burn(&mut self, bay: usize) -> Result<SimDuration, OlfsError> {
        let info = self
            .burning
            .remove(&bay)
            .ok_or(OlfsError::BadState(format!("bay {bay} not burning")))?;
        let gid = info.group;
        let group = self
            .store
            .group(gid)
            .ok_or(OlfsError::BadState(format!("no group {gid}")))?
            .clone();
        let imgs: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        for i in 0..self.cfg.drives_per_bay {
            if info.sizes.get(i).copied().unwrap_or(0) > 0 {
                let img = imgs.get(i).copied().unwrap_or(ImageId(0));
                self.bays[bay]
                    .drive_mut(i)
                    .ok_or_else(|| OlfsError::BadState(format!("no drive {i} in bay {bay}")))?
                    .interrupt_burn(img.0, 0)?;
            }
        }
        // The slot stays reserved for the group's appending re-burn.
        if let Some(g) = self.store.group_mut(gid) {
            g.state = GroupState::ReadyToBurn;
        }
        self.burn_queue.push_front(gid);
        self.append_groups.insert(gid);
        self.counters.burn_interrupts += 1;
        let t = SimDuration::from_millis(500);
        self.advance(t);
        Ok(t)
    }

    // ------------------------------------------------------------------
    // Namespace queries
    // ------------------------------------------------------------------

    /// Stats a file: `(size, version, mtime_nanos)`.
    pub fn stat(&mut self, path: &UdfPath) -> Result<(u64, u32, u64), OlfsError> {
        let d = params::internal_op_overhead() + self.vm.random_read_time(self.vol_mv, 1024)?;
        self.advance(d);
        let idx = self
            .mv
            .get(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        let e = idx
            .latest()
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        Ok((e.size, e.ver, e.mtime))
    }

    /// Lists a directory's children: `(name, is_dir)`.
    pub fn readdir(&mut self, path: &UdfPath) -> Result<Vec<(String, bool)>, OlfsError> {
        let d = params::internal_op_overhead() + self.vm.random_read_time(self.vol_mv, 4096)?;
        self.advance(d);
        self.mv.list(path)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        let d = params::internal_op_overhead() + self.vm.random_read_time(self.vol_mv, 1024)?;
        self.advance(d);
        self.mv.mkdir_p(path)
    }

    /// Removes a file from the global view (the disc data remains; §4.6's
    /// provenance survives in old MV snapshots).
    pub fn unlink(&mut self, path: &UdfPath) -> Result<(), OlfsError> {
        let d = params::internal_op_overhead() + self.vm.random_read_time(self.vol_mv, 1024)?;
        self.advance(d);
        self.mv.unlink(path)?;
        // Release the unlinked versions' dedup references (§14); dead
        // blobs leave the catalog so their digests can be re-ingested.
        self.dedup.on_unlink(path);
        Ok(())
    }

    /// Lists the retained versions of a file: `(version, size, mtime)`.
    pub fn versions(&mut self, path: &UdfPath) -> Result<Vec<(u32, u64, u64)>, OlfsError> {
        let d = params::internal_op_overhead() + self.vm.random_read_time(self.vol_mv, 1024)?;
        self.advance(d);
        let idx = self
            .mv
            .get(path)
            .ok_or_else(|| OlfsError::NotFound(path.to_string()))?;
        Ok(idx.versions().map(|e| (e.ver, e.size, e.mtime)).collect())
    }

    // ------------------------------------------------------------------
    // Flush / repair / power
    // ------------------------------------------------------------------

    /// Seals every non-empty bucket, force-closes the partial array
    /// group, and runs the system until all queued burns complete.
    pub fn flush(&mut self) -> Result<(), OlfsError> {
        let mut io = SimDuration::ZERO;
        for i in 0..self.wbm.len() {
            if self.wbm.bucket(i).is_some_and(|b| !b.is_empty()) {
                io += self.seal_bucket(i)?;
            }
        }
        self.advance(io);
        if let Some(gid) = self.store.force_close_collecting() {
            self.schedule_parity(gid);
        }
        // Reconcile before draining: a `ReadyToBurn` group that is
        // neither queued nor burning is unreachable by the burn starter
        // and would keep the system pending forever (same recovery the
        // crash-restart path performs).
        for gid in self.store.groups_in_state(GroupState::ReadyToBurn) {
            if !self.burn_queue.contains(&gid) && !self.burning.values().any(|b| b.group == gid) {
                self.burn_queue.push_back(gid);
            }
        }
        let ok = self.run_until_quiescent(SimDuration::from_secs(3600 * 24 * 30));
        if ok {
            Ok(())
        } else {
            Err(OlfsError::BadState(
                "flush did not quiesce (out of discs or bays?)".into(),
            ))
        }
    }

    /// Repairs a damaged image by RAID reconstruction from its array
    /// siblings (§4.7): "data on the failed sectors can be recovered from
    /// their parity discs and the corresponding data discs in the same
    /// disc array under the given tolerance degree."
    ///
    /// Reconstruction is *sector-granular*: every 2 KB stripe tolerates
    /// up to `parity_discs` damaged members, so multiple discs of the
    /// array may be damaged as long as no stripe exceeds the tolerance.
    fn repair_image(&mut self, image: ImageId, bay: usize) -> Result<SimDuration, OlfsError> {
        const SECTOR: usize = 2_048;
        let info = self.store.get(image).ok_or(OlfsError::ImageLost(image))?;
        let gid = info
            .array
            .ok_or(OlfsError::Unrecoverable { image, array: None })?;
        let group = self
            .store
            .group(gid)
            .ok_or(OlfsError::Unrecoverable {
                image,
                array: Some(gid),
            })?
            .clone();
        let members: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        let unrecoverable = || OlfsError::Unrecoverable {
            image,
            array: Some(gid),
        };

        // Gather every member's raw bytes and damage map, reading the
        // loaded discs in parallel (charge the slowest drive).
        let mut raw: Vec<Option<(Vec<u8>, Vec<u64>)>> = vec![None; members.len()];
        let mut slowest = SimDuration::ZERO;
        for (i, member) in members.iter().enumerate() {
            // Prefer intact buffer copies.
            if let Some(p) = self.store.get(*member).and_then(|m| m.payload.clone()) {
                raw[i] = Some((p.to_vec(), Vec::new()));
                continue;
            }
            let Some(drive) = self.bays[bay].drive_mut(i) else {
                continue;
            };
            let speed = drive
                .read_speed()
                .unwrap_or_else(|_| ros_drive::params::read_speed_bd25());
            let Some(disc) = drive.disc() else { continue };
            if let Ok((Payload::Inline(bytes), bad)) = disc.read_image_raw(member.0) {
                slowest = slowest.max(speed.time_for(bytes.len() as u64));
                raw[i] = Some((bytes.to_vec(), bad));
            }
        }
        let mut time = slowest;

        // Pad to a common stripe length.
        let stripe_len = raw
            .iter()
            .flatten()
            .map(|(b, _)| b.len())
            .max()
            .ok_or_else(unrecoverable)?;
        let sectors = stripe_len.div_ceil(SECTOR);
        for entry in raw.iter_mut().flatten() {
            entry.0.resize(sectors * SECTOR, 0);
        }
        // Per-member damaged-sector membership.
        let bad_sets: Vec<std::collections::HashSet<u64>> = raw
            .iter()
            .map(|e| match e {
                Some((_, bad)) => bad.iter().copied().collect(),
                // A completely missing member is damaged everywhere.
                None => (0..sectors as u64).collect(),
            })
            .collect();
        let n_data = group.data.len();

        // Reconstruct damaged stripes one sector at a time.
        let mut fixed: Vec<Vec<u8>> = raw
            .iter()
            .map(|e| {
                e.as_ref()
                    .map(|(b, _)| b.clone())
                    .unwrap_or_else(|| vec![0u8; sectors * SECTOR])
            })
            .collect();
        for k in 0..sectors as u64 {
            let damaged: Vec<usize> = (0..members.len())
                .filter(|&i| bad_sets[i].contains(&k))
                .collect();
            if damaged.is_empty() {
                continue;
            }
            let lo = k as usize * SECTOR;
            let hi = lo + SECTOR;
            let data_masked: Vec<Option<&[u8]>> = (0..n_data)
                .map(|i| (!bad_sets[i].contains(&k)).then(|| &fixed[i][lo..hi]))
                .collect();
            let p_slice = group
                .parity
                .first()
                .map(|_| &fixed[n_data][lo..hi])
                .filter(|_| !bad_sets.get(n_data).map(|s| s.contains(&k)).unwrap_or(true));
            let q_slice = group
                .parity
                .get(1)
                .map(|_| &fixed[n_data + 1][lo..hi])
                .filter(|_| {
                    !bad_sets
                        .get(n_data + 1)
                        .map(|s| s.contains(&k))
                        .unwrap_or(true)
                });
            let sizes = vec![SECTOR; n_data];
            let recovered = redundancy::reconstruct_with(
                self.cfg.redundancy,
                &data_masked,
                &sizes,
                p_slice,
                q_slice,
                &self.data_plane(),
            )
            .map_err(|_| unrecoverable())?;
            for &i in &damaged {
                if i < n_data {
                    fixed[i][lo..hi].copy_from_slice(&recovered[i]);
                }
            }
        }

        // Restore the requested image's bytes (trimmed to true size).
        let idx = members
            .iter()
            .position(|id| *id == image)
            .ok_or_else(unrecoverable)?;
        let true_size = self
            .store
            .get(image)
            .map(|i| i.size as usize)
            .ok_or_else(unrecoverable)?;
        let mut bytes = std::mem::take(&mut fixed[idx]);
        bytes.truncate(true_size);
        let bytes = Bytes::from(bytes);
        time += self.vm.write_time(self.vol_buffer, bytes.len() as u64)?;
        self.vm.allocate(self.vol_buffer, bytes.len() as u64)?;
        // restore_disk_copy verifies the content digest: a failed
        // verification means the damage exceeded the schema's tolerance.
        let plane = self.data_plane();
        self.store
            .restore_disk_copy(image, bytes, &plane)
            .map_err(|_| unrecoverable())?;
        Ok(time)
    }

    /// Repairs an image whose bytes read back *cleanly* but failed the
    /// CAS digest check — latent rot. Unlike [`Ros::repair_image`]
    /// (sector-granular, driven by the drive's damage map), rot leaves
    /// no damage map: every member of the array is digest-verified
    /// whole, mismatching members are masked as lost, and the survivors
    /// reconstruct them through PQ parity
    /// ([`redundancy::reconstruct_verified`]). Only the requested
    /// image's buffer copy is restored here; rewriting the rotted array
    /// onto fresh media is the background audit's job (§16) — a fetch
    /// holding a reserved bay must not start a group rewrite.
    pub(crate) fn repair_latent_image(
        &mut self,
        image: ImageId,
        bay: usize,
    ) -> Result<SimDuration, OlfsError> {
        let info = self.store.get(image).ok_or(OlfsError::ImageLost(image))?;
        let gid = info
            .array
            .ok_or(OlfsError::Unrecoverable { image, array: None })?;
        let group = self
            .store
            .group(gid)
            .ok_or(OlfsError::Unrecoverable {
                image,
                array: Some(gid),
            })?
            .clone();
        let unrecoverable = || OlfsError::Unrecoverable {
            image,
            array: Some(gid),
        };
        let members: Vec<ImageId> = group
            .data
            .iter()
            .chain(group.parity.iter())
            .copied()
            .collect();
        let plane = self.data_plane();

        // Gather and digest-verify every member whole; a member whose
        // bytes mismatch its recorded digest is treated as lost.
        let mut raw: Vec<Option<Vec<u8>>> = vec![None; members.len()];
        let mut slowest = SimDuration::ZERO;
        for (i, member) in members.iter().enumerate() {
            let Some(minfo) = self.store.get(*member) else {
                continue;
            };
            let digest = minfo.digest;
            // Prefer verified buffer copies.
            if let Some(p) = minfo.payload.clone() {
                if ros_cas::verify_payload(&digest, &p, &plane).is_ok() {
                    raw[i] = Some(p.to_vec());
                    continue;
                }
            }
            // The whole array is loaded in the bay: member i in drive i.
            let Some(drive) = self.bays[bay].drive_mut(i) else {
                continue;
            };
            let speed = drive
                .read_speed()
                .unwrap_or_else(|_| ros_drive::params::read_speed_bd25());
            let Some(disc) = drive.disc() else { continue };
            if let Ok((Payload::Inline(bytes), bad)) = disc.read_image_raw(member.0) {
                if bad.is_empty() && ros_cas::verify_payload(&digest, bytes, &plane).is_ok() {
                    slowest = slowest.max(speed.time_for(bytes.len() as u64));
                    raw[i] = Some(bytes.to_vec());
                }
            }
        }
        let mut time = slowest;

        let n_data = group.data.len();
        let sizes: Vec<usize> = group
            .data
            .iter()
            .map(|id| {
                self.store
                    .get(*id)
                    .map(|i| i.size as usize)
                    .unwrap_or_default()
            })
            .collect();
        let expected: Vec<ros_cas::Digest> = group
            .data
            .iter()
            .filter_map(|id| self.store.get(*id).map(|i| i.digest))
            .collect();
        if expected.len() != n_data {
            return Err(unrecoverable());
        }
        let data_masked: Vec<Option<&[u8]>> = raw[..n_data].iter().map(|e| e.as_deref()).collect();
        let p_slice = raw.get(n_data).and_then(|e| e.as_deref());
        let q_slice = raw.get(n_data + 1).and_then(|e| e.as_deref());
        let recovered = redundancy::reconstruct_verified(
            self.cfg.redundancy,
            &data_masked,
            &sizes,
            p_slice,
            q_slice,
            &expected,
            &plane,
        )
        .map_err(|_| unrecoverable())?;

        // Restore the requested image's verified bytes to the buffer.
        let idx = group
            .data
            .iter()
            .position(|id| *id == image)
            .ok_or_else(unrecoverable)?;
        let bytes = recovered.get(idx).cloned().ok_or_else(unrecoverable)?;
        time += self.vm.write_time(self.vol_buffer, bytes.len() as u64)?;
        self.vm.allocate(self.vol_buffer, bytes.len() as u64)?;
        self.store
            .restore_disk_copy(image, bytes, &plane)
            .map_err(|_| unrecoverable())?;
        Ok(time)
    }

    /// Total instantaneous power of the optical drives (rack aggregation
    /// lives in `ros-tco`).
    pub fn drive_power_watts(&self) -> f64 {
        self.bays
            .iter()
            .flat_map(|b| b.iter())
            .map(ros_drive::OpticalDrive::power_watts)
            .sum()
    }

    pub(crate) fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Simulates a power loss followed by a restart (§4.2: "Once ROS
    /// crashes, OLFS can recover from its previous checkpoint state with
    /// all state information stored in MV").
    ///
    /// What survives: the MV (SSD RAID-1), the disk write buffer — open
    /// buckets are loop devices on disk — the image store and all burned
    /// discs. What is lost: in-flight events. Burns that were cut mid-
    /// write ruin their write-once discs; their trays are retired as
    /// Failed and the groups re-queue onto fresh trays. Pending parity
    /// generations are simply rescheduled.
    ///
    /// Returns `(aborted_burns, rescheduled_parities)`.
    pub fn simulate_crash_and_restart(&mut self) -> Result<(usize, usize), OlfsError> {
        // 1. Power loss: every scheduled event vanishes.
        while self.queue.pop_until(self.queue.now()).is_some() {}
        let pending: Vec<Event> = {
            let mut v = Vec::new();
            while let Some(ev) = self.queue.pop() {
                // pop() advances the clock; collect and discard.
                v.push(ev.payload);
            }
            v
        };
        drop(pending);
        self.reserved_bays.clear();

        // 2. In-flight burns are ruined: retire the tray, free the
        //    drives, requeue the group for a fresh-tray burn.
        // BTreeMap has no drain(); take the whole map, yielding bays in
        // ascending order.
        let burning: Vec<(usize, BurningInfo)> =
            std::mem::take(&mut self.burning).into_iter().collect();
        let aborted = burning.len();
        for (bay, info) in burning {
            let group = match self.store.group(info.group) {
                Some(g) => g.clone(),
                None => continue,
            };
            for i in 0..self.cfg.drives_per_bay {
                if info.sizes.get(i).copied().unwrap_or(0) > 0 {
                    let imgs: Vec<ImageId> = group
                        .data
                        .iter()
                        .chain(group.parity.iter())
                        .copied()
                        .collect();
                    let img = imgs.get(i).copied().unwrap_or(ImageId(0));
                    if let Some(d) = self.bays[bay].drive_mut(i) {
                        let _ = d.interrupt_burn(img.0, 0);
                    }
                }
            }
            if let Some(slot) = group.slot {
                let idx = self.cfg.layout.slot_index(slot);
                self.store.set_da_state(idx, DaState::Failed);
            }
            if let Some(g) = self.store.group_mut(info.group) {
                g.state = GroupState::ReadyToBurn;
                g.slot = None;
            }
            self.append_groups.remove(&info.group);
            self.burn_queue.push_back(info.group);
            self.unload_bay(bay)?;
        }

        // 3. Reboot takes a moment.
        self.queue
            .advance_to(self.queue.now() + SimDuration::from_secs(90));

        // 4. Reschedule lost parity generations and ready burns.
        let mut parities = 0;
        for gid in self.store.groups_in_state(GroupState::ParityPending) {
            self.schedule_parity(gid);
            parities += 1;
        }
        for gid in self.store.groups_in_state(GroupState::ReadyToBurn) {
            if !self.burn_queue.contains(&gid) {
                self.burn_queue.push_back(gid);
            }
        }
        self.try_start_burns();
        Ok((aborted, parities))
    }
}

fn worst_source(a: ReadSource, b: ReadSource) -> ReadSource {
    use ReadSource::*;
    let rank = |s: ReadSource| match s {
        DiskBucket => 0,
        DiskImage => 1,
        DiscInDrive => 2,
        RollerFreeDrives => 3,
        RollerUnloadFirst => 4,
        RollerDrivesBusy => 5,
    };
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn ros() -> Ros {
        Ros::new(RosConfig::tiny())
    }

    #[test]
    fn write_then_read_from_bucket() {
        let mut r = ros();
        let data = vec![0xAB; 10_000];
        let w = r.write_file(&p("/docs/a.txt"), data.clone()).unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.segments.len(), 1);
        let rd = r.read_file(&p("/docs/a.txt")).unwrap();
        assert_eq!(rd.data.as_ref(), data.as_slice());
        assert_eq!(rd.source, ReadSource::DiskBucket);
        assert_eq!(rd.version, 1);
    }

    #[test]
    fn figure7_write_trace_shape_and_latency() {
        let mut r = ros();
        let w = r.write_file(&p("/f"), vec![1u8; 1024]).unwrap();
        assert_eq!(
            w.trace.step_names(),
            vec!["stat", "mknod", "stat", "write", "close"]
        );
        let ms = w.latency.as_millis_f64();
        assert!(
            (ms - 16.0).abs() < 2.0,
            "write latency = {ms} ms (paper: 16)"
        );
    }

    #[test]
    fn figure7_read_trace_shape_and_latency() {
        let mut r = ros();
        r.write_file(&p("/f"), vec![1u8; 1024]).unwrap();
        let rd = r.read_file(&p("/f")).unwrap();
        assert_eq!(rd.trace.step_names(), vec!["stat", "read", "close"]);
        let ms = rd.latency.as_millis_f64();
        assert!((ms - 9.0).abs() < 2.0, "read latency = {ms} ms (paper: 9)");
    }

    #[test]
    fn missing_file_errors() {
        let mut r = ros();
        assert!(matches!(
            r.read_file(&p("/nope")).unwrap_err(),
            OlfsError::NotFound(_)
        ));
        assert!(matches!(
            r.stat(&p("/nope")).unwrap_err(),
            OlfsError::NotFound(_)
        ));
        assert!(r.write_file(&p("/"), vec![]).is_err());
    }

    #[test]
    fn flush_requeues_an_orphaned_ready_to_burn_group() {
        let mut r = ros();
        r.write_file(&p("/orphan/f"), vec![7u8; 200_000]).unwrap();
        for b in 0..r.wbm.len() {
            r.seal_bucket(b).unwrap();
        }
        if let Some(gid) = r.store.force_close_collecting() {
            r.schedule_parity(gid);
        }
        // Hold the burn back so the group parks in ReadyToBurn, then
        // drop it from the queue — the state an event-interleaving bug
        // (or a crash at the wrong moment) leaves behind: ReadyToBurn,
        // not queued, not burning, unreachable by the burn starter.
        r.quarantine_bay(0);
        assert!(!r.run_until_quiescent(SimDuration::from_secs(3600)));
        assert!(
            !r.store.groups_in_state(GroupState::ReadyToBurn).is_empty(),
            "the group must be parked ReadyToBurn behind the quarantine"
        );
        r.burn_queue.clear();
        assert_eq!(r.service_quarantined_bays(), 1);
        // Without the flush-side reconcile the orphan keeps
        // has_pending_work() true forever and this fails to quiesce.
        r.flush().unwrap();
        assert!(r.store.groups_in_state(GroupState::ReadyToBurn).is_empty());
        assert_eq!(r.read_file(&p("/orphan/f")).unwrap().data.len(), 200_000);
    }

    #[test]
    fn regenerated_update_keeps_both_versions_readable() {
        let mut r = ros();
        r.write_file(&p("/v"), b"one".to_vec()).unwrap();
        // Seal the bucket so the update cannot happen in place and the
        // regenerating path of §4.6 is taken.
        for b in 0..r.wbm.len() {
            r.seal_bucket(b).unwrap();
        }
        let w2 = r.write_file(&p("/v"), b"two-longer".to_vec()).unwrap();
        assert_eq!(w2.version, 2);
        let latest = r.read_file(&p("/v")).unwrap();
        assert_eq!(latest.data.as_ref(), b"two-longer");
        let old = r.read_version(&p("/v"), 1).unwrap();
        assert_eq!(old.data.as_ref(), b"one");
        let versions = r.versions(&p("/v")).unwrap();
        assert_eq!(versions.len(), 2);
        assert_eq!(r.counters().updates, 1);
    }

    #[test]
    fn in_place_update_physically_replaces_old_bytes() {
        let mut r = ros();
        r.write_file(&p("/v"), b"one".to_vec()).unwrap();
        let w2 = r.write_file(&p("/v"), b"two".to_vec()).unwrap();
        assert_eq!(w2.version, 2);
        // Same segments: the bucket file was updated in place.
        let latest = r.read_file(&p("/v")).unwrap();
        assert_eq!(latest.data.as_ref(), b"two");
        // The old bytes are gone; the version entry remains but reading
        // it reports the loss honestly.
        assert!(matches!(
            r.read_version(&p("/v"), 1).unwrap_err(),
            OlfsError::VersionGone { version: 1, .. }
        ));
        assert_eq!(r.versions(&p("/v")).unwrap().len(), 2);
    }

    #[test]
    fn large_file_splits_across_images() {
        let mut r = ros();
        // Disc capacity is 4 MiB; a 6 MiB file must split.
        let data: Vec<u8> = (0..6 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
        let w = r.write_file(&p("/big.bin"), data.clone()).unwrap();
        assert!(w.segments.len() >= 2, "segments = {:?}", w.segments);
        assert_eq!(r.counters().splits, 1);
        let rd = r.read_file(&p("/big.bin")).unwrap();
        assert_eq!(rd.data.len(), data.len());
        assert_eq!(rd.data.as_ref(), data.as_slice());
    }

    #[test]
    fn single_segment_reads_are_zero_copy() {
        let mut r = ros();
        let data = vec![0x5A; 50_000];
        r.write_file(&p("/zc/file"), data.clone()).unwrap();
        let rd = r.read_file(&p("/zc/file")).unwrap();
        assert_eq!(rd.data.as_ref(), data.as_slice());
        assert_eq!(
            r.counters().read_copy_bytes,
            0,
            "unsplit files must be served as refcounted slices"
        );
        let rr = r.read_range(&p("/zc/file"), 1_000, 2_000).unwrap();
        assert_eq!(rr.data.as_ref(), &data[1_000..3_000]);
        assert_eq!(
            r.counters().read_copy_bytes,
            0,
            "range reads of unsplit files are sub-slices, not copies"
        );
    }

    #[test]
    fn multi_segment_reads_count_their_join_copy() {
        let mut r = ros();
        let data: Vec<u8> = (0..6 * 1024 * 1024u32).map(|i| (i % 241) as u8).collect();
        let w = r.write_file(&p("/big.bin"), data.clone()).unwrap();
        assert!(w.segments.len() >= 2);
        let rd = r.read_file(&p("/big.bin")).unwrap();
        assert_eq!(rd.data.as_ref(), data.as_slice());
        assert_eq!(
            r.counters().read_copy_bytes,
            data.len() as u64,
            "a split file is joined with exactly one memcpy of its size"
        );
    }

    #[test]
    fn flush_burns_everything_and_reads_survive_eviction() {
        let mut r = ros();
        let mut originals = Vec::new();
        for i in 0..5 {
            let data = vec![i as u8 + 1; 500_000];
            r.write_file(&p(&format!("/archive/f{i}")), data.clone())
                .unwrap();
            originals.push(data);
        }
        r.flush().unwrap();
        assert!(r.counters().burns >= 1);
        let (_, used, _) = r.store.da_counts();
        assert!(used >= 1);
        // Evict every burned image's disk copy to force disc reads.
        let burned: Vec<ImageId> = (1..=r.store.len() as u64)
            .map(ImageId)
            .filter(|id| {
                r.store
                    .get(*id)
                    .map(|i| i.burned.is_some() && i.on_disk())
                    .unwrap_or(false)
            })
            .collect();
        for id in burned {
            r.store.evict_disk_copy(id).unwrap();
            r.cache.remove(id);
        }
        for (i, data) in originals.iter().enumerate() {
            let rd = r.read_file(&p(&format!("/archive/f{i}"))).unwrap();
            assert_eq!(rd.data.as_ref(), data.as_slice(), "file {i}");
        }
        assert!(r.counters().fetches >= 1);
    }

    #[test]
    fn table1_cold_read_latency_with_free_drives() {
        let mut r = ros();
        let data = vec![7u8; 100_000];
        r.write_file(&p("/cold"), data.clone()).unwrap();
        r.flush().unwrap();
        // Make the read cold: evict the image and unload all bays.
        let seg = r.mv.get(&p("/cold")).unwrap().latest().unwrap().segs[0];
        if r.store.get(seg).map(|i| i.on_disk()).unwrap_or(false) {
            r.store.evict_disk_copy(seg).unwrap();
            r.cache.remove(seg);
        }
        for bay in 0..r.bays.len() {
            if r.mech.bay_contents(bay).unwrap().is_some() {
                r.unload_bay(bay).unwrap();
            }
        }
        let rd = r.read_file(&p("/cold")).unwrap();
        assert_eq!(rd.source, ReadSource::RollerFreeDrives);
        let secs = rd.latency.as_secs_f64();
        // Table 1: 70.553 s for a roller fetch with free drives.
        assert!(
            (secs - 70.55).abs() < 1.5,
            "cold read = {secs:.2}s (paper: 70.553s)"
        );
        // Forepart answered long before the fetch finished (§4.8).
        assert!(rd.first_byte_latency <= SimDuration::from_millis(2));
        assert_eq!(rd.data.as_ref(), data.as_slice());
    }

    #[test]
    fn warm_disc_in_drive_read_is_sub_second() {
        let mut r = ros();
        let data = vec![9u8; 50_000];
        r.write_file(&p("/warm"), data.clone()).unwrap();
        r.flush().unwrap();
        let seg = r.mv.get(&p("/warm")).unwrap().latest().unwrap().segs[0];
        if r.store.get(seg).map(|i| i.on_disk()).unwrap_or(false) {
            r.store.evict_disk_copy(seg).unwrap();
            r.cache.remove(seg);
        }
        // The array is still in the drives after its burn.
        let rd = r.read_file(&p("/warm")).unwrap();
        assert_eq!(rd.source, ReadSource::DiscInDrive);
        let secs = rd.latency.as_secs_f64();
        // Table 1: 0.223 s for a disc already in a drive (plus transfer).
        assert!(secs < 0.5, "warm disc read = {secs:.3}s (paper: 0.223s)");
        assert_eq!(rd.data.as_ref(), data.as_slice());
    }

    #[test]
    fn damaged_disc_repairs_through_parity() {
        let mut r = ros();
        let mut originals = Vec::new();
        for i in 0..5 {
            let data = vec![0x30 + i as u8; 400_000];
            r.write_file(&p(&format!("/raid/f{i}")), data.clone())
                .unwrap();
            originals.push(data);
        }
        r.flush().unwrap();
        // Corrupt one burned disc's data area heavily.
        let seg = r.mv.get(&p("/raid/f0")).unwrap().latest().unwrap().segs[0];
        let loc = r.store.location_of(seg).expect("burned");
        if r.store.get(seg).map(|i| i.on_disk()).unwrap_or(false) {
            r.store.evict_disk_copy(seg).unwrap();
            r.cache.remove(seg);
        }
        // The disc may be in a drive (post-burn); corrupt wherever it is.
        let mut corrupted = false;
        if let Some(d) = r.registry.disc_mut(loc.disc) {
            for s in 0..50 {
                d.corrupt_sector(s);
            }
            corrupted = true;
        } else {
            for bay in 0..r.bays.len() {
                if r.mech.bay_contents(bay).unwrap() == Some(loc.slot) {
                    let drive = r.bays[bay].drive_mut(loc.position as usize).unwrap();
                    if let Some(d) = drive.disc_mut() {
                        for s in 0..50 {
                            d.corrupt_sector(s);
                        }
                        corrupted = true;
                    }
                }
            }
        }
        assert!(corrupted, "disc must be reachable for fault injection");
        let rd = r.read_file(&p("/raid/f0")).unwrap();
        assert_eq!(rd.data.as_ref(), originals[0].as_slice());
        assert_eq!(r.counters().repairs, 1);
    }

    #[test]
    fn readdir_and_mkdir_and_unlink() {
        let mut r = ros();
        r.write_file(&p("/dir/a"), vec![1]).unwrap();
        r.write_file(&p("/dir/b"), vec![2]).unwrap();
        r.mkdir(&p("/dir/sub")).unwrap();
        let mut ls = r.readdir(&p("/dir")).unwrap();
        ls.sort();
        assert_eq!(
            ls,
            vec![
                ("a".to_string(), false),
                ("b".to_string(), false),
                ("sub".to_string(), true)
            ]
        );
        r.unlink(&p("/dir/a")).unwrap();
        assert!(matches!(
            r.read_file(&p("/dir/a")).unwrap_err(),
            OlfsError::NotFound(_)
        ));
    }

    #[test]
    fn stat_reports_latest_version() {
        let mut r = ros();
        r.write_file(&p("/s"), vec![0u8; 123]).unwrap();
        let (size, ver, _) = r.stat(&p("/s")).unwrap();
        assert_eq!((size, ver), (123, 1));
        r.write_file(&p("/s"), vec![0u8; 456]).unwrap();
        let (size, ver, _) = r.stat(&p("/s")).unwrap();
        assert_eq!((size, ver), (456, 2));
    }

    #[test]
    fn background_burn_progresses_without_foreground_calls() {
        let mut r = ros();
        // Write enough to complete an array group (11 data images of
        // ~4 MiB each at tiny scale would be huge; instead shrink by
        // writing files that fill buckets quickly).
        for i in 0..30 {
            r.write_file(&p(&format!("/bulk/f{i}")), vec![i as u8; 900_000])
                .unwrap();
        }
        // Some buckets sealed; force the rest and let time pass without
        // foreground I/O.
        for b in 0..r.wbm.len() {
            if !r.wbm.bucket(b).unwrap().is_empty() {
                r.seal_bucket(b).unwrap();
            }
        }
        if let Some(g) = r.store.force_close_collecting() {
            r.schedule_parity(g);
        }
        r.run_for(SimDuration::from_secs(3600));
        assert!(r.counters().burns >= 1, "burn must complete in background");
    }

    #[test]
    fn write_latency_is_independent_of_burning() {
        let mut r = ros();
        for i in 0..20 {
            r.write_file(&p(&format!("/w/{i}")), vec![1u8; 800_000])
                .unwrap();
        }
        // Burns are now in flight; a foreground write stays fast.
        let w = r.write_file(&p("/quick"), vec![2u8; 1024]).unwrap();
        assert!(
            w.latency < SimDuration::from_millis(60),
            "write under burn = {}",
            w.latency
        );
    }

    #[test]
    fn version_ring_drops_old_versions() {
        let mut r = ros();
        for v in 0..20u32 {
            r.write_file(&p("/ring"), vec![v as u8; 64]).unwrap();
        }
        let versions = r.versions(&p("/ring")).unwrap();
        assert_eq!(versions.len(), params::MAX_VERSION_ENTRIES);
        assert!(matches!(
            r.read_version(&p("/ring"), 1).unwrap_err(),
            OlfsError::VersionGone { .. }
        ));
        let rd = r.read_version(&p("/ring"), 20).unwrap();
        assert_eq!(rd.data.as_ref(), &[19u8; 64][..]);
    }

    #[test]
    fn empty_file_roundtrip() {
        let mut r = ros();
        r.write_file(&p("/empty"), Vec::<u8>::new()).unwrap();
        let rd = r.read_file(&p("/empty")).unwrap();
        assert!(rd.data.is_empty());
    }

    #[test]
    fn drive_power_tracks_burning() {
        let mut r = ros();
        let idle = r.drive_power_watts();
        for i in 0..30 {
            r.write_file(&p(&format!("/pw/{i}")), vec![1u8; 900_000])
                .unwrap();
        }
        // If a burn is active now, power is at peak for those drives.
        let during = r.drive_power_watts();
        assert!(during >= idle);
    }
}

#[cfg(test)]
mod sleep_tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn idle_drives_spin_down_and_pay_the_mount_penalty() {
        let mut r = Ros::new(RosConfig::tiny());
        for i in 0..12 {
            r.write_file(&p(&format!("/z/{i}")), vec![i as u8; 800_000])
                .unwrap();
        }
        r.flush().unwrap();
        r.evict_burned_copies();
        // Back-to-back reads of two files on the same loaded array: the
        // second drive is freshly used, no sleep penalty.
        let warm = r.read_file(&p("/z/0")).unwrap();
        assert_eq!(warm.source, ReadSource::DiscInDrive);
        r.evict_burned_copies();
        // Leave the library idle past the spin-down timeout.
        r.run_for(ros_drive::params::sleep_after_idle() * 3);
        let slept = r.read_file(&p("/z/0")).unwrap();
        assert_eq!(slept.source, ReadSource::DiscInDrive);
        let delta = slept.latency.as_secs_f64() - warm.latency.as_secs_f64();
        // The sleeping drive pays ~2 s to spin up (minus the VFS mount
        // charge the first read paid).
        assert!(
            (1.5..2.5).contains(&(delta + 0.12)),
            "sleep penalty = {delta:.3}s"
        );
    }
}

#[cfg(test)]
mod scrub_scheduler_tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn scheduled_scrub_finds_damage_without_a_manual_call() {
        let mut cfg = RosConfig::tiny();
        cfg.scrub_interval = Some(SimDuration::from_secs(3600));
        let mut r = Ros::new(cfg);
        for i in 0..12 {
            r.write_file(&p(&format!("/sc/{i}")), vec![i as u8; 700_000])
                .unwrap();
        }
        r.flush().unwrap();
        r.unload_all_bays().unwrap();
        r.age_media(0.02);
        // Two intervals pass; the library is idle, so the tick scrubs.
        r.run_for(SimDuration::from_secs(2 * 3600 + 60));
        let report = r.last_scrub_report().expect("scheduled scrub ran");
        assert!(report.discs_scanned >= 3);
        assert!(!report.damaged.is_empty());
    }

    #[test]
    fn busy_ticks_skip_the_scrub_but_keep_rescheduling() {
        let mut cfg = RosConfig::tiny();
        cfg.scrub_interval = Some(SimDuration::from_millis(500));
        let mut r = Ros::new(cfg);
        // Queue a burn, then let ticks fire while it runs.
        for i in 0..12 {
            r.write_file(&p(&format!("/busy/{i}")), vec![i as u8; 800_000])
                .unwrap();
        }
        r.seal_open_buckets().unwrap();
        r.force_close_collecting_group();
        // Ticks firing during the burn must skip gracefully and keep
        // rescheduling; afterwards an idle tick scrubs the new discs.
        r.run_until_quiescent(SimDuration::from_secs(7200));
        r.unload_all_bays().unwrap();
        r.run_for(SimDuration::from_secs(2));
        let report = r.last_scrub_report().expect("idle tick scrubbed");
        assert!(report.damaged.is_empty(), "fresh burns are clean");
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::config::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn burned(prefetch: bool) -> Ros {
        let mut cfg = RosConfig::tiny();
        cfg.prefetch_array = prefetch;
        cfg.read_cache_images = 64;
        let mut r = Ros::new(cfg);
        for i in 0..12 {
            r.write_file(&p(&format!("/pf/{i}")), vec![i as u8; 800_000])
                .unwrap();
        }
        r.flush().unwrap();
        r.unload_all_bays().unwrap();
        r.evict_burned_copies();
        r
    }

    #[test]
    fn prefetch_caches_sibling_images_across_unloads() {
        let mut r = burned(true);
        // One cold read triggers the fetch and schedules the prefetch.
        r.read_file(&p("/pf/0")).unwrap();
        // Let the background streaming finish, then send the array home.
        r.run_for(SimDuration::from_secs(10));
        r.unload_all_bays().unwrap();
        // A sibling file in a DIFFERENT image now serves from cache.
        let r2 = r.read_file(&p("/pf/11")).unwrap();
        assert_eq!(r2.source, ReadSource::DiskImage, "prefetched sibling");
        assert!(r2.latency < SimDuration::from_millis(50));
        assert_eq!(r2.data.as_ref(), &[11u8; 800_000][..]);
    }

    #[test]
    fn without_prefetch_the_sibling_needs_the_arm_again() {
        let mut r = burned(false);
        r.read_file(&p("/pf/0")).unwrap();
        r.run_for(SimDuration::from_secs(10));
        r.unload_all_bays().unwrap();
        // Drop the single image the read itself cached.
        r.evict_burned_copies();
        let r2 = r.read_file(&p("/pf/11")).unwrap();
        assert_eq!(r2.source, ReadSource::RollerFreeDrives);
        assert!(r2.latency > SimDuration::from_secs(60));
    }

    #[test]
    fn write_and_check_mode_roughly_doubles_burn_time() {
        // At tiny disc scale the burn is milliseconds and vanishes under
        // the ~70 s mechanical time, so assert on the burn model of the
        // engine's own (check-mode) drives at paper scale.
        let mut cfg = RosConfig::tiny();
        cfg.write_and_check = true;
        let checked_ros = Ros::new(cfg);
        assert!(checked_ros.bays[0].iter().all(|d| d.check_mode));
        let normal_ros = Ros::new(RosConfig::tiny());
        assert!(normal_ros.bays[0].iter().all(|d| !d.check_mode));
        let sizes = vec![ros_drive::params::BD25_BYTES; 12];
        let checked = checked_ros.bays[0]
            .simulate_array_burn(&sizes, ros_drive::DiscClass::Bd25, SimTime::ZERO)
            .total
            .as_secs_f64();
        let normal = normal_ros.bays[0]
            .simulate_array_burn(&sizes, ros_drive::DiscClass::Bd25, SimTime::ZERO)
            .total
            .as_secs_f64();
        let ratio = checked / normal;
        // §4.7: "almost halves the actual write throughput".
        assert!((1.6..2.2).contains(&ratio), "ratio = {ratio:.2}");
    }
}
