//! End-to-end write-path dedup (DESIGN.md §14): with `cfg.dedup` on,
//! duplicate payloads share one blob, one bucket residency and one
//! burn; reads of every alias return the right bytes through all three
//! tiers; shared bytes are never overwritten in place; and the engine
//! burns strictly less than a non-dedup run of the same workload.

use ros_olfs::{Ros, RosConfig};
use ros_udf::UdfPath;

fn dedup_cfg() -> RosConfig {
    let mut cfg = RosConfig::tiny();
    cfg.dedup = true;
    cfg
}

fn path(s: &str) -> UdfPath {
    UdfPath::parse(s).expect("valid path")
}

/// `copies` paths per payload over `distinct` distinct payloads of
/// `size` bytes each.
fn duplicated_workload(distinct: usize, copies: usize, size: usize) -> Vec<(UdfPath, Vec<u8>)> {
    let mut files = Vec::new();
    for c in 0..copies {
        for d in 0..distinct {
            let payload: Vec<u8> = (0..size).map(|j| ((d * 131 + j * 7) % 251) as u8).collect();
            files.push((path(&format!("/t{c}/f{d}.dat")), payload));
        }
    }
    files
}

#[test]
fn duplicate_writes_share_segments_and_bytes() {
    let mut ros = Ros::new(dedup_cfg());
    let data = vec![0xabu8; 64 * 1024];
    let a = ros.write_file(&path("/a"), data.clone()).expect("write /a");
    let b = ros.write_file(&path("/b"), data.clone()).expect("write /b");
    assert_eq!(a.segments, b.segments, "duplicate shares the segments");
    assert!(b.latency < a.latency, "dedup hit skips the bucket write");

    let c = ros.counters();
    assert_eq!(c.writes, 2);
    assert_eq!(c.dedup_hits, 1);
    assert_eq!(c.dedup_bytes_saved, 64 * 1024);
    let stats = ros.dedup_stats();
    assert_eq!(stats.blobs, 1);
    assert_eq!(stats.links, 2);
    assert!((stats.dedup_ratio - 2.0).abs() < 1e-12);

    // Both aliases read back the same bytes from the open bucket.
    for p in ["/a", "/b"] {
        let r = ros.read_file(&path(p)).expect("read");
        assert_eq!(r.data.as_ref(), data.as_slice(), "{p}");
    }
}

#[test]
fn dedup_aliases_read_back_after_seal_and_burn() {
    let mut ros = Ros::new(dedup_cfg());
    let files = duplicated_workload(6, 3, 96 * 1024);
    for (p, data) in &files {
        ros.write_file(p, data.clone()).expect("write");
    }
    ros.flush().expect("flush");
    let evicted = ros.evict_burned_copies();
    assert!(evicted > 0, "flush burned at least one image");
    // Every alias — including those whose canonical copy now lives only
    // on disc — still reads back byte-identical through the fetch path.
    for (p, data) in &files {
        let r = ros.read_file(p).expect("read after burn");
        assert_eq!(r.data.as_ref(), data.as_slice(), "{p}");
    }
    // The maintenance digest sweep agrees with the fetched payloads.
    let report = ros.verify_resident_images();
    assert!(report.mismatched.is_empty());
    assert!(report.verified > 0);
}

#[test]
fn shared_bytes_are_never_updated_in_place() {
    let mut ros = Ros::new(dedup_cfg());
    let original = vec![0x11u8; 32 * 1024];
    ros.write_file(&path("/a"), original.clone())
        .expect("write /a");
    ros.write_file(&path("/b"), original.clone())
        .expect("write /b");

    // Updating the alias must regenerate, not overwrite shared bytes.
    let replacement = vec![0x22u8; 32 * 1024];
    let up = ros
        .write_file(&path("/b"), replacement.clone())
        .expect("update /b");
    assert_eq!(up.version, 2);
    let a = ros.read_file(&path("/a")).expect("read /a");
    assert_eq!(a.data.as_ref(), original.as_slice(), "canonical intact");
    let b = ros.read_file(&path("/b")).expect("read /b");
    assert_eq!(b.data.as_ref(), replacement.as_slice());

    // Same protection updating the canonical holder while still shared.
    ros.write_file(&path("/c"), original.clone())
        .expect("write /c");
    let up = ros
        .write_file(&path("/a"), replacement.clone())
        .expect("update /a");
    assert_eq!(up.version, 2);
    let c = ros.read_file(&path("/c")).expect("read /c");
    assert_eq!(c.data.as_ref(), original.as_slice(), "alias intact");
}

#[test]
fn unlink_releases_references_and_dead_blobs_leave_the_catalog() {
    let mut ros = Ros::new(dedup_cfg());
    let data = vec![0x77u8; 16 * 1024];
    ros.write_file(&path("/a"), data.clone()).expect("write /a");
    ros.write_file(&path("/b"), data.clone()).expect("write /b");
    assert_eq!(ros.dedup_stats().links, 2);

    ros.unlink(&path("/a")).expect("unlink /a");
    assert_eq!(ros.dedup_stats().links, 1);
    let b = ros.read_file(&path("/b")).expect("read survivor");
    assert_eq!(b.data.as_ref(), data.as_slice());

    ros.unlink(&path("/b")).expect("unlink /b");
    assert_eq!(ros.dedup_stats().blobs, 0, "dead blob fully released");

    // Re-ingesting the same content is a fresh canonical, not a hit on
    // a retired catalog entry.
    let before = ros.counters().dedup_hits;
    ros.write_file(&path("/c"), data.clone()).expect("rewrite");
    assert_eq!(ros.counters().dedup_hits, before);
    let c = ros.read_file(&path("/c")).expect("read /c");
    assert_eq!(c.data.as_ref(), data.as_slice());
}

#[test]
fn dedup_burns_strictly_less_than_a_plain_run() {
    // 20 MB logical over 4 MB unique: the plain run must overflow the
    // 4 MB tiny discs several times over, the dedup run barely once.
    let files = duplicated_workload(8, 5, 512 * 1024);
    let run = |dedup: bool| {
        let mut cfg = RosConfig::tiny();
        cfg.dedup = dedup;
        let mut ros = Ros::new(cfg);
        for (p, data) in &files {
            ros.write_file(p, data.clone()).expect("write");
        }
        ros.flush().expect("flush");
        let status = ros.status();
        (ros.counters(), status.images, status.buffer_usage.0)
    };
    let (plain, plain_images, plain_bytes) = run(false);
    let (deduped, dedup_images, dedup_bytes) = run(true);
    assert_eq!(plain.dedup_hits, 0);
    assert_eq!(deduped.dedup_hits, 8 * 4, "every copy after the first hits");
    assert!(
        dedup_images < plain_images,
        "dedup must burn fewer images ({dedup_images} vs {plain_images})"
    );
    assert!(
        dedup_bytes < plain_bytes,
        "dedup must stage fewer bytes ({dedup_bytes} vs {plain_bytes})"
    );
    assert!(deduped.buckets_sealed <= plain.buckets_sealed);
}
