//! Namespace listings must not depend on ingest order: two fresh
//! engines fed the same tree in different orders must return identical
//! `readdir` output — same names, same order, same flags. A stray
//! `HashMap` iteration on the MV/namespace path would break this only
//! intermittently (hash order is random per instance), so the gate
//! lives here as a deterministic regression test alongside the L6 lint.

use ros_olfs::{Ros, RosConfig};
use ros_udf::UdfPath;

/// The shared tree: 4 directories x 6 files.
fn file_set() -> Vec<UdfPath> {
    let mut files = Vec::new();
    for d in 0..4u32 {
        for f in 0..6u32 {
            files.push(
                UdfPath::parse(&format!("/archive/d{d:02}/f{f:02}.dat")).expect("valid path"),
            );
        }
    }
    files
}

/// Deterministic shuffle: stride coprime to the length gives a fixed,
/// thoroughly out-of-order permutation.
fn strided(items: &[UdfPath], stride: usize) -> Vec<UdfPath> {
    (0..items.len())
        .map(|i| items[(i * stride) % items.len()].clone())
        .collect()
}

fn ingest(order: &[UdfPath]) -> Ros {
    let mut ros = Ros::new(RosConfig::tiny());
    for (i, path) in order.iter().enumerate() {
        let payload = vec![0x5a ^ (i % 251) as u8; 1024];
        ros.write_file(path, payload).expect("write succeeds");
    }
    ros
}

fn listing(ros: &mut Ros) -> Vec<(String, Vec<(String, bool)>)> {
    let mut out = Vec::new();
    for dir in [
        "/",
        "/archive",
        "/archive/d00",
        "/archive/d01",
        "/archive/d02",
        "/archive/d03",
    ] {
        let path = UdfPath::parse(dir).expect("valid dir");
        out.push((
            dir.to_string(),
            ros.readdir(&path).expect("readdir succeeds"),
        ));
    }
    out
}

#[test]
fn namespace_listing_is_identical_across_ingest_orders() {
    let files = file_set();
    let mut forward = ingest(&files);
    let mut shuffled = ingest(&strided(&files, 11));
    assert_eq!(
        listing(&mut forward),
        listing(&mut shuffled),
        "readdir output must not depend on ingest order"
    );
}

#[test]
fn namespace_listing_is_identical_across_fresh_runs() {
    let files = file_set();
    let mut a = ingest(&files);
    let mut b = ingest(&files);
    assert_eq!(listing(&mut a), listing(&mut b));
}
