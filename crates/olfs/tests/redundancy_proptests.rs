//! Exhaustive erasure round-trip properties for §4.7's delayed parity.
//!
//! For randomly shaped disc arrays (member count and ragged member
//! sizes), every erasure pattern the schema tolerates — including loss
//! of the parity members themselves — must reconstruct the exact data
//! images, and any pattern one past the tolerance must be rejected with
//! the typed error.

use proptest::prelude::*;
use ros_olfs::redundancy::{generate, reconstruct, RedundancyError};
use ros_olfs::Redundancy;
use ros_sim::SimRng;

/// Deterministic ragged member images: `n` members around `base` bytes.
fn images(seed: u64, n: usize, base: usize) -> Vec<Vec<u8>> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let len = base + rng.index(base.max(1));
            let mut v = vec![0u8; len.max(1)];
            rng.fill_bytes(&mut v);
            v
        })
        .collect()
}

/// Applies an erasure pattern and checks reconstruction returns every
/// original data image byte-exactly. `lost_data` indexes data members;
/// `lose_p`/`lose_q` drop the parity payloads.
fn assert_round_trip(
    schema: Redundancy,
    imgs: &[Vec<u8>],
    lost_data: &[usize],
    lose_p: bool,
    lose_q: bool,
) -> Result<(), TestCaseError> {
    let refs: Vec<&[u8]> = imgs.iter().map(|v| v.as_slice()).collect();
    let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
    let set = generate(schema, &refs).expect("generate");
    let masked: Vec<Option<&[u8]>> = imgs
        .iter()
        .enumerate()
        .map(|(i, d)| (!lost_data.contains(&i)).then_some(d.as_slice()))
        .collect();
    let p = if lose_p { None } else { set.p.as_deref() };
    let q = if lose_q { None } else { set.q.as_deref() };
    let rec = reconstruct(schema, &masked, &sizes, p, q).map_err(|e| {
        TestCaseError::fail(format!(
            "{schema:?} lost {lost_data:?} p_lost={lose_p} q_lost={lose_q}: {e}"
        ))
    })?;
    prop_assert_eq!(rec.len(), imgs.len());
    for (r, orig) in rec.iter().zip(imgs.iter()) {
        prop_assert_eq!(r.as_ref(), orig.as_slice());
    }
    Ok(())
}

proptest! {
    // RAID-5 tolerates one lost member: enumerate every single-member
    // erasure over data ∪ {P} for each sampled array shape.
    #[test]
    fn raid5_every_single_erasure_round_trips(
        seed in any::<u64>(),
        n in 2usize..9,
        base in 16usize..400,
    ) {
        let imgs = images(seed, n, base);
        for lost in 0..n {
            assert_round_trip(Redundancy::Raid5, &imgs, &[lost], false, false)?;
        }
        // Losing only P leaves the data intact (and P is regenerable).
        assert_round_trip(Redundancy::Raid5, &imgs, &[], true, false)?;
    }

    // RAID-6 tolerates two lost members: enumerate every pair over
    // data ∪ {P, Q}, plus all singles.
    #[test]
    fn raid6_every_double_erasure_round_trips(
        seed in any::<u64>(),
        n in 2usize..8,
        base in 16usize..300,
    ) {
        let imgs = images(seed, n, base);
        // Two data members.
        for x in 0..n {
            for y in (x + 1)..n {
                assert_round_trip(Redundancy::Raid6, &imgs, &[x, y], false, false)?;
            }
        }
        // One data member plus one parity member.
        for x in 0..n {
            assert_round_trip(Redundancy::Raid6, &imgs, &[x], true, false)?;
            assert_round_trip(Redundancy::Raid6, &imgs, &[x], false, true)?;
        }
        // Singles and parity-only losses.
        for x in 0..n {
            assert_round_trip(Redundancy::Raid6, &imgs, &[x], false, false)?;
        }
        assert_round_trip(Redundancy::Raid6, &imgs, &[], true, true)?;
    }

    // One loss past the tolerance is always rejected with the typed
    // error, never a wrong reconstruction.
    #[test]
    fn over_tolerance_is_rejected(
        seed in any::<u64>(),
        n in 3usize..9,
        base in 16usize..200,
    ) {
        let imgs = images(seed, n, base);
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        for (schema, tolerated) in [(Redundancy::None, 0usize), (Redundancy::Raid5, 1), (Redundancy::Raid6, 2)] {
            let refs: Vec<&[u8]> = imgs.iter().map(|v| v.as_slice()).collect();
            let set = generate(schema, &refs).expect("generate");
            let over = tolerated + 1;
            let masked: Vec<Option<&[u8]>> = imgs
                .iter()
                .enumerate()
                .map(|(i, d)| (i >= over).then_some(d.as_slice()))
                .collect();
            let err = reconstruct(schema, &masked, &sizes, set.p.as_deref(), set.q.as_deref())
                .expect_err("over-tolerance loss must fail");
            prop_assert_eq!(
                err,
                RedundancyError::TooManyLost { lost: over, tolerated }
            );
        }
    }

    // Generate → reconstruct with zero losses is the identity even when
    // parity is absent (pure pass-through).
    #[test]
    fn no_loss_is_identity(
        seed in any::<u64>(),
        n in 1usize..9,
        base in 1usize..200,
    ) {
        let imgs = images(seed, n, base);
        let sizes: Vec<usize> = imgs.iter().map(Vec::len).collect();
        let masked: Vec<Option<&[u8]>> = imgs.iter().map(|d| Some(d.as_slice())).collect();
        for schema in [Redundancy::None, Redundancy::Raid5, Redundancy::Raid6] {
            let rec = reconstruct(schema, &masked, &sizes, None, None).expect("identity");
            for (r, orig) in rec.iter().zip(imgs.iter()) {
                prop_assert_eq!(r.as_ref(), orig.as_slice());
            }
        }
    }
}
