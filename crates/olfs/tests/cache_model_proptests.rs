//! Model-based equivalence check for the Read Cache (§4.1).
//!
//! The production `ReadCache` is an intrusive hash-linked LRU; the
//! reference model below is the definitionally obvious O(n) `VecDeque`
//! implementation of the same policy (LRU with pinned images exempt
//! from eviction, pins cleared on removal). Random op sequences must
//! drive both to identical observable behaviour: hit/miss results,
//! eviction streams, residency, LRU order and counters.

use proptest::prelude::*;
use ros_olfs::cache::{CacheStats, ReadCache};
use ros_olfs::ImageId;
use std::collections::{HashMap, VecDeque};

/// Reference LRU: front = coldest. Mirrors the policy spec exactly.
struct ModelCache {
    capacity: usize,
    order: VecDeque<ImageId>,
    pins: HashMap<ImageId, u32>,
    stats: CacheStats,
}

impl ModelCache {
    fn new(capacity: usize) -> Self {
        ModelCache {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            pins: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, id: ImageId) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.order.push_back(id);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, id: ImageId) -> Vec<ImageId> {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
        }
        self.order.push_back(id);
        let mut evicted = Vec::new();
        while self.order.len() > self.capacity {
            let victim = self.order.iter().position(|x| !self.pins.contains_key(x));
            match victim {
                Some(pos) if self.order[pos] != id => {
                    let v = self.order.remove(pos).expect("position valid");
                    self.stats.evictions += 1;
                    evicted.push(v);
                }
                // Everything (else) is pinned: tolerate overflow.
                _ => break,
            }
        }
        evicted
    }

    fn remove(&mut self, id: ImageId) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.pins.remove(&id);
            true
        } else {
            false
        }
    }

    fn pin(&mut self, id: ImageId) {
        *self.pins.entry(id).or_insert(0) += 1;
    }

    fn unpin(&mut self, id: ImageId) {
        if let Some(count) = self.pins.get_mut(&id) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&id);
            }
        }
    }
}

/// Replays one op on both implementations and checks every observable.
fn step(
    real: &mut ReadCache,
    model: &mut ModelCache,
    op: u8,
    raw_id: u64,
) -> Result<(), TestCaseError> {
    let id = ImageId(raw_id);
    match op % 5 {
        0 => {
            let evicted = real.insert(id);
            let expected = model.insert(id);
            prop_assert_eq!(
                evicted,
                expected,
                "eviction stream diverged on insert {}",
                raw_id
            );
        }
        1 => {
            prop_assert_eq!(real.touch(id), model.touch(id), "touch {} diverged", raw_id);
        }
        2 => {
            real.pin(id);
            model.pin(id);
        }
        3 => {
            real.unpin(id);
            model.unpin(id);
        }
        _ => {
            prop_assert_eq!(
                real.remove(id),
                model.remove(id),
                "remove {} diverged",
                raw_id
            );
        }
    }
    prop_assert_eq!(real.len(), model.order.len());
    prop_assert_eq!(real.is_empty(), model.order.is_empty());
    prop_assert_eq!(real.contains(id), model.order.contains(&id));
    prop_assert_eq!(real.stats(), model.stats);
    let real_order: Vec<ImageId> = real.lru_order().collect();
    let model_order: Vec<ImageId> = model.order.iter().copied().collect();
    prop_assert_eq!(real_order, model_order, "LRU order diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Small id space against small capacities maximises collisions,
    // refreshes, pinned-overflow and remove/re-insert interleavings.
    #[test]
    fn hash_linked_lru_matches_deque_model(
        capacity in 1usize..9,
        ops in proptest::collection::vec((0u8..5, 0u64..12), 1..120),
    ) {
        let mut real = ReadCache::new(capacity);
        let mut model = ModelCache::new(capacity);
        prop_assert_eq!(real.capacity(), model.capacity);
        for (op, raw_id) in ops {
            step(&mut real, &mut model, op, raw_id)?;
        }
    }

    // Wider id churn at tiny capacity stresses slab recycling.
    #[test]
    fn lru_model_equivalence_under_churn(
        ops in proptest::collection::vec((0u8..5, 0u64..64), 1..300),
    ) {
        let mut real = ReadCache::new(4);
        let mut model = ModelCache::new(4);
        for (op, raw_id) in ops {
            step(&mut real, &mut model, op, raw_id)?;
        }
    }
}
