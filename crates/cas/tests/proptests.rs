//! Property tests for the CAS refcount invariants and dedup determinism:
//!
//! - link/unlink never orphans a live blob, never double-frees a dead
//!   one, and the byte accounting identity `logical = Σ refs·len`,
//!   `unique = Σ len` holds after every operation;
//! - ingesting the same multi-tenant object set in any order yields an
//!   identical blob set (digests, refcounts and accounting).

use bytes::Bytes;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use ros_cas::{BlobStore, Cas, CasError, Digest, ObjectKey};
use ros_disk::plane::DataPlane;

/// A model-checked shadow of the store: digest → (len, refs).
fn check_accounting(store: &BlobStore, model: &std::collections::BTreeMap<Digest, (u64, u64)>) {
    let logical: u64 = model.values().map(|(len, refs)| len * refs).sum();
    let unique: u64 = model.values().map(|(len, _)| *len).sum();
    assert_eq!(store.logical_bytes(), logical);
    assert_eq!(store.unique_bytes(), unique);
    assert_eq!(store.blob_count(), model.len());
    for (d, (_, refs)) in model {
        assert_eq!(store.refs(d), Some(*refs), "digest {d}");
    }
}

proptest! {
    #[test]
    fn refcounts_never_orphan_or_double_free(seed in 0u64..1_000) {
        let plane = DataPlane::single();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut store = BlobStore::new();
        let mut model: std::collections::BTreeMap<Digest, (u64, u64)> =
            std::collections::BTreeMap::new();
        // A small payload pool so operations collide on purpose.
        let pool: Vec<Bytes> = (0..6)
            .map(|i| {
                let n = 16 + 32 * i;
                Bytes::from((0..n).map(|j| (i * 37 + j) as u8).collect::<Vec<u8>>())
            })
            .collect();
        for _ in 0..200 {
            let which = rng.gen::<usize>() % pool.len();
            let payload = pool[which].clone();
            let digest = Digest::of(&payload);
            match rng.gen::<usize>() % 3 {
                0 => {
                    let out = store.put(payload.clone(), &plane);
                    prop_assert_eq!(out.digest, digest);
                    prop_assert_eq!(out.deduped, model.contains_key(&digest));
                    let e = model.entry(digest).or_insert((payload.len() as u64, 0));
                    e.1 += 1;
                }
                1 => {
                    let res = store.link(&digest);
                    match model.get_mut(&digest) {
                        Some(e) => {
                            e.1 += 1;
                            prop_assert_eq!(res, Ok(e.1));
                        }
                        None => {
                            prop_assert_eq!(res, Err(CasError::UnknownDigest(digest)));
                        }
                    }
                }
                _ => {
                    let res = store.unlink(&digest);
                    match model.get_mut(&digest) {
                        Some(e) => {
                            e.1 -= 1;
                            prop_assert_eq!(res, Ok(e.1));
                            if e.1 == 0 {
                                model.remove(&digest);
                                // The blob is gone; a second unlink must
                                // be a typed error, not a double-free.
                                prop_assert_eq!(
                                    store.unlink(&digest),
                                    Err(CasError::UnknownDigest(digest))
                                );
                            }
                        }
                        None => {
                            prop_assert_eq!(res, Err(CasError::UnknownDigest(digest)));
                        }
                    }
                }
            }
            check_accounting(&store, &model);
            // Live blobs always verify by digest.
            for d in model.keys() {
                prop_assert!(store.verify(d, &plane).is_ok());
            }
        }
    }

    #[test]
    fn shuffled_multi_tenant_ingest_yields_identical_blob_sets(seed in 0u64..1_000) {
        let plane = DataPlane::single();
        // 3 tenants × 8 objects drawing from 5 distinct payloads: heavy
        // cross-tenant duplication by construction.
        let mut objects: Vec<(ObjectKey, Bytes)> = Vec::new();
        for t in 0..3 {
            for i in 0..8 {
                let key = ObjectKey::new(format!("t{t}"), "b0", format!("/f{i}"));
                let which = (t * 3 + i * 5) % 5;
                let payload: Vec<u8> = (0..64 + which * 17)
                    .map(|j| (which * 31 + j) as u8)
                    .collect();
                objects.push((key, Bytes::from(payload)));
            }
        }
        let ingest_in = |order: &[usize]| {
            let mut cas = Cas::new();
            for &i in order {
                let (key, data) = &objects[i];
                cas.ingest(key.clone(), data.clone(), &plane);
            }
            cas
        };
        let sorted: Vec<usize> = (0..objects.len()).collect();
        let reference = ingest_in(&sorted);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shuffled = sorted.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen::<usize>() % (i + 1);
            shuffled.swap(i, j);
        }
        let cas = ingest_in(&shuffled);

        let blob_set: Vec<(Digest, Option<u64>)> = cas
            .store()
            .digests()
            .map(|d| (*d, cas.store().refs(d)))
            .collect();
        let reference_set: Vec<(Digest, Option<u64>)> = reference
            .store()
            .digests()
            .map(|d| (*d, reference.store().refs(d)))
            .collect();
        prop_assert_eq!(blob_set, reference_set);
        prop_assert_eq!(cas.store().stats(), reference.store().stats());
        prop_assert_eq!(cas.object_count(), reference.object_count());
        // Every key resolves to the same digest in both stores.
        for (key, digest) in reference.objects() {
            prop_assert_eq!(cas.resolve(key), Ok(*digest));
        }
    }
}
