//! The 256-bit content digest: an in-crate SHA-256 (FIPS 180-4) plus a
//! chunked, [`DataPlane`]-parallel content-digest scheme.
//!
//! The workspace has no network access, so the hash is implemented here
//! against the published test vectors rather than pulled from crates.io.
//! Payload digests use a *chunked* construction so large images can be
//! hashed in parallel on the data plane while staying byte-identical at
//! any thread count: the payload is split into fixed [`CHUNK_BYTES`]
//! pieces (a pure function of the length), each chunk is SHA-256'd
//! independently — this is the part that fans out over `plane.map` — and
//! the final digest is SHA-256 over the big-endian payload length
//! followed by the chunk digests in order.

use ros_disk::plane::DataPlane;

/// Fixed chunking granularity of [`content_digest`]. Chunk boundaries
/// depend only on the payload length, never on the thread count, so the
/// digest is stable across plane configurations.
pub const CHUNK_BYTES: usize = 256 * 1024;

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash state (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SHA-256 compression over a 64-byte block.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (t, word) in w.iter_mut().take(16).enumerate() {
        let i = t * 4;
        *word = u32::from_be_bytes([block[i], block[i + 1], block[i + 2], block[i + 3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of a byte slice (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut i = 0;
    while i + 64 <= data.len() {
        compress(&mut state, &data[i..i + 64]);
        i += 64;
    }
    // Padding: 0x80, zeros, then the bit length as a big-endian u64,
    // in one or two final blocks.
    let rem = data.len() - i;
    let mut tail = [0u8; 128];
    tail[..rem].copy_from_slice(&data[i..]);
    tail[rem] = 0x80;
    let tail_len = if rem < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut state, &tail[..64]);
    if tail_len == 128 {
        compress(&mut state, &tail[64..128]);
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// An interned 256-bit content digest.
///
/// `Copy`, totally ordered and hashable, so it can key `BTreeMap`s and
/// travel by value through the engine without allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Wraps raw digest bytes (e.g. from a test vector).
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Serial content digest of a payload (single-threaded plane).
    pub fn of(data: &[u8]) -> Self {
        content_digest(data, &DataPlane::single())
    }

    /// Lowercase hex rendering of the full digest.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for &b in &self.0 {
            s.push(char::from(HEX[usize::from(b >> 4)]));
            s.push(char::from(HEX[usize::from(b & 0x0f)]));
        }
        s
    }

    /// First 8 hex characters — a human-scale fingerprint for logs.
    pub fn short(&self) -> String {
        let mut s = self.to_hex();
        s.truncate(8);
        s
    }
}

impl core::fmt::Display for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl core::fmt::Debug for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

/// Content digest of a payload, chunk-hashed on the data plane.
///
/// Byte-identical at any plane thread count: the chunk layout is a pure
/// function of `data.len()`, `plane.map` preserves item order, and the
/// root hash binds the payload length so `content_digest` of a payload
/// never collides with `sha256` of its concatenated chunk digests.
pub fn content_digest(data: &[u8], plane: &DataPlane) -> Digest {
    let chunks: Vec<&[u8]> = data.chunks(CHUNK_BYTES).collect();
    let chunk_digests: Vec<[u8; 32]> = plane.map(&chunks, |c| sha256(c));
    let mut root = Vec::with_capacity(8 + 32 * chunk_digests.len());
    root.extend_from_slice(&(data.len() as u64).to_be_bytes());
    for d in &chunk_digests {
        root.extend_from_slice(d);
    }
    Digest(sha256(&root))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8; 32]) -> String {
        Digest::from_bytes(*bytes).to_hex()
    }

    #[test]
    fn fips_180_4_test_vectors() {
        // NIST FIPS 180-4 / CAVP short-message vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's (the long NIST vector).
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries_are_exact() {
        // 55/56/63/64 bytes straddle the one-vs-two final block split.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0x5au8; len];
            let d = sha256(&data);
            let again = sha256(&data);
            assert_eq!(d, again, "len {len}");
            let mut tweaked = data.clone();
            tweaked[len - 1] ^= 1;
            assert_ne!(d, sha256(&tweaked), "len {len} must discriminate");
        }
    }

    #[test]
    fn content_digest_is_thread_count_invariant() {
        // Straddle several chunk boundaries.
        let data: Vec<u8> = (0..(2 * CHUNK_BYTES + 12_345))
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes()[7])
            .collect();
        let expect = content_digest(&data, &DataPlane::single());
        for threads in [2, 4, 8] {
            let got = content_digest(&data, &DataPlane::new(threads));
            assert_eq!(got, expect, "threads={threads}");
        }
        assert_eq!(Digest::of(&data), expect);
    }

    #[test]
    fn content_digest_binds_length_and_content() {
        assert_ne!(Digest::of(b""), Digest::of(b"\0"));
        assert_ne!(Digest::of(b"ros"), Digest::of(b"ros\0"));
        assert_eq!(Digest::of(b"ros"), Digest::of(b"ros"));
    }

    #[test]
    fn display_and_short_render_hex() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short(), d.to_hex()[..8].to_string());
        assert_eq!(format!("{d}"), d.to_hex());
    }
}
