//! Refcounted blob storage and the dedup-aware object index.
//!
//! A [`BlobStore`] holds each distinct payload exactly once, keyed by
//! its content [`Digest`], with a strict reference count: `put`/`link`
//! raise it, `unlink` lowers it, and the blob is dropped exactly when
//! the count reaches zero. Accounting tracks *logical* bytes (what
//! callers wrote) against *unique* bytes (what is actually stored) so
//! the dedup ratio is a first-class, deterministic quantity.
//!
//! [`Cas`] layers the `(tenant, bucket, path) → Digest` object index on
//! top, keeping the refcounts consistent as bindings change.

use crate::digest::{content_digest, Digest};
use bytes::Bytes;
use ros_disk::plane::DataPlane;
use std::collections::BTreeMap;

/// Typed CAS failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CasError {
    /// No blob with this digest is stored.
    UnknownDigest(Digest),
    /// No binding exists for this object key.
    UnknownObject(String),
    /// A payload's recomputed digest disagrees with the expected one.
    DigestMismatch {
        /// The digest the caller expected.
        expected: Digest,
        /// The digest the payload actually has.
        actual: Digest,
    },
}

impl core::fmt::Display for CasError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CasError::UnknownDigest(d) => write!(f, "unknown digest {}", d.short()),
            CasError::UnknownObject(k) => write!(f, "unknown object {k}"),
            CasError::DigestMismatch { expected, actual } => write!(
                f,
                "digest mismatch: expected {}, got {}",
                expected.short(),
                actual.short()
            ),
        }
    }
}

impl std::error::Error for CasError {}

/// Verifies a payload against an expected digest, hashing on `plane`.
///
/// The single verify-by-digest entry point: scrub, the cluster drill
/// and the chaos sweep all route integrity checks through here.
pub fn verify_payload(expected: &Digest, data: &[u8], plane: &DataPlane) -> Result<(), CasError> {
    let actual = content_digest(data, plane);
    if actual == *expected {
        Ok(())
    } else {
        Err(CasError::DigestMismatch {
            expected: *expected,
            actual,
        })
    }
}

#[derive(Clone, Debug)]
struct BlobEntry {
    bytes: Bytes,
    refs: u64,
}

/// Outcome of a [`BlobStore::put`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutOutcome {
    /// The payload's content digest.
    pub digest: Digest,
    /// True when the payload was already stored (this put only linked).
    pub deduped: bool,
}

/// Point-in-time accounting snapshot of a [`BlobStore`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreStats {
    /// Distinct blobs stored.
    pub blobs: u64,
    /// Sum of all live references.
    pub links: u64,
    /// Bytes across all live references (what callers wrote).
    pub logical_bytes: u64,
    /// Bytes actually stored (each distinct payload once).
    pub unique_bytes: u64,
    /// `logical_bytes / unique_bytes` (1.0 when empty).
    pub dedup_ratio: f64,
}

/// A refcounted, digest-addressed blob store.
///
/// Invariants (upheld by every operation, proptested in
/// `tests/proptests.rs`):
/// - a digest is present iff its refcount is ≥ 1;
/// - `logical_bytes` = Σ refs(d) · len(d); `unique_bytes` = Σ len(d);
/// - `Bytes` payloads are shared by handle, so a `put` of data the
///   caller already holds costs no copy.
#[derive(Clone, Debug, Default)]
pub struct BlobStore {
    blobs: BTreeMap<Digest, BlobEntry>,
    logical_bytes: u64,
    unique_bytes: u64,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Self {
        BlobStore::default()
    }

    /// Stores (or links) a payload, hashing it on `plane`.
    pub fn put(&mut self, data: Bytes, plane: &DataPlane) -> PutOutcome {
        let digest = content_digest(&data, plane);
        self.put_prehashed(digest, data)
    }

    /// Stores (or links) a payload under a digest the caller already
    /// computed with [`content_digest`]. The caller vouches for the
    /// digest; [`BlobStore::verify`] re-checks it on demand.
    pub fn put_prehashed(&mut self, digest: Digest, data: Bytes) -> PutOutcome {
        let len = data.len() as u64;
        let deduped = match self.blobs.get_mut(&digest) {
            Some(entry) => {
                entry.refs += 1;
                true
            }
            None => {
                self.blobs.insert(
                    digest,
                    BlobEntry {
                        bytes: data,
                        refs: 1,
                    },
                );
                self.unique_bytes += len;
                false
            }
        };
        self.logical_bytes += len;
        PutOutcome { digest, deduped }
    }

    /// Adds a reference to an existing blob. Returns the new count.
    pub fn link(&mut self, digest: &Digest) -> Result<u64, CasError> {
        let entry = self
            .blobs
            .get_mut(digest)
            .ok_or(CasError::UnknownDigest(*digest))?;
        entry.refs += 1;
        self.logical_bytes += entry.bytes.len() as u64;
        Ok(entry.refs)
    }

    /// Drops a reference; the blob is removed when the count reaches
    /// zero. Returns the remaining count.
    pub fn unlink(&mut self, digest: &Digest) -> Result<u64, CasError> {
        let entry = self
            .blobs
            .get_mut(digest)
            .ok_or(CasError::UnknownDigest(*digest))?;
        let len = entry.bytes.len() as u64;
        entry.refs -= 1;
        let remaining = entry.refs;
        self.logical_bytes -= len;
        if remaining == 0 {
            self.blobs.remove(digest);
            self.unique_bytes -= len;
        }
        Ok(remaining)
    }

    /// The stored payload for a digest.
    pub fn get(&self, digest: &Digest) -> Result<&Bytes, CasError> {
        self.blobs
            .get(digest)
            .map(|e| &e.bytes)
            .ok_or(CasError::UnknownDigest(*digest))
    }

    /// True when a blob with this digest is stored.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.contains_key(digest)
    }

    /// Live reference count for a digest, if stored.
    pub fn refs(&self, digest: &Digest) -> Option<u64> {
        self.blobs.get(digest).map(|e| e.refs)
    }

    /// Recomputes a stored blob's digest on `plane` and checks it.
    pub fn verify(&self, digest: &Digest, plane: &DataPlane) -> Result<(), CasError> {
        let bytes = self.get(digest)?;
        verify_payload(digest, bytes, plane)
    }

    /// Stored digests in order (deterministic iteration).
    pub fn digests(&self) -> impl Iterator<Item = &Digest> {
        self.blobs.keys()
    }

    /// Number of distinct blobs.
    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }

    /// Bytes across all live references.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Bytes actually stored.
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// `logical / unique` — how many times over the stored bytes are
    /// shared (1.0 for an empty store, ≥ 1.0 otherwise).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.unique_bytes as f64
        }
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            blobs: self.blobs.len() as u64,
            links: self.blobs.values().map(|e| e.refs).sum(),
            logical_bytes: self.logical_bytes,
            unique_bytes: self.unique_bytes,
            dedup_ratio: self.dedup_ratio(),
        }
    }
}

/// Identity of one stored object in the dedup index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObjectKey {
    /// Owning tenant.
    pub tenant: String,
    /// Bucket within the tenant.
    pub bucket: String,
    /// Path within the bucket.
    pub path: String,
}

impl ObjectKey {
    /// Builds a key from its three components.
    pub fn new(
        tenant: impl Into<String>,
        bucket: impl Into<String>,
        path: impl Into<String>,
    ) -> Self {
        ObjectKey {
            tenant: tenant.into(),
            bucket: bucket.into(),
            path: path.into(),
        }
    }
}

impl core::fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}/{}", self.tenant, self.bucket, self.path)
    }
}

/// Outcome of a [`Cas::ingest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Digest the key now resolves to.
    pub digest: Digest,
    /// True when the payload was already stored.
    pub deduped: bool,
    /// Digest the key previously resolved to, if it was rebound.
    pub replaced: Option<Digest>,
}

/// A content-addressable store with a dedup-aware object index:
/// `(tenant, bucket, path) → Digest` over a refcounted [`BlobStore`].
#[derive(Clone, Debug, Default)]
pub struct Cas {
    store: BlobStore,
    index: BTreeMap<ObjectKey, Digest>,
}

impl Cas {
    /// An empty store.
    pub fn new() -> Self {
        Cas::default()
    }

    /// Stores `data` under `key`, deduplicating against every blob
    /// already stored (any tenant, any bucket). Rebinding a key unlinks
    /// its previous blob.
    pub fn ingest(&mut self, key: ObjectKey, data: Bytes, plane: &DataPlane) -> IngestOutcome {
        let put = self.store.put(data, plane);
        let replaced = self.index.insert(key, put.digest);
        if let Some(old) = replaced {
            // The key held a reference to its old blob; release it.
            // The unlink cannot fail: the index only holds digests the
            // store contains.
            let _ = self.store.unlink(&old);
        }
        IngestOutcome {
            digest: put.digest,
            deduped: put.deduped,
            replaced,
        }
    }

    /// The digest a key resolves to.
    pub fn resolve(&self, key: &ObjectKey) -> Result<Digest, CasError> {
        self.index
            .get(key)
            .copied()
            .ok_or_else(|| CasError::UnknownObject(key.to_string()))
    }

    /// The payload a key resolves to.
    pub fn read(&self, key: &ObjectKey) -> Result<&Bytes, CasError> {
        let digest = self.index.get(key).copied();
        match digest {
            Some(d) => self.store.get(&d),
            None => Err(CasError::UnknownObject(key.to_string())),
        }
    }

    /// Removes a binding, unlinking its blob. Returns the old digest.
    pub fn remove(&mut self, key: &ObjectKey) -> Result<Digest, CasError> {
        let digest = self
            .index
            .remove(key)
            .ok_or_else(|| CasError::UnknownObject(key.to_string()))?;
        let _ = self.store.unlink(&digest);
        Ok(digest)
    }

    /// Number of bound objects.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    /// The underlying blob store (accounting, verification).
    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    /// Bound keys and digests in key order.
    pub fn objects(&self) -> impl Iterator<Item = (&ObjectKey, &Digest)> {
        self.index.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> DataPlane {
        DataPlane::single()
    }

    #[test]
    fn put_links_and_unlinks_maintain_accounting() {
        let mut s = BlobStore::new();
        let a = s.put(Bytes::from_static(b"payload-a"), &plane());
        assert!(!a.deduped);
        let a2 = s.put(Bytes::from_static(b"payload-a"), &plane());
        assert!(a2.deduped);
        assert_eq!(a.digest, a2.digest);
        assert_eq!(s.refs(&a.digest), Some(2));
        assert_eq!(s.logical_bytes(), 18);
        assert_eq!(s.unique_bytes(), 9);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);

        assert_eq!(s.unlink(&a.digest), Ok(1));
        assert!(s.contains(&a.digest));
        assert_eq!(s.unlink(&a.digest), Ok(0));
        assert!(!s.contains(&a.digest));
        assert_eq!(s.logical_bytes(), 0);
        assert_eq!(s.unique_bytes(), 0);
        assert_eq!(
            s.unlink(&a.digest),
            Err(CasError::UnknownDigest(a.digest)),
            "unlinking a dead digest is a typed error, not a double-free"
        );
    }

    #[test]
    fn link_requires_a_live_blob() {
        let mut s = BlobStore::new();
        let ghost = Digest::of(b"never stored");
        assert_eq!(s.link(&ghost), Err(CasError::UnknownDigest(ghost)));
        let out = s.put(Bytes::from_static(b"x"), &plane());
        assert_eq!(s.link(&out.digest), Ok(2));
    }

    #[test]
    fn verify_catches_mismatches() {
        let mut s = BlobStore::new();
        let out = s.put(Bytes::from_static(b"good bytes"), &plane());
        assert!(s.verify(&out.digest, &plane()).is_ok());
        let wrong = Digest::of(b"other bytes");
        assert!(matches!(
            verify_payload(&wrong, b"good bytes", &plane()),
            Err(CasError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn index_rebind_and_remove_release_references() {
        let mut cas = Cas::new();
        let k1 = ObjectKey::new("t1", "b", "/a");
        let k2 = ObjectKey::new("t2", "b", "/a");
        let first = cas.ingest(k1.clone(), Bytes::from_static(b"shared"), &plane());
        let second = cas.ingest(k2.clone(), Bytes::from_static(b"shared"), &plane());
        assert!(!first.deduped);
        assert!(second.deduped);
        assert_eq!(cas.store().blob_count(), 1);
        assert_eq!(cas.store().refs(&first.digest), Some(2));

        // Rebind k2 to new content: old blob keeps one reference.
        let third = cas.ingest(k2.clone(), Bytes::from_static(b"fresh"), &plane());
        assert_eq!(third.replaced, Some(first.digest));
        assert_eq!(cas.store().refs(&first.digest), Some(1));
        assert_eq!(cas.store().blob_count(), 2);

        assert_eq!(cas.remove(&k1), Ok(first.digest));
        assert!(!cas.store().contains(&first.digest));
        assert!(matches!(cas.remove(&k1), Err(CasError::UnknownObject(_))));
        assert_eq!(cas.read(&k2).map(|b| b.as_ref()), Ok(&b"fresh"[..]));
        assert!(cas.resolve(&k1).is_err());
    }
}
