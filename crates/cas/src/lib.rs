//! `ros-cas` — the content-addressable dedup store under OLFS.
//!
//! The paper's TCO argument (§2.1) prices optical media per *logical*
//! byte; at fleet scale the cheapest byte is the one never burned twice.
//! This crate provides the digest-addressed blob layer that makes that
//! concrete and deterministic:
//!
//! - [`digest`]: an in-crate, std-only SHA-256 (FIPS 180-4 test
//!   vectors) and the chunked [`content_digest`] scheme that fans out
//!   over the [`ros_disk::plane::DataPlane`] while staying
//!   byte-identical at any thread count;
//! - [`blob`]: the refcounted [`BlobStore`] (put/get/link/unlink with
//!   strict refcount invariants and typed [`CasError`]s), the
//!   `(tenant, bucket, path) → Digest` index [`Cas`], and the single
//!   [`verify_payload`] entry point every integrity check routes
//!   through.
//!
//! The OLFS engine consumes this crate for write-path dedup (duplicate
//! payloads share one blob, one bucket residency and one burn), image
//! payload integrity (DIM digests), the cluster re-replication drill's
//! survivor verification, and the chaos soak's acked-write sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod digest;

pub use blob::{
    verify_payload, BlobStore, Cas, CasError, IngestOutcome, ObjectKey, PutOutcome, StoreStats,
};
pub use digest::{content_digest, sha256, Digest, CHUNK_BYTES};
