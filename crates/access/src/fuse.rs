//! FUSE kernel-user switching model.
//!
//! §4.8: "the FUSE framework is a user-space file system implementation...
//! However, FUSE introduces substantial kernel-user mode switching
//! overhead... By default, FUSE flushes 4KB data from the user space to
//! the kernel space each time, resulting in frequent kernel-user mode
//! switches and significant overheads. OLFS sets the mount option
//! big_writes to flush 128 KB data each time."
//!
//! The model: every flush of `flush_bytes` pays a fixed switch cost on
//! top of its transfer time, so streaming throughput is
//! `1 / (1/B + c/flush_bytes)` — calibrated so 128 KB flushes reproduce
//! the measured factors of §5.3.

use crate::params;
use ros_sim::Bandwidth;

/// Per-flush overhead of the FUSE write path, in seconds. Calibrated so
/// a 128 KB `big_writes` flush over the 1.0 GB/s ext4 baseline yields
/// the measured 0.482 write factor.
pub fn write_flush_overhead_secs(baseline: Bandwidth) -> f64 {
    // t_total = t_base / factor  =>  overhead = t_base (1/f - 1).
    let t_base = params::FUSE_BIG_WRITES_BYTES as f64 / baseline.bytes_per_sec();
    t_base * (1.0 / params::FUSE_WRITE_FACTOR - 1.0)
}

/// Per-flush overhead of the FUSE read path, in seconds (reads use
/// 128 KB transfers as well; calibrated to the 0.759 read factor).
pub fn read_flush_overhead_secs(baseline: Bandwidth) -> f64 {
    let t_base = params::FUSE_BIG_WRITES_BYTES as f64 / baseline.bytes_per_sec();
    t_base * (1.0 / params::FUSE_READ_FACTOR - 1.0)
}

/// Streaming write throughput through FUSE with a given flush size.
pub fn write_throughput(baseline: Bandwidth, flush_bytes: u64) -> Bandwidth {
    let overhead = write_flush_overhead_secs(baseline);
    let t = flush_bytes as f64 / baseline.bytes_per_sec() + overhead;
    Bandwidth::from_bytes_per_sec(flush_bytes as f64 / t)
}

/// Streaming read throughput through FUSE with a given transfer size.
pub fn read_throughput(baseline: Bandwidth, flush_bytes: u64) -> Bandwidth {
    let overhead = read_flush_overhead_secs(baseline);
    let t = flush_bytes as f64 / baseline.bytes_per_sec() + overhead;
    Bandwidth::from_bytes_per_sec(flush_bytes as f64 / t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_w() -> Bandwidth {
        Bandwidth::from_mb_per_sec(1002.0)
    }

    fn baseline_r() -> Bandwidth {
        Bandwidth::from_mb_per_sec(1204.0)
    }

    #[test]
    fn big_writes_reproduces_measured_factor() {
        let bw = write_throughput(baseline_w(), params::FUSE_BIG_WRITES_BYTES);
        let factor = bw.bytes_per_sec() / baseline_w().bytes_per_sec();
        assert!((factor - params::FUSE_WRITE_FACTOR).abs() < 1e-9);
        let br = read_throughput(baseline_r(), params::FUSE_BIG_WRITES_BYTES);
        let factor = br.bytes_per_sec() / baseline_r().bytes_per_sec();
        assert!((factor - params::FUSE_READ_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn default_4k_flushes_are_catastrophic() {
        // §4.8's motivation for big_writes: 32x more switches.
        let big = write_throughput(baseline_w(), params::FUSE_BIG_WRITES_BYTES);
        let small = write_throughput(baseline_w(), params::FUSE_DEFAULT_FLUSH_BYTES);
        let ratio = big.bytes_per_sec() / small.bytes_per_sec();
        assert!(
            ratio > 10.0,
            "big_writes must be an order of magnitude faster (ratio {ratio:.1})"
        );
    }

    #[test]
    fn overheads_are_positive_microseconds() {
        let w = write_flush_overhead_secs(baseline_w());
        assert!(w > 50e-6 && w < 500e-6, "write overhead = {w}");
        let r = read_flush_overhead_secs(baseline_r());
        assert!(r > 10e-6 && r < 200e-6, "read overhead = {r}");
    }
}
