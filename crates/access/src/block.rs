//! Block-level (iSCSI-style) interface over OLFS.
//!
//! §4.2: "OLFS can also provide a block-level interface via the iSCSI
//! protocol." A [`BlockLun`] exposes a fixed-size logical unit of
//! 512-byte blocks, chunked onto OLFS files (one file per 256 KiB
//! extent under `/.luns/<name>/`). Writes rewrite whole extents —
//! OLFS's regenerating update gives every extent a version history, so
//! even a block device gets provenance for free.

use bytes::Bytes;
use ros_olfs::{OlfsError, Ros, UdfPath};

/// Logical block size exposed to the initiator.
pub const BLOCK_BYTES: u64 = 512;

/// Bytes per backing extent file.
pub const EXTENT_BYTES: u64 = 256 * 1024;

/// Root of the LUN subtree in the global namespace.
pub const LUN_ROOT: &str = "/.luns";

/// A fixed-size logical unit backed by OLFS files.
pub struct BlockLun {
    ros: Ros,
    name: String,
    blocks: u64,
}

impl BlockLun {
    /// Creates (or reopens) a LUN of `blocks` 512-byte blocks.
    pub fn new(ros: Ros, name: &str, blocks: u64) -> Result<Self, OlfsError> {
        if name.is_empty() || name.contains('/') {
            return Err(OlfsError::Invalid(format!("bad LUN name {name:?}")));
        }
        let mut lun = BlockLun {
            ros,
            name: name.to_string(),
            blocks,
        };
        lun.ros.mkdir(&lun.dir())?;
        Ok(lun)
    }

    fn dir(&self) -> UdfPath {
        format!("{LUN_ROOT}/{}", self.name)
            .parse()
            // ros-analysis: allow(L2, LUN names are validated path-safe at creation)
            .expect("lun dir")
    }

    fn extent_path(&self, extent: u64) -> UdfPath {
        self.dir().join(&format!("extent-{extent:08}"))
    }

    /// Capacity in blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    /// Access to the underlying engine.
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Unwraps the engine.
    pub fn into_ros(self) -> Ros {
        self.ros
    }

    fn check_range(&self, lba: u64, count: u64) -> Result<(), OlfsError> {
        if lba.saturating_add(count) > self.blocks {
            return Err(OlfsError::Invalid(format!(
                "LBA range {lba}+{count} beyond {} blocks",
                self.blocks
            )));
        }
        Ok(())
    }

    /// Reads `count` blocks starting at `lba` (SCSI READ).
    pub fn read_blocks(&mut self, lba: u64, count: u64) -> Result<Bytes, OlfsError> {
        self.check_range(lba, count)?;
        let start = lba * BLOCK_BYTES;
        let end = (lba + count) * BLOCK_BYTES;
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut pos = start;
        while pos < end {
            let extent = pos / EXTENT_BYTES;
            let within = pos % EXTENT_BYTES;
            let take = (EXTENT_BYTES - within).min(end - pos);
            match self.ros.read_range(&self.extent_path(extent), within, take) {
                Ok(r) => {
                    out.extend_from_slice(&r.data);
                    // Unwritten tail of a short extent reads as zeros.
                    out.resize(out.len() + (take as usize - r.data.len()), 0);
                }
                Err(OlfsError::NotFound(_)) => {
                    // Never-written extent: zeros (thin provisioning).
                    out.resize(out.len() + take as usize, 0);
                }
                Err(e) => return Err(e),
            }
            pos += take;
        }
        Ok(Bytes::from(out))
    }

    /// Writes `data` starting at `lba` (SCSI WRITE). `data` must be a
    /// whole number of blocks.
    pub fn write_blocks(&mut self, lba: u64, data: &[u8]) -> Result<(), OlfsError> {
        if !(data.len() as u64).is_multiple_of(BLOCK_BYTES) {
            return Err(OlfsError::Invalid(format!(
                "write of {} bytes is not block-aligned",
                data.len()
            )));
        }
        let count = data.len() as u64 / BLOCK_BYTES;
        self.check_range(lba, count)?;
        let start = lba * BLOCK_BYTES;
        let end = start + data.len() as u64;
        let mut pos = start;
        while pos < end {
            let extent = pos / EXTENT_BYTES;
            let within = pos % EXTENT_BYTES;
            let take = (EXTENT_BYTES - within).min(end - pos);
            let path = self.extent_path(extent);
            // Read-modify-write the extent (whole-extent regenerating
            // update keeps WORM semantics downstream).
            let mut buf = match self.ros.read_file(&path) {
                Ok(r) => r.data.to_vec(),
                Err(OlfsError::NotFound(_)) => Vec::new(),
                Err(e) => return Err(e),
            };
            let needed = (within + take) as usize;
            if buf.len() < needed {
                buf.resize(needed, 0);
            }
            let src = (pos - start) as usize;
            buf[within as usize..needed].copy_from_slice(&data[src..src + take as usize]);
            self.ros.write_file(&path, buf)?;
            pos += take;
        }
        Ok(())
    }

    /// SCSI READ CAPACITY: `(last LBA, block size)`.
    pub fn read_capacity(&self) -> (u64, u64) {
        (self.blocks.saturating_sub(1), BLOCK_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_olfs::RosConfig;

    fn lun(blocks: u64) -> BlockLun {
        BlockLun::new(Ros::new(RosConfig::tiny()), "lun0", blocks).unwrap()
    }

    #[test]
    fn thin_provisioned_reads_are_zero() {
        let mut l = lun(1024);
        let data = l.read_blocks(10, 4).unwrap();
        assert_eq!(data.len(), 2048);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip_within_one_extent() {
        let mut l = lun(1024);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        l.write_blocks(5, &payload).unwrap();
        let back = l.read_blocks(5, 2).unwrap();
        assert_eq!(back.as_ref(), payload.as_slice());
        // Neighbouring blocks untouched.
        assert!(l.read_blocks(7, 1).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn writes_spanning_extents() {
        let mut l = lun(4096);
        // Extent boundary at block 512 (256 KiB / 512 B).
        let lba = 510;
        let payload: Vec<u8> = (0..4 * 512u32).map(|i| (i / 7 % 256) as u8).collect();
        l.write_blocks(lba, &payload).unwrap();
        let back = l.read_blocks(lba, 4).unwrap();
        assert_eq!(back.as_ref(), payload.as_slice());
    }

    #[test]
    fn overwrite_updates_in_place_logically() {
        let mut l = lun(1024);
        l.write_blocks(0, &[0xAAu8; 512]).unwrap();
        l.write_blocks(0, &[0xBBu8; 512]).unwrap();
        let back = l.read_blocks(0, 1).unwrap();
        assert!(back.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn bounds_and_alignment_are_enforced() {
        let mut l = lun(100);
        assert!(l.read_blocks(99, 2).is_err());
        assert!(l.write_blocks(0, &[0u8; 100]).is_err(), "unaligned");
        assert!(l.write_blocks(99, &[0u8; 1024]).is_err(), "past end");
        assert_eq!(l.read_capacity(), (99, 512));
        assert_eq!(l.capacity_bytes(), 100 * 512);
        assert!(BlockLun::new(Ros::new(RosConfig::tiny()), "a/b", 10).is_err());
    }

    #[test]
    fn lun_data_survives_burning() {
        let mut l = lun(2048);
        let payload: Vec<u8> = (0..8 * 512u32).map(|i| (i % 253) as u8).collect();
        l.write_blocks(100, &payload).unwrap();
        l.ros_mut().flush().unwrap();
        l.ros_mut().evict_burned_copies();
        l.ros_mut().unload_all_bays().unwrap();
        let back = l.read_blocks(100, 8).unwrap();
        assert_eq!(back.as_ref(), payload.as_slice());
    }
}
