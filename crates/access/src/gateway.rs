//! The NAS gateway: clients' view of ROS over a chosen access stack.
//!
//! Wraps a [`ros_olfs::Ros`] engine behind an [`AccessStack`], wrapping
//! every operation's trace with the stack's extra work (Samba stats, SMB
//! overheads) and exposing streaming throughput. Also implements the
//! §4.8 *direct-writing mode*: "incoming files are directly transferred
//! to the SSD tier at full external bandwidth through CIFS or NFS, then
//! asynchronously delivered into OLFS".

use crate::params;
use crate::samba;
use crate::stack::{AccessStack, StackThroughput};
use bytes::Bytes;
use ros_olfs::engine::{ReadReport, WriteReport};
use ros_olfs::{OlfsError, Ros, UdfPath};
use ros_sim::{Bandwidth, SimDuration};
use std::collections::VecDeque;

/// A pending direct-mode file awaiting asynchronous delivery into OLFS.
#[derive(Clone, Debug)]
struct PendingDirect {
    path: UdfPath,
    data: Bytes,
}

/// The client-facing gateway.
pub struct NasGateway {
    ros: Ros,
    stack: AccessStack,
    link: params::NetworkLink,
    /// Files accepted in direct-writing mode, not yet in OLFS.
    direct_queue: VecDeque<PendingDirect>,
}

impl NasGateway {
    /// Wraps an engine behind a stack on the default 10GbE link.
    pub fn new(ros: Ros, stack: AccessStack) -> Self {
        Self::with_link(ros, stack, params::NetworkLink::TenGbE)
    }

    /// Wraps an engine behind a stack on a specific client link (§3.3
    /// also supports InfiniBand and Fibre Channel).
    pub fn with_link(ros: Ros, stack: AccessStack, link: params::NetworkLink) -> Self {
        NasGateway {
            ros,
            stack,
            link,
            direct_queue: VecDeque::new(),
        }
    }

    /// The client link.
    pub fn link(&self) -> params::NetworkLink {
        self.link
    }

    /// The active stack.
    pub fn stack(&self) -> AccessStack {
        self.stack
    }

    /// Access to the wrapped engine.
    pub fn ros(&self) -> &Ros {
        &self.ros
    }

    /// Mutable access to the wrapped engine (maintenance, time control).
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Unwraps the engine.
    pub fn into_ros(self) -> Ros {
        self.ros
    }

    /// Streaming throughput of this deployment over the engine's actual
    /// buffer-volume baseline (Figure 6 regenerated live).
    pub fn throughput(&self) -> StackThroughput {
        let (r, w) = self.baseline();
        self.stack.throughput(r, w)
    }

    fn baseline(&self) -> (Bandwidth, Bandwidth) {
        // The ext4 baseline is one RAID-5 buffer volume (§5.3).
        (
            Bandwidth::from_mb_per_sec(1204.0),
            Bandwidth::from_mb_per_sec(1002.0),
        )
    }

    /// Writes a file through the stack.
    pub fn write_file(
        &mut self,
        path: &UdfPath,
        data: impl Into<Bytes>,
    ) -> Result<WriteReport, OlfsError> {
        let data = data.into();
        let mut report = self.ros.write_file(path, data)?;
        if self.stack.is_nas() {
            let wrapped = samba::wrap_write_trace(&report.trace);
            // Charge the extra Samba time on the simulation clock too.
            let extra = wrapped.total().saturating_sub(report.trace.total());
            self.ros.run_for(extra);
            report.latency = wrapped.total();
            report.trace = wrapped;
        }
        Ok(report)
    }

    /// Reads a file through the stack.
    pub fn read_file(&mut self, path: &UdfPath) -> Result<ReadReport, OlfsError> {
        let mut report = self.ros.read_file(path)?;
        if self.stack.is_nas() {
            let wrapped = samba::wrap_read_trace(&report.trace);
            let extra = wrapped.total().saturating_sub(report.trace.total());
            self.ros.run_for(extra);
            let forepart_answered = report.first_byte_latency < report.latency;
            report.latency = wrapped.total();
            if !forepart_answered {
                report.first_byte_latency = report.latency;
            }
            report.trace = wrapped;
        }
        Ok(report)
    }

    /// Accepts a file in direct-writing mode (§4.8): the transfer runs at
    /// full external bandwidth into the SSD tier and OLFS ingestion
    /// happens later via [`NasGateway::drain_direct`]. Returns the
    /// client-observed latency.
    pub fn write_direct(
        &mut self,
        path: &UdfPath,
        data: impl Into<Bytes>,
    ) -> Result<SimDuration, OlfsError> {
        let data = data.into();
        let rate = self.link.bandwidth();
        let latency = rate.time_for(data.len() as u64) + SimDuration::from_micros(500);
        self.ros.run_for(latency);
        self.direct_queue.push_back(PendingDirect {
            path: path.clone(),
            data,
        });
        Ok(latency)
    }

    /// Number of direct-mode files awaiting ingestion.
    pub fn direct_backlog(&self) -> usize {
        self.direct_queue.len()
    }

    /// Asynchronously delivers queued direct-mode files into OLFS.
    /// Returns how many were ingested.
    pub fn drain_direct(&mut self) -> Result<usize, OlfsError> {
        let mut n = 0;
        while let Some(pending) = self.direct_queue.pop_front() {
            self.ros.write_file(&pending.path, pending.data)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_olfs::RosConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn gateway(stack: AccessStack) -> NasGateway {
        NasGateway::new(Ros::new(RosConfig::tiny()), stack)
    }

    #[test]
    fn samba_olfs_write_latency_is_53ms() {
        let mut g = gateway(AccessStack::SambaOlfs);
        let w = g.write_file(&p("/f"), vec![0u8; 1024]).unwrap();
        let ms = w.latency.as_millis_f64();
        assert!((ms - 53.0).abs() < 3.0, "samba write = {ms} ms (paper: 53)");
    }

    #[test]
    fn samba_olfs_read_latency_is_15ms() {
        let mut g = gateway(AccessStack::SambaOlfs);
        g.write_file(&p("/f"), vec![0u8; 1024]).unwrap();
        let r = g.read_file(&p("/f")).unwrap();
        let ms = r.latency.as_millis_f64();
        assert!((ms - 15.0).abs() < 2.0, "samba read = {ms} ms (paper: 15)");
        assert_eq!(r.data.len(), 1024);
    }

    #[test]
    fn local_stack_adds_nothing() {
        let mut g = gateway(AccessStack::Ext4Olfs);
        let w = g.write_file(&p("/f"), vec![0u8; 1024]).unwrap();
        let ms = w.latency.as_millis_f64();
        assert!((ms - 16.0).abs() < 2.0, "local write = {ms} ms (paper: 16)");
    }

    #[test]
    fn throughput_matches_stack_model() {
        let g = gateway(AccessStack::SambaOlfs);
        let t = g.throughput();
        assert!((t.read.mb_per_sec() - 236.1).abs() < 8.0);
        assert!((t.write.mb_per_sec() - 323.6).abs() < 8.0);
    }

    #[test]
    fn direct_mode_is_network_speed_then_async() {
        let mut g = gateway(AccessStack::SambaOlfs);
        let bytes = 1_250_000u64; // 1 ms at 10GbE.
        let lat = g
            .write_direct(&p("/direct/f"), vec![1u8; bytes as usize])
            .unwrap();
        assert!(lat < SimDuration::from_millis(3), "direct latency = {lat}");
        assert_eq!(g.direct_backlog(), 1);
        // Not yet visible in OLFS.
        assert!(g.ros_mut().read_file(&p("/direct/f")).is_err());
        assert_eq!(g.drain_direct().unwrap(), 1);
        assert_eq!(g.direct_backlog(), 0);
        let r = g.read_file(&p("/direct/f")).unwrap();
        assert_eq!(r.data.len(), bytes as usize);
    }

    #[test]
    fn gateway_advances_engine_clock_for_smb_time() {
        let mut g = gateway(AccessStack::SambaOlfs);
        let t0 = g.ros().now();
        g.write_file(&p("/f"), vec![0u8; 64]).unwrap();
        let elapsed = g.ros().now().duration_since(t0);
        assert!(elapsed >= SimDuration::from_millis(50));
    }
}
