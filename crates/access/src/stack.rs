//! The five measured access-path configurations of Figure 6.

use crate::params;
use ros_sim::Bandwidth;
use serde::{Deserialize, Serialize};

/// One of the evaluated software stacks (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessStack {
    /// ext4 directly on the RAID-5 volume — the baseline.
    Ext4,
    /// An empty FUSE passthrough on ext4.
    Ext4Fuse,
    /// OLFS (via FUSE) on ext4.
    Ext4Olfs,
    /// Samba exporting ext4.
    Samba,
    /// Samba exporting the empty FUSE passthrough.
    SambaFuse,
    /// Samba exporting OLFS — the paper's recommended NAS deployment.
    SambaOlfs,
}

/// A stack's streaming throughput for both directions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StackThroughput {
    /// Sequential read throughput.
    pub read: Bandwidth,
    /// Sequential write throughput.
    pub write: Bandwidth,
}

impl AccessStack {
    /// All configurations in Figure 6's order (baseline first).
    pub fn all() -> [AccessStack; 6] {
        [
            AccessStack::Ext4,
            AccessStack::Ext4Fuse,
            AccessStack::Ext4Olfs,
            AccessStack::Samba,
            AccessStack::SambaFuse,
            AccessStack::SambaOlfs,
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            AccessStack::Ext4 => "ext4",
            AccessStack::Ext4Fuse => "ext4+FUSE",
            AccessStack::Ext4Olfs => "ext4+OLFS",
            AccessStack::Samba => "samba",
            AccessStack::SambaFuse => "samba+FUSE",
            AccessStack::SambaOlfs => "samba+OLFS",
        }
    }

    /// Whether clients reach this stack over the network (NAS mode).
    pub fn is_nas(self) -> bool {
        matches!(
            self,
            AccessStack::Samba | AccessStack::SambaFuse | AccessStack::SambaOlfs
        )
    }

    /// The stack's throughput factors relative to the ext4 baseline
    /// `(read, write)`.
    pub fn factors(self) -> (f64, f64) {
        match self {
            AccessStack::Ext4 => (1.0, 1.0),
            AccessStack::Ext4Fuse => (params::FUSE_READ_FACTOR, params::FUSE_WRITE_FACTOR),
            AccessStack::Ext4Olfs => (
                params::FUSE_READ_FACTOR * params::OLFS_READ_FACTOR,
                params::FUSE_WRITE_FACTOR * params::OLFS_WRITE_FACTOR,
            ),
            AccessStack::Samba => (params::SAMBA_READ_FACTOR, params::SAMBA_WRITE_FACTOR),
            AccessStack::SambaFuse => (
                params::SAMBA_READ_FACTOR * params::FUSE_UNDER_SAMBA_READ,
                params::SAMBA_WRITE_FACTOR * params::FUSE_UNDER_SAMBA_WRITE,
            ),
            AccessStack::SambaOlfs => (
                params::SAMBA_READ_FACTOR
                    * params::FUSE_UNDER_SAMBA_READ
                    * params::OLFS_UNDER_SAMBA_READ,
                params::SAMBA_WRITE_FACTOR
                    * params::FUSE_UNDER_SAMBA_WRITE
                    * params::OLFS_UNDER_SAMBA_WRITE,
            ),
        }
    }

    /// Streaming throughput over a given ext4 baseline, capped by the
    /// client network for NAS stacks.
    pub fn throughput(
        self,
        baseline_read: Bandwidth,
        baseline_write: Bandwidth,
    ) -> StackThroughput {
        let (fr, fw) = self.factors();
        let mut read = baseline_read.scale(fr);
        let mut write = baseline_write.scale(fw);
        if self.is_nas() {
            let net = params::network_10gbe();
            read = read.min(net);
            write = write.min(net);
        }
        StackThroughput { read, write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> (Bandwidth, Bandwidth) {
        // The prototype's ext4-on-RAID-5 baseline (§5.3).
        (
            Bandwidth::from_mb_per_sec(1204.0),
            Bandwidth::from_mb_per_sec(1002.0),
        )
    }

    #[test]
    fn figure6_samba_olfs_hits_measured_throughput() {
        let (r, w) = baseline();
        let t = AccessStack::SambaOlfs.throughput(r, w);
        // §5.3: "OLFS can provide throughput of 236.1 MB/s for read and
        // 323.6 MB/s for write".
        assert!(
            (t.read.mb_per_sec() - 236.1).abs() < 8.0,
            "samba+OLFS read = {} (paper: 236.1 MB/s)",
            t.read
        );
        assert!(
            (t.write.mb_per_sec() - 323.6).abs() < 8.0,
            "samba+OLFS write = {} (paper: 323.6 MB/s)",
            t.write
        );
    }

    #[test]
    fn figure6_normalized_factors() {
        let cases = [
            (AccessStack::Ext4Fuse, 0.759, 0.482),
            (AccessStack::Ext4Olfs, 0.540, 0.433),
            (AccessStack::Samba, 0.311, 0.320),
        ];
        for (stack, read, write) in cases {
            let (fr, fw) = stack.factors();
            assert!(
                (fr - read).abs() < 0.01,
                "{}: read {fr} vs {read}",
                stack.name()
            );
            assert!(
                (fw - write).abs() < 0.01,
                "{}: write {fw} vs {write}",
                stack.name()
            );
        }
    }

    #[test]
    fn figure6_ordering_holds() {
        // Read bars descend: ext4 > FUSE > OLFS > samba > samba+FUSE >
        // samba+OLFS (Figure 6's left cluster).
        let reads: Vec<f64> = AccessStack::all().iter().map(|s| s.factors().0).collect();
        for pair in reads.windows(2) {
            assert!(
                pair[0] > pair[1],
                "read factors must strictly descend: {reads:?}"
            );
        }
        // Writes: samba+OLFS ≈ samba (network-bound), both far below
        // ext4+FUSE.
        let (_, w_samba) = AccessStack::Samba.factors();
        let (_, w_so) = AccessStack::SambaOlfs.factors();
        assert!((w_samba - w_so).abs() < 0.02);
    }

    #[test]
    fn nas_stacks_are_network_capped() {
        let big = Bandwidth::from_gb_per_sec(100.0);
        let t = AccessStack::Samba.throughput(big, big);
        assert!(t.read <= params::network_10gbe());
        let local = AccessStack::Ext4.throughput(big, big);
        assert_eq!(local.read, big);
    }

    #[test]
    fn names_and_membership() {
        assert_eq!(AccessStack::SambaOlfs.name(), "samba+OLFS");
        assert!(AccessStack::SambaFuse.is_nas());
        assert!(!AccessStack::Ext4Olfs.is_nas());
        assert_eq!(AccessStack::all().len(), 6);
    }
}
