//! Access-path stack models: how clients reach OLFS.
//!
//! §4.8/§5.3: the prototype exports OLFS through FUSE, optionally behind
//! Samba in the NAS deployment the paper recommends. Each layer costs
//! throughput (kernel-user switches, SMB round trips) and latency (extra
//! stat operations per request). This crate models the five measured
//! configurations of Figure 6 —
//!
//! | configuration | read (vs ext4) | write (vs ext4) |
//! |---------------|----------------|-----------------|
//! | ext4 (baseline RAID-5) | 1.000 | 1.000 |
//! | ext4+FUSE     | 0.759 | 0.482 |
//! | ext4+OLFS     | 0.540 | 0.433 |
//! | samba         | 0.311 | 0.320 |
//! | samba+FUSE    | ~0.24 | ~0.31 |
//! | samba+OLFS    | 0.196 | 0.323 |
//!
//! — plus the per-operation latency compositions of Figure 7 (OLFS write
//! 16 ms / read 9 ms; samba+OLFS write 53 ms / read 15 ms), the
//! direct-writing bypass mode of §4.8, and the §4.2 interface
//! extensions: a [`KvStore`], an S3-style [`ObjectStore`], a REST router
//! ([`RestApi`]) and an iSCSI-style block LUN ([`BlockLun`]), all mapped
//! onto the OLFS namespace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod fuse;
pub mod gateway;
pub mod kv;
pub mod object;
pub mod params;
pub mod rest;
pub mod samba;
pub mod stack;

pub use block::BlockLun;
pub use gateway::NasGateway;
pub use kv::KvStore;
pub use object::ObjectStore;
pub use rest::RestApi;
pub use stack::{AccessStack, StackThroughput};
