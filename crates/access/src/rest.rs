//! REST interface over the object store — the third §4.2 extension.
//!
//! A minimal HTTP-shaped request/response layer (no sockets; the
//! transport belongs to the deployment) routing S3-flavoured calls onto
//! [`crate::ObjectStore`]:
//!
//! ```text
//! PUT    /<bucket>/<key>      body        → 201
//! GET    /<bucket>/<key>                  → 200 + body
//! HEAD   /<bucket>/<key>                  → 200 + headers
//! DELETE /<bucket>/<key>                  → 204
//! GET    /<bucket>?prefix=<p>             → 200 + key list
//! PUT    /<bucket>                        → 201 (create bucket)
//! GET    /                                → 200 + bucket list
//! ```

use crate::object::ObjectStore;
use bytes::Bytes;
use ros_olfs::{OlfsError, Ros};
use std::collections::BTreeMap;

/// HTTP-ish method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Fetch an object, a bucket listing or the bucket index.
    Get,
    /// Store an object or create a bucket.
    Put,
    /// Fetch object metadata only.
    Head,
    /// Remove an object.
    Delete,
}

/// A request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path of the form `/`, `/<bucket>` or `/<bucket>/<key...>`.
    pub path: String,
    /// Optional `prefix` query for listings.
    pub prefix: Option<String>,
    /// Body for PUT.
    pub body: Bytes,
    /// `Content-Type` header for PUT.
    pub content_type: Option<String>,
    /// `x-meta-*` user metadata for PUT.
    pub user_meta: BTreeMap<String, String>,
}

impl Request {
    /// A GET request.
    pub fn get(path: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            path: path.into(),
            prefix: None,
            body: Bytes::new(),
            content_type: None,
            user_meta: BTreeMap::new(),
        }
    }

    /// A PUT request with a body.
    pub fn put(path: impl Into<String>, body: impl Into<Bytes>) -> Self {
        Request {
            method: Method::Put,
            path: path.into(),
            prefix: None,
            body: body.into(),
            content_type: None,
            user_meta: BTreeMap::new(),
        }
    }

    /// A HEAD request.
    pub fn head(path: impl Into<String>) -> Self {
        Request {
            method: Method::Head,
            ..Request::get(path)
        }
    }

    /// A DELETE request.
    pub fn delete(path: impl Into<String>) -> Self {
        Request {
            method: Method::Delete,
            ..Request::get(path)
        }
    }
}

/// A response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body (object bytes, or a newline-separated listing).
    pub body: Bytes,
    /// Selected headers.
    pub headers: BTreeMap<String, String>,
}

impl Response {
    fn status_only(status: u16) -> Self {
        Response {
            status,
            body: Bytes::new(),
            headers: BTreeMap::new(),
        }
    }
}

/// The REST front end.
pub struct RestApi {
    store: ObjectStore,
}

impl RestApi {
    /// Wraps an engine.
    pub fn new(ros: Ros) -> Self {
        RestApi {
            store: ObjectStore::new(ros),
        }
    }

    /// Access to the underlying object store.
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Splits `/<bucket>/<key...>` into components.
    fn split(path: &str) -> (Option<&str>, Option<&str>) {
        let trimmed = path.strip_prefix('/').unwrap_or(path);
        if trimmed.is_empty() {
            return (None, None);
        }
        match trimmed.split_once('/') {
            Some((bucket, key)) if !key.is_empty() => (Some(bucket), Some(key)),
            Some((bucket, _)) => (Some(bucket), None),
            None => (Some(trimmed), None),
        }
    }

    /// Routes one request.
    pub fn handle(&mut self, req: Request) -> Response {
        let (bucket, key) = Self::split(&req.path);
        let result = match (req.method, bucket, key) {
            (Method::Get, None, None) => self.list_buckets(),
            (Method::Put, Some(b), None) => self.create_bucket(b),
            (Method::Get, Some(b), None) => self.list_objects(b, req.prefix.as_deref()),
            (Method::Put, Some(b), Some(k)) => self.put_object(&req, b, k),
            (Method::Get, Some(b), Some(k)) => self.get_object(b, k),
            (Method::Head, Some(b), Some(k)) => self.head_object(b, k),
            (Method::Delete, Some(b), Some(k)) => self.delete_object(b, k),
            _ => return Response::status_only(405),
        };
        match result {
            Ok(resp) => resp,
            Err(OlfsError::NotFound(_)) => Response::status_only(404),
            Err(OlfsError::AlreadyExists(_)) => Response::status_only(409),
            Err(OlfsError::Invalid(_)) => Response::status_only(400),
            Err(_) => Response::status_only(500),
        }
    }

    fn list_buckets(&mut self) -> Result<Response, OlfsError> {
        let buckets = self.store.list_buckets()?;
        Ok(Response {
            status: 200,
            body: Bytes::from(buckets.join("\n")),
            headers: BTreeMap::new(),
        })
    }

    fn create_bucket(&mut self, bucket: &str) -> Result<Response, OlfsError> {
        self.store.create_bucket(bucket)?;
        Ok(Response::status_only(201))
    }

    fn list_objects(&mut self, bucket: &str, prefix: Option<&str>) -> Result<Response, OlfsError> {
        let keys = self.store.list_objects(bucket, prefix)?;
        Ok(Response {
            status: 200,
            body: Bytes::from(keys.join("\n")),
            headers: BTreeMap::new(),
        })
    }

    fn put_object(
        &mut self,
        req: &Request,
        bucket: &str,
        key: &str,
    ) -> Result<Response, OlfsError> {
        let meta = self.store.put_object(
            bucket,
            key,
            req.body.clone(),
            req.content_type.as_deref(),
            req.user_meta.clone(),
        )?;
        let mut headers = BTreeMap::new();
        headers.insert("x-version".into(), meta.version.to_string());
        Ok(Response {
            status: 201,
            body: Bytes::new(),
            headers,
        })
    }

    fn get_object(&mut self, bucket: &str, key: &str) -> Result<Response, OlfsError> {
        let obj = self.store.get_object(bucket, key)?;
        let mut headers = BTreeMap::new();
        headers.insert("content-length".into(), obj.meta.size.to_string());
        if let Some(ct) = &obj.meta.content_type {
            headers.insert("content-type".into(), ct.clone());
        }
        headers.insert(
            "x-latency-ms".into(),
            format!("{:.3}", obj.latency.as_millis_f64()),
        );
        Ok(Response {
            status: 200,
            body: obj.data,
            headers,
        })
    }

    fn head_object(&mut self, bucket: &str, key: &str) -> Result<Response, OlfsError> {
        let meta = self.store.head_object(bucket, key)?;
        let mut headers = BTreeMap::new();
        headers.insert("content-length".into(), meta.size.to_string());
        headers.insert("x-version".into(), meta.version.to_string());
        for (k, v) in &meta.user {
            headers.insert(format!("x-meta-{k}"), v.clone());
        }
        Ok(Response {
            status: 200,
            body: Bytes::new(),
            headers,
        })
    }

    fn delete_object(&mut self, bucket: &str, key: &str) -> Result<Response, OlfsError> {
        self.store.delete_object(bucket, key)?;
        Ok(Response::status_only(204))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_olfs::RosConfig;

    fn api() -> RestApi {
        RestApi::new(Ros::new(RosConfig::tiny()))
    }

    #[test]
    fn full_object_lifecycle_over_rest() {
        let mut api = api();
        assert_eq!(
            api.handle(Request::put("/archive", Bytes::new())).status,
            201
        );
        let mut put = Request::put("/archive/reports/q2.pdf", vec![7u8; 1000]);
        put.content_type = Some("application/pdf".into());
        put.user_meta.insert("owner".into(), "alice".into());
        let resp = api.handle(put);
        assert_eq!(resp.status, 201);
        assert_eq!(resp.headers["x-version"], "1");

        let head = api.handle(Request::head("/archive/reports/q2.pdf"));
        assert_eq!(head.status, 200);
        assert_eq!(head.headers["content-length"], "1000");
        assert_eq!(head.headers["x-meta-owner"], "alice");

        let get = api.handle(Request::get("/archive/reports/q2.pdf"));
        assert_eq!(get.status, 200);
        assert_eq!(get.body.len(), 1000);
        assert_eq!(get.headers["content-type"], "application/pdf");

        assert_eq!(
            api.handle(Request::delete("/archive/reports/q2.pdf"))
                .status,
            204
        );
        assert_eq!(
            api.handle(Request::get("/archive/reports/q2.pdf")).status,
            404
        );
    }

    #[test]
    fn listings_and_roots() {
        let mut api = api();
        api.handle(Request::put("/b1", Bytes::new()));
        api.handle(Request::put("/b2", Bytes::new()));
        api.handle(Request::put("/b1/logs/a", vec![1]));
        api.handle(Request::put("/b1/logs/b", vec![2]));
        api.handle(Request::put("/b1/data/c", vec![3]));
        let buckets = api.handle(Request::get("/"));
        assert_eq!(buckets.status, 200);
        assert_eq!(buckets.body.as_ref(), b"b1\nb2");
        let mut list = Request::get("/b1");
        list.prefix = Some("logs/".into());
        let resp = api.handle(list);
        assert_eq!(resp.body.as_ref(), b"logs/a\nlogs/b");
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let mut api = api();
        assert_eq!(api.handle(Request::get("/missing/key")).status, 404);
        assert_eq!(api.handle(Request::delete("/missing/key")).status, 404);
        // Unroutable: DELETE on the root.
        assert_eq!(api.handle(Request::delete("/")).status, 405);
    }

    #[test]
    fn overwrite_reports_new_version() {
        let mut api = api();
        api.handle(Request::put("/v", Bytes::new()));
        api.handle(Request::put("/v/k", vec![1]));
        api.store_mut().ros_mut().seal_open_buckets().unwrap();
        let resp = api.handle(Request::put("/v/k", vec![2]));
        assert_eq!(resp.headers["x-version"], "2");
    }
}
