//! Key-value interface over the OLFS namespace.
//!
//! §4.2: "This namespace mapping mechanism can also be extended to
//! support other mainstream access interfaces such as key-value,
//! objected storage, and REST." Keys become global file paths under a
//! dedicated subtree, spread across hash buckets so directory fan-out
//! stays bounded; values get OLFS's full pipeline — buckets, parity,
//! burning, versioning and recovery — for free.

use bytes::Bytes;
use ros_olfs::{OlfsError, Ros, UdfPath};
use ros_sim::SimDuration;

/// Root of the KV subtree in the global namespace.
pub const KV_ROOT: &str = "/.kv";

/// Number of hash buckets (directories) keys spread over.
const KV_BUCKETS: u64 = 256;

fn fnv(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Escapes a key into a single path component (percent-encoding
/// everything outside `[A-Za-z0-9_.-]`, and the dot-prefix that would
/// collide with internal names).
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, b) in key.bytes().enumerate() {
        let plain = b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || (b == b'.' && i > 0);
        if plain {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    if out.is_empty() {
        // The empty key gets a sentinel that normal keys cannot produce
        // ('~' is always percent-encoded above).
        out.push_str("~empty~");
    }
    out
}

fn key_path(key: &str) -> UdfPath {
    let bucket = fnv(key) % KV_BUCKETS;
    format!("{KV_ROOT}/{bucket:03}/{}", escape_key(key))
        .parse()
        // ros-analysis: allow(L2, escape_key yields only path-safe characters)
        .expect("escaped keys always parse")
}

/// Result of a KV operation with its simulated latency.
#[derive(Clone, Debug)]
pub struct KvResponse {
    /// The value (empty for put/delete).
    pub value: Bytes,
    /// Version of the value served/stored.
    pub version: u32,
    /// End-to-end simulated latency.
    pub latency: SimDuration,
}

/// A key-value store over a ROS engine.
pub struct KvStore {
    ros: Ros,
}

impl KvStore {
    /// Wraps an engine.
    pub fn new(ros: Ros) -> Self {
        KvStore { ros }
    }

    /// Access to the underlying engine.
    pub fn ros(&self) -> &Ros {
        &self.ros
    }

    /// Mutable access (time control, maintenance).
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Unwraps the engine.
    pub fn into_ros(self) -> Ros {
        self.ros
    }

    /// Stores a value; repeated puts create versions (§4.6 semantics).
    pub fn put(&mut self, key: &str, value: impl Into<Bytes>) -> Result<KvResponse, OlfsError> {
        let report = self.ros.write_file(&key_path(key), value)?;
        Ok(KvResponse {
            value: Bytes::new(),
            version: report.version,
            latency: report.latency,
        })
    }

    /// Fetches the newest value of a key.
    pub fn get(&mut self, key: &str) -> Result<KvResponse, OlfsError> {
        let report = self.ros.read_file(&key_path(key))?;
        Ok(KvResponse {
            value: report.data,
            version: report.version,
            latency: report.latency,
        })
    }

    /// Fetches a specific retained version of a key.
    pub fn get_version(&mut self, key: &str, version: u32) -> Result<KvResponse, OlfsError> {
        let report = self.ros.read_version(&key_path(key), version)?;
        Ok(KvResponse {
            value: report.data,
            version: report.version,
            latency: report.latency,
        })
    }

    /// Returns true if the key exists.
    pub fn contains(&mut self, key: &str) -> Result<bool, OlfsError> {
        match self.ros.stat(&key_path(key)) {
            Ok(_) => Ok(true),
            Err(OlfsError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Deletes a key from the view (media copies remain, §4.6).
    pub fn delete(&mut self, key: &str) -> Result<(), OlfsError> {
        self.ros.unlink(&key_path(key))
    }

    /// Lists every stored key (scans the hash buckets; keys come back
    /// unescaped, unordered across buckets).
    pub fn keys(&mut self) -> Result<Vec<String>, OlfsError> {
        // ros-analysis: allow(L2, KV_ROOT is a literal absolute path)
        let root: UdfPath = KV_ROOT.parse().expect("static");
        let mut out = Vec::new();
        let buckets = match self.ros.readdir(&root) {
            Ok(b) => b,
            Err(OlfsError::NotFound(_)) => return Ok(out),
            Err(e) => return Err(e),
        };
        for (bucket, is_dir) in buckets {
            if !is_dir {
                continue;
            }
            // ros-analysis: allow(L2, bucket names come from readdir of the literal KV_ROOT)
            let dir: UdfPath = format!("{KV_ROOT}/{bucket}").parse().expect("bucket path");
            for (name, is_dir) in self.ros.readdir(&dir)? {
                if !is_dir {
                    out.push(unescape_key(&name));
                }
            }
        }
        Ok(out)
    }
}

/// Reverses [`escape_key`].
pub fn unescape_key(escaped: &str) -> String {
    if escaped == "~empty~" {
        return String::new();
    }
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) {
                let hex = |c: u8| (c as char).to_digit(16).and_then(|d| u8::try_from(d).ok());
                if let (Some(h), Some(l)) = (hex(h), hex(l)) {
                    out.push(h * 16 + l);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_olfs::RosConfig;

    fn store() -> KvStore {
        KvStore::new(Ros::new(RosConfig::tiny()))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = store();
        kv.put("sensor/2026-07-06", b"42.1".to_vec()).unwrap();
        let got = kv.get("sensor/2026-07-06").unwrap();
        assert_eq!(got.value.as_ref(), b"42.1");
        assert_eq!(got.version, 1);
        assert!(got.latency < SimDuration::from_millis(20));
    }

    #[test]
    fn puts_create_versions() {
        let mut kv = store();
        kv.put("k", b"v1".to_vec()).unwrap();
        kv.ros_mut().seal_open_buckets().unwrap();
        let r = kv.put("k", b"v2".to_vec()).unwrap();
        assert_eq!(r.version, 2);
        assert_eq!(kv.get("k").unwrap().value.as_ref(), b"v2");
        assert_eq!(kv.get_version("k", 1).unwrap().value.as_ref(), b"v1");
    }

    #[test]
    fn contains_and_delete() {
        let mut kv = store();
        assert!(!kv.contains("ghost").unwrap());
        kv.put("ghost", b"boo".to_vec()).unwrap();
        assert!(kv.contains("ghost").unwrap());
        kv.delete("ghost").unwrap();
        assert!(!kv.contains("ghost").unwrap());
        assert!(kv.get("ghost").is_err());
    }

    #[test]
    fn weird_keys_are_safe() {
        let mut kv = store();
        let keys = [
            "with spaces and / slashes",
            "../../etc/passwd",
            "unicode-ключ-钥匙",
            ".leading.dot",
            "",
        ];
        for (i, key) in keys.iter().enumerate() {
            kv.put(key, vec![i as u8; 10]).unwrap();
        }
        for (i, key) in keys.iter().enumerate() {
            let got = kv.get(key).unwrap();
            assert_eq!(got.value.as_ref(), vec![i as u8; 10].as_slice(), "{key:?}");
        }
        let mut listed = kv.keys().unwrap();
        listed.sort();
        let mut expected: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        expected.sort();
        assert_eq!(listed, expected);
    }

    #[test]
    fn escape_is_reversible() {
        for key in [
            "a/b",
            "%41",
            "x y",
            "..",
            "ключ",
            "plain-key_1.txt",
            "",
            "~empty~",
        ] {
            assert_eq!(unescape_key(&escape_key(key)), key, "{key:?}");
        }
    }

    #[test]
    fn values_survive_burning() {
        let mut kv = store();
        for i in 0..20 {
            kv.put(&format!("archive/item-{i}"), vec![i as u8; 300_000])
                .unwrap();
        }
        kv.ros_mut().flush().unwrap();
        kv.ros_mut().evict_burned_copies();
        kv.ros_mut().unload_all_bays().unwrap();
        let got = kv.get("archive/item-7").unwrap();
        assert_eq!(got.value.as_ref(), vec![7u8; 300_000].as_slice());
        assert!(
            got.latency > SimDuration::from_secs(60),
            "cold get is mechanical"
        );
    }
}
