//! Object-storage interface over the OLFS namespace (§4.2's extension
//! point), in the S3 style: buckets, keyed objects, user metadata and
//! prefix listing.
//!
//! Objects live under `/.objects/<bucket>/<escaped-key>`; their metadata
//! rides in a JSON sidecar file next to the data, so a disc scan
//! recovers both (the sidecar is just another file under a unique path).

use crate::kv::{escape_key, unescape_key};
use bytes::Bytes;
use ros_olfs::{OlfsError, Ros, UdfPath};
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Root of the object-store subtree.
pub const OBJECT_ROOT: &str = "/.objects";

/// Object metadata (the head record).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// MIME type.
    pub content_type: Option<String>,
    /// Object size in bytes.
    pub size: u64,
    /// Store-assigned version.
    pub version: u32,
    /// Free-form user metadata.
    pub user: BTreeMap<String, String>,
}

/// A fetched object.
#[derive(Clone, Debug)]
pub struct Object {
    /// The payload.
    pub data: Bytes,
    /// Its metadata.
    pub meta: ObjectMeta,
    /// Simulated latency of the fetch.
    pub latency: SimDuration,
}

/// An S3-style object store over a ROS engine.
pub struct ObjectStore {
    ros: Ros,
}

fn bucket_dir(bucket: &str) -> UdfPath {
    format!("{OBJECT_ROOT}/{}", escape_key(bucket))
        .parse()
        // ros-analysis: allow(L2, escape_key yields only path-safe characters)
        .expect("escaped bucket parses")
}

fn data_path(bucket: &str, key: &str) -> UdfPath {
    bucket_dir(bucket).join(&escape_key(key))
}

fn meta_path(bucket: &str, key: &str) -> UdfPath {
    bucket_dir(bucket).join(&format!(".objmeta-{}", escape_key(key)))
}

impl ObjectStore {
    /// Wraps an engine.
    pub fn new(ros: Ros) -> Self {
        ObjectStore { ros }
    }

    /// Access to the underlying engine.
    pub fn ros(&self) -> &Ros {
        &self.ros
    }

    /// Mutable access (time control, maintenance).
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Creates a bucket (idempotent).
    pub fn create_bucket(&mut self, bucket: &str) -> Result<(), OlfsError> {
        self.ros.mkdir(&bucket_dir(bucket))
    }

    /// Lists buckets.
    pub fn list_buckets(&mut self) -> Result<Vec<String>, OlfsError> {
        // ros-analysis: allow(L2, OBJECT_ROOT is a literal absolute path)
        let root: UdfPath = OBJECT_ROOT.parse().expect("static");
        match self.ros.readdir(&root) {
            Ok(entries) => Ok(entries
                .into_iter()
                .filter(|(_, is_dir)| *is_dir)
                .map(|(name, _)| unescape_key(&name))
                .collect()),
            Err(OlfsError::NotFound(_)) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Stores an object with metadata. Overwrites create new versions.
    pub fn put_object(
        &mut self,
        bucket: &str,
        key: &str,
        data: impl Into<Bytes>,
        content_type: Option<&str>,
        user: BTreeMap<String, String>,
    ) -> Result<ObjectMeta, OlfsError> {
        let data = data.into();
        let report = self.ros.write_file(&data_path(bucket, key), data.clone())?;
        let meta = ObjectMeta {
            content_type: content_type.map(str::to_string),
            size: data.len() as u64,
            version: report.version,
            user,
        };
        // ros-analysis: allow(L2, serializing an owned struct of plain fields cannot fail)
        let body = serde_json::to_vec(&meta).expect("meta serializes");
        self.ros.write_file(&meta_path(bucket, key), body)?;
        Ok(meta)
    }

    /// Fetches an object and its metadata.
    pub fn get_object(&mut self, bucket: &str, key: &str) -> Result<Object, OlfsError> {
        let data = self.ros.read_file(&data_path(bucket, key))?;
        let meta = self.head_object(bucket, key)?;
        Ok(Object {
            latency: data.latency,
            data: data.data,
            meta,
        })
    }

    /// Fetches only the metadata.
    pub fn head_object(&mut self, bucket: &str, key: &str) -> Result<ObjectMeta, OlfsError> {
        let raw = self.ros.read_file(&meta_path(bucket, key))?;
        serde_json::from_slice(&raw.data)
            .map_err(|e| OlfsError::BadState(format!("corrupt object metadata: {e}")))
    }

    /// Removes an object from the view.
    pub fn delete_object(&mut self, bucket: &str, key: &str) -> Result<(), OlfsError> {
        self.ros.unlink(&data_path(bucket, key))?;
        let _ = self.ros.unlink(&meta_path(bucket, key));
        Ok(())
    }

    /// Lists object keys in a bucket, optionally filtered by prefix.
    pub fn list_objects(
        &mut self,
        bucket: &str,
        prefix: Option<&str>,
    ) -> Result<Vec<String>, OlfsError> {
        let entries = self.ros.readdir(&bucket_dir(bucket))?;
        let mut keys: Vec<String> = entries
            .into_iter()
            .filter(|(name, is_dir)| !is_dir && !name.starts_with(".objmeta-"))
            .map(|(name, _)| unescape_key(&name))
            .filter(|k| prefix.map(|p| k.starts_with(p)).unwrap_or(true))
            .collect();
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_olfs::RosConfig;

    fn store() -> ObjectStore {
        ObjectStore::new(Ros::new(RosConfig::tiny()))
    }

    fn meta(k: &str, v: &str) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert(k.to_string(), v.to_string());
        m
    }

    #[test]
    fn put_get_head_roundtrip() {
        let mut os = store();
        os.create_bucket("media").unwrap();
        let m = os
            .put_object(
                "media",
                "photos/cat.jpg",
                vec![0xFFu8; 5000],
                Some("image/jpeg"),
                meta("camera", "DSC-100"),
            )
            .unwrap();
        assert_eq!(m.size, 5000);
        assert_eq!(m.version, 1);
        let obj = os.get_object("media", "photos/cat.jpg").unwrap();
        assert_eq!(obj.data.len(), 5000);
        assert_eq!(obj.meta.content_type.as_deref(), Some("image/jpeg"));
        assert_eq!(obj.meta.user["camera"], "DSC-100");
        let head = os.head_object("media", "photos/cat.jpg").unwrap();
        assert_eq!(head, obj.meta);
    }

    #[test]
    fn listing_buckets_and_objects() {
        let mut os = store();
        assert!(os.list_buckets().unwrap().is_empty());
        os.create_bucket("a").unwrap();
        os.create_bucket("b bucket").unwrap();
        for key in ["logs/1", "logs/2", "img/x"] {
            os.put_object("a", key, b"x".to_vec(), None, BTreeMap::new())
                .unwrap();
        }
        let mut buckets = os.list_buckets().unwrap();
        buckets.sort();
        assert_eq!(buckets, vec!["a", "b bucket"]);
        assert_eq!(
            os.list_objects("a", None).unwrap(),
            vec!["img/x", "logs/1", "logs/2"]
        );
        assert_eq!(
            os.list_objects("a", Some("logs/")).unwrap(),
            vec!["logs/1", "logs/2"]
        );
        assert!(os.list_objects("a", Some("zzz")).unwrap().is_empty());
    }

    #[test]
    fn delete_removes_data_and_meta() {
        let mut os = store();
        os.create_bucket("t").unwrap();
        os.put_object("t", "k", b"v".to_vec(), None, BTreeMap::new())
            .unwrap();
        os.delete_object("t", "k").unwrap();
        assert!(os.get_object("t", "k").is_err());
        assert!(os.head_object("t", "k").is_err());
        assert!(os.list_objects("t", None).unwrap().is_empty());
    }

    #[test]
    fn overwrite_bumps_version() {
        let mut os = store();
        os.create_bucket("v").unwrap();
        os.put_object("v", "doc", b"one".to_vec(), None, BTreeMap::new())
            .unwrap();
        os.ros_mut().seal_open_buckets().unwrap();
        let m = os
            .put_object("v", "doc", b"two".to_vec(), None, BTreeMap::new())
            .unwrap();
        assert_eq!(m.version, 2);
        let obj = os.get_object("v", "doc").unwrap();
        assert_eq!(obj.data.as_ref(), b"two");
    }

    #[test]
    fn objects_survive_burning_and_disc_scan_recovery() {
        let mut os = store();
        os.create_bucket("cold").unwrap();
        for i in 0..15 {
            os.put_object(
                "cold",
                &format!("obj-{i}"),
                vec![i as u8; 250_000],
                Some("application/octet-stream"),
                meta("seq", &i.to_string()),
            )
            .unwrap();
        }
        os.ros_mut().flush().unwrap();
        // Full disaster: rebuild the namespace from the discs; both data
        // and sidecar metadata come back (unique file paths, §4.4).
        let report = os.ros_mut().rebuild_namespace_from_discs().unwrap();
        os.ros_mut().adopt_namespace(report.mv);
        let obj = os.get_object("cold", "obj-7").unwrap();
        assert_eq!(obj.data.as_ref(), vec![7u8; 250_000].as_slice());
        assert_eq!(obj.meta.user["seq"], "7");
    }
}
