//! Calibrated access-path constants with their paper citations.

use ros_sim::{Bandwidth, SimDuration};

/// Payload bandwidth of the client-facing 10GbE link (§3.3, §5.1).
pub fn network_10gbe() -> Bandwidth {
    Bandwidth::from_gbit_per_sec(10.0)
}

/// Client-facing network technologies the controller supports (§3.3:
/// "ROS also supports infiniband and Fibre channel (FC) networks that
/// are commonly used in storage area network (SAN) scenarios").
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NetworkLink {
    /// 10 Gb Ethernet (the NAS deployment of the prototype).
    TenGbE,
    /// Two bonded 10GbE NICs (§3.3: the SC has "two 10Gbps NICs",
    /// "providing more than 1GB/s external throughput").
    DualTenGbE,
    /// 4x QDR InfiniBand (SAN deployments).
    InfinibandQdr,
    /// 16 Gb Fibre Channel.
    Fc16,
}

impl NetworkLink {
    /// Payload bandwidth of the link (§3.3; non-10GbE figures are the
    /// technologies' nominal data rates, which the paper does not quote).
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            NetworkLink::TenGbE => Bandwidth::from_gbit_per_sec(10.0),
            NetworkLink::DualTenGbE => Bandwidth::from_gbit_per_sec(20.0),
            // 40 Gb/s signalling, 32 Gb/s data after 8b/10b.
            NetworkLink::InfinibandQdr => Bandwidth::from_gbit_per_sec(32.0),
            // 16GFC carries ~1.6 GB/s after 64b/66b.
            NetworkLink::Fc16 => Bandwidth::from_bytes_per_sec(1.6e9),
        }
    }
}

/// FUSE streaming-read throughput factor relative to ext4 (§5.3:
/// "ext4+FUSE underperforms ext4 in throughput by 24.1% for read").
pub const FUSE_READ_FACTOR: f64 = 0.759;

/// FUSE streaming-write throughput factor with the `big_writes` 128 KB
/// flush option (§5.3: "51.8% for write due to kernel-user mode
/// switches"; §4.8 documents the big_writes setting).
pub const FUSE_WRITE_FACTOR: f64 = 0.482;

/// Default FUSE flush granularity without `big_writes` (§4.8: "FUSE
/// flushes 4KB data from the user space to the kernel space each time").
pub const FUSE_DEFAULT_FLUSH_BYTES: u64 = 4 * 1024;

/// The `big_writes` flush granularity the prototype configures (§4.8).
pub const FUSE_BIG_WRITES_BYTES: u64 = 128 * 1024;

/// OLFS's additional read throughput factor on top of FUSE (§5.3:
/// "Ext4+OLFS further causes 28.9% read ... performance loss compared to
/// ext4+FUSE").
pub const OLFS_READ_FACTOR: f64 = 1.0 - 0.289;

/// OLFS's additional write throughput factor on top of FUSE (§5.3:
/// "... and 10.1% write performance loss").
pub const OLFS_WRITE_FACTOR: f64 = 1.0 - 0.101;

/// Samba streaming factors relative to ext4 (§5.3: "samba leads to about
/// 68.9% read and 68.0% write throughput degradation of ext4").
pub const SAMBA_READ_FACTOR: f64 = 1.0 - 0.689;

/// See [`SAMBA_READ_FACTOR`] (§5.3: "68.0% write throughput
/// degradation").
pub const SAMBA_WRITE_FACTOR: f64 = 1.0 - 0.680;

/// How much of the FUSE penalty remains visible behind Samba (the
/// network stack hides part of it; estimated from Figure 6's bars —
/// the paper quotes no number for samba+FUSE).
pub const FUSE_UNDER_SAMBA_READ: f64 = 0.78;

/// See [`FUSE_UNDER_SAMBA_READ`]: the write-side estimate from
/// Figure 6's samba+FUSE bar.
pub const FUSE_UNDER_SAMBA_WRITE: f64 = 0.97;

/// How much of the OLFS penalty remains visible behind Samba+FUSE,
/// calibrated so samba+OLFS lands on the measured 236.1 MB/s read and
/// 323.6 MB/s write (§5.3).
pub const OLFS_UNDER_SAMBA_READ: f64 = 0.81;

/// See [`OLFS_UNDER_SAMBA_READ`]: calibrated against §5.3's measured
/// 323.6 MB/s samba+OLFS write.
pub const OLFS_UNDER_SAMBA_WRITE: f64 = 1.04;

/// Extra stat operations Samba adds to a file-creating write (§5.3:
/// "In the case of samba+OLFS, writing new file increases extra 7 stat
/// operations" — one before the mknod and six after, per Figure 7).
pub const SAMBA_EXTRA_WRITE_STATS_BEFORE: usize = 1;

/// See [`SAMBA_EXTRA_WRITE_STATS_BEFORE`] (Figure 7's post-mknod
/// stat cluster, net of the one mknod itself issues).
pub const SAMBA_EXTRA_WRITE_STATS_AFTER: usize = 5;

/// Extra stat operations Samba adds to a read (Figure 7's read
/// breakdown shows a single leading stat).
pub const SAMBA_EXTRA_READ_STATS: usize = 1;

/// SMB protocol overhead per write-class request (compound
/// CREATE/SETINFO round trips on 10GbE plus smbd processing), calibrated
/// so samba+OLFS write lands on Figure 7's 53 ms.
pub fn smb_write_overhead() -> SimDuration {
    SimDuration::from_micros(19_200)
}

/// SMB protocol overhead per read-class request, calibrated so
/// samba+OLFS read lands on Figure 7's 15 ms.
pub fn smb_read_overhead() -> SimDuration {
    SimDuration::from_micros(2_700)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_carries_1_25_gbps() {
        assert_eq!(network_10gbe().bytes_per_sec(), 1.25e9);
    }

    #[test]
    fn link_variants_scale_sensibly() {
        assert_eq!(NetworkLink::TenGbE.bandwidth(), network_10gbe());
        // §3.3: two NICs provide "more than 1GB/s external throughput".
        assert!(NetworkLink::DualTenGbE.bandwidth().bytes_per_sec() > 1e9);
        assert!(NetworkLink::InfinibandQdr.bandwidth() > NetworkLink::DualTenGbE.bandwidth());
        assert!(NetworkLink::Fc16.bandwidth() > NetworkLink::TenGbE.bandwidth());
    }

    #[test]
    fn factors_are_fractions() {
        for f in [
            FUSE_READ_FACTOR,
            FUSE_WRITE_FACTOR,
            OLFS_READ_FACTOR,
            OLFS_WRITE_FACTOR,
            SAMBA_READ_FACTOR,
            SAMBA_WRITE_FACTOR,
            FUSE_UNDER_SAMBA_READ,
            FUSE_UNDER_SAMBA_WRITE,
            OLFS_UNDER_SAMBA_READ,
        ] {
            assert!(f > 0.0 && f <= 1.0, "factor {f}");
        }
        // OLFS behind Samba can slightly exceed 1.0 on writes: buffering
        // hides its cost entirely (§5.3's 323.6 vs samba's 320.6 MB/s).
        let w = OLFS_UNDER_SAMBA_WRITE;
        assert!((1.0..1.1).contains(&w));
    }
}
