//! Samba/CIFS request model.
//!
//! The NAS deployment of §3.3 exports OLFS over Samba. SMB adds two
//! costs: per-request protocol round trips (compounded CREATE / GETINFO
//! / SETINFO exchanges plus smbd processing), and extra `stat` operations
//! that the server issues against the exported file system (§5.3: a
//! file-creating write gains 7 extra stats, pushing latency from 16 ms to
//! 53 ms; reads go from 9 ms to 15 ms).

use crate::params;
use ros_olfs::trace::OpTrace;
use ros_sim::SimDuration;

/// Wraps an OLFS *write* trace with Samba's extra stats and protocol
/// overhead, returning the client-observed trace.
pub fn wrap_write_trace(olfs: &OpTrace) -> OpTrace {
    let mut t = OpTrace::new();
    // Samba stats the target before opening it.
    for _ in 0..params::SAMBA_EXTRA_WRITE_STATS_BEFORE {
        t.step("stat", SimDuration::ZERO);
    }
    let mut injected_after = false;
    for step in &olfs.steps {
        // Replay the OLFS internal sequence 1:1 (durations included).
        t.steps.push(step.clone());
        // After the create (mknod), smbd issues a burst of re-validating
        // stats (Figure 7's stat*6 block).
        if step.name == "mknod" && !injected_after {
            injected_after = true;
            for _ in 0..params::SAMBA_EXTRA_WRITE_STATS_AFTER {
                t.step("stat", SimDuration::ZERO);
            }
        }
    }
    for e in &olfs.extra {
        t.extra(&e.name, e.duration);
    }
    t.extra("smb", params::smb_write_overhead());
    t
}

/// Wraps an OLFS *read* trace with Samba's extra stats and protocol
/// overhead.
pub fn wrap_read_trace(olfs: &OpTrace) -> OpTrace {
    let mut t = OpTrace::new();
    for _ in 0..params::SAMBA_EXTRA_READ_STATS {
        t.step("stat", SimDuration::ZERO);
    }
    for step in &olfs.steps {
        t.steps.push(step.clone());
    }
    for e in &olfs.extra {
        t.extra(&e.name, e.duration);
    }
    t.extra("smb", params::smb_read_overhead());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn olfs_write_trace() -> OpTrace {
        let mut t = OpTrace::new();
        for name in ["stat", "mknod", "stat", "write", "close"] {
            let device = if name == "write" {
                ros_olfs::params::bucket_write_device()
            } else {
                SimDuration::ZERO
            };
            t.step(name, device);
        }
        t
    }

    fn olfs_read_trace() -> OpTrace {
        let mut t = OpTrace::new();
        for name in ["stat", "read", "close"] {
            let device = if name == "read" {
                ros_olfs::params::bucket_read_device()
            } else {
                SimDuration::ZERO
            };
            t.step(name, device);
        }
        t
    }

    #[test]
    fn figure7_samba_write_is_53ms() {
        let wrapped = wrap_write_trace(&olfs_write_trace());
        let ms = wrapped.total().as_millis_f64();
        assert!(
            (ms - 53.0).abs() < 1.5,
            "samba+OLFS write = {ms} ms (paper: 53)"
        );
    }

    #[test]
    fn figure7_samba_read_is_15ms() {
        let wrapped = wrap_read_trace(&olfs_read_trace());
        let ms = wrapped.total().as_millis_f64();
        assert!(
            (ms - 15.0).abs() < 1.0,
            "samba+OLFS read = {ms} ms (paper: 15)"
        );
    }

    #[test]
    fn extra_stats_appear_in_the_sequence() {
        let wrapped = wrap_write_trace(&olfs_write_trace());
        // Original 2 stats + 1 before + 5 after the mknod.
        assert_eq!(wrapped.count("stat"), 8);
        assert_eq!(wrapped.count("mknod"), 1);
        assert_eq!(wrapped.count("write"), 1);
        // The stat burst follows the mknod.
        let names = wrapped.step_names();
        let mknod_at = names.iter().position(|n| *n == "mknod").unwrap();
        assert_eq!(names[mknod_at + 1], "stat");
    }

    #[test]
    fn wrapping_preserves_olfs_extra_time() {
        let mut olfs = olfs_read_trace();
        olfs.extra("fetch", SimDuration::from_secs(70));
        let wrapped = wrap_read_trace(&olfs);
        assert!(wrapped.total() > SimDuration::from_secs(70));
    }
}
