//! Updatable write buckets — the staging form of disc images (§4.3).
//!
//! "OLFS initially generates a series of empty buckets, each of which is a
//! Linux loop device formatted as an updatable UDF volume. When an empty
//! bucket begins to receive data, OLFS allocates an image ID to it. After
//! the bucket is filled up, it will transit into a disc image with the
//! same image ID. The bucket can be recycled by clearing all data in it."
//!
//! A bucket enforces the admission rule of §4.5: a file (plus any new
//! ancestor directories) is admitted only if it fits in the remaining
//! capacity; otherwise the caller closes the bucket and retries in a
//! fresh one, possibly splitting the file.

use crate::block::BLOCK_SIZE;
use crate::format::{self, FormatError};
use crate::image::SealedImage;
use crate::pathindex::PathIndex;
use crate::tree::{FileMeta, FsTree, Path, TreeError};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Errors from bucket operations.
#[derive(Clone, Debug, PartialEq)]
pub enum BucketError {
    /// The file (with its new directories) does not fit; close the bucket
    /// and write to a fresh one.
    WontFit {
        /// On-image bytes the write needs.
        needed: u64,
        /// Bytes still free.
        free: u64,
    },
    /// Tree-level failure.
    Tree(TreeError),
    /// Serialization failure at close.
    Format(FormatError),
}

impl From<TreeError> for BucketError {
    fn from(e: TreeError) -> Self {
        BucketError::Tree(e)
    }
}

impl From<FormatError> for BucketError {
    fn from(e: FormatError) -> Self {
        BucketError::Format(e)
    }
}

impl core::fmt::Display for BucketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BucketError::WontFit { needed, free } => {
                write!(f, "write of {needed} bytes won't fit in {free} free")
            }
            BucketError::Tree(e) => write!(f, "tree: {e}"),
            BucketError::Format(e) => write!(f, "format: {e}"),
        }
    }
}

impl std::error::Error for BucketError {}

/// A staged file's flat-index entry: stat metadata plus a refcounted
/// handle on the staged payload.
#[derive(Clone, Debug)]
struct Staged {
    meta: FileMeta,
    data: Bytes,
}

/// An open, updatable UDF bucket.
///
/// The staged namespace is mutable, so the flat `Hash(path) → entry`
/// index is maintained *incrementally* by the same operations that
/// mutate the tree ([`Bucket::write`], [`Bucket::update`],
/// [`Bucket::recycle`]); reads resolve through it in O(1) with the
/// hierarchical tree retained as a debug-build oracle. The serialized
/// form carries only the tree — the index is derived state, rebuilt on
/// deserialize — so the snapshot JSON is byte-identical to before.
#[derive(Clone, Debug)]
pub struct Bucket {
    image_id: u64,
    capacity_bytes: u64,
    tree: FsTree,
    index: PathIndex<Staged>,
}

impl Serialize for Bucket {
    fn serialize_value(&self) -> serde::Value {
        BucketSnapshot {
            image_id: self.image_id,
            capacity_bytes: self.capacity_bytes,
            tree: self.tree.clone(),
        }
        .serialize_value()
    }
}

impl Deserialize for Bucket {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Bucket::from(BucketSnapshot::deserialize_value(v)?))
    }
}

/// Serde shadow of [`Bucket`]: the persisted fields only, in the same
/// order the pre-index struct serialized them.
#[derive(Serialize, Deserialize)]
struct BucketSnapshot {
    image_id: u64,
    capacity_bytes: u64,
    tree: FsTree,
}

impl From<Bucket> for BucketSnapshot {
    fn from(b: Bucket) -> Self {
        BucketSnapshot {
            image_id: b.image_id,
            capacity_bytes: b.capacity_bytes,
            tree: b.tree,
        }
    }
}

impl From<BucketSnapshot> for Bucket {
    fn from(s: BucketSnapshot) -> Self {
        let index = index_of(&s.tree);
        Bucket {
            image_id: s.image_id,
            capacity_bytes: s.capacity_bytes,
            tree: s.tree,
            index,
        }
    }
}

/// Rebuilds the derived flat index from a tree (deserialize path).
fn index_of(tree: &FsTree) -> PathIndex<Staged> {
    let mut index = PathIndex::new();
    for (path, meta) in tree.walk_files() {
        if let Ok(data) = tree.read(&path) {
            index.insert(path, Staged { meta, data });
        }
    }
    index
}

impl Bucket {
    /// Creates an empty bucket targeting a disc of `capacity_bytes`.
    pub fn new(image_id: u64, capacity_bytes: u64) -> Self {
        Bucket {
            image_id,
            capacity_bytes,
            tree: FsTree::new(),
            index: PathIndex::new(),
        }
    }

    /// Returns the image id this bucket will seal into.
    pub fn image_id(&self) -> u64 {
        self.image_id
    }

    /// Returns the declared capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Returns the on-image bytes already committed.
    pub fn used_bytes(&self) -> u64 {
        self.tree.image_bytes()
    }

    /// Returns the bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes())
    }

    /// Returns true if no file was ever written.
    pub fn is_empty(&self) -> bool {
        self.tree.file_count() == 0
    }

    /// Read access to the staged tree (buckets are readable in place;
    /// Table 1's fastest hit class).
    pub fn tree(&self) -> &FsTree {
        &self.tree
    }

    /// Reads a staged file in O(1) through the flat index; the returned
    /// [`Bytes`] is a refcounted handle, not a copy. Misses fall back to
    /// the tree so callers get the exact [`TreeError`].
    pub fn read(&self, path: &Path) -> Result<Bytes, TreeError> {
        match self.index.get(path) {
            Some(s) => {
                debug_assert_eq!(
                    self.tree.read(path).as_ref().ok(),
                    Some(&s.data),
                    "bucket index and tree oracle disagree on read({path})"
                );
                Ok(s.data.clone())
            }
            None => {
                let err = self.tree.read(path);
                debug_assert!(
                    err.is_err(),
                    "tree resolves {path} but the bucket index does not"
                );
                err
            }
        }
    }

    /// Stats a staged file via the flat index (tree oracle in debug).
    pub fn stat(&self, path: &Path) -> Result<FileMeta, TreeError> {
        match self.index.get(path) {
            Some(s) => {
                debug_assert_eq!(
                    self.tree.stat(path).ok(),
                    Some(s.meta.clone()),
                    "bucket index and tree oracle disagree on stat({path})"
                );
                Ok(s.meta.clone())
            }
            None => {
                let err = self.tree.stat(path);
                debug_assert!(
                    err.is_err(),
                    "tree stats {path} but the bucket index does not"
                );
                err
            }
        }
    }

    /// Returns true if the bucket stages the file.
    pub fn contains(&self, path: &Path) -> bool {
        let hit = self.index.contains(path);
        debug_assert_eq!(
            hit,
            self.tree.is_file(path),
            "bucket index and tree oracle disagree on contains({path})"
        );
        hit
    }

    /// The on-image cost a write would incur (data + entry + any new
    /// ancestor directories).
    pub fn cost_of(&self, path: &Path, size: u64) -> u64 {
        self.tree.cost_of_insert(path, size)
    }

    /// The largest data prefix of a `size`-byte file at `path` that still
    /// fits, rounded down to a block boundary; `None` if not even one
    /// block fits. Used by OLFS to split files across buckets (§4.5).
    pub fn max_prefix(&self, path: &Path, size: u64) -> Option<u64> {
        let free = self.free_bytes();
        let overhead = self.cost_of(path, 0);
        if free < overhead + BLOCK_SIZE {
            return None;
        }
        let data_room = free - overhead;
        Some(size.min(data_room / BLOCK_SIZE * BLOCK_SIZE))
    }

    /// Writes a new file, enforcing the §4.5 admission rule.
    pub fn write(
        &mut self,
        path: &Path,
        data: impl Into<Bytes>,
        mtime_nanos: u64,
    ) -> Result<(), BucketError> {
        let data = data.into();
        let needed = self.cost_of(path, data.len() as u64);
        let free = self.free_bytes();
        if needed > free {
            return Err(BucketError::WontFit { needed, free });
        }
        self.tree.insert(path, data.clone(), mtime_nanos)?;
        self.index.insert(
            path.clone(),
            Staged {
                meta: FileMeta {
                    size: data.len() as u64,
                    mtime_nanos,
                },
                data,
            },
        );
        Ok(())
    }

    /// Updates an existing file in place (legal only while the bucket is
    /// open; §4.6: "If an updating file is still in an opened bucket with
    /// sufficient free space, the file can be simply updated").
    pub fn update(
        &mut self,
        path: &Path,
        data: impl Into<Bytes>,
        mtime_nanos: u64,
    ) -> Result<(), BucketError> {
        let data = data.into();
        let old = self.tree.stat(path)?;
        let old_blocks = crate::block::blocks_for(old.size);
        let new_blocks = crate::block::blocks_for(data.len() as u64);
        let growth = new_blocks.saturating_sub(old_blocks) * BLOCK_SIZE;
        if growth > self.free_bytes() {
            return Err(BucketError::WontFit {
                needed: growth,
                free: self.free_bytes(),
            });
        }
        self.tree.update(path, data.clone(), mtime_nanos)?;
        self.index.insert(
            path.clone(),
            Staged {
                meta: FileMeta {
                    size: data.len() as u64,
                    mtime_nanos,
                },
                data,
            },
        );
        Ok(())
    }

    /// Recycles the bucket: clears all data so it can stage a new image
    /// under a new id (§4.3).
    pub fn recycle(&mut self, new_image_id: u64) {
        self.image_id = new_image_id;
        self.tree = FsTree::new();
        self.index = PathIndex::new();
    }

    /// Seals the bucket into an immutable disc image.
    pub fn close(&self) -> Result<SealedImage, BucketError> {
        let bytes = format::serialize(&self.tree, self.image_id, self.capacity_bytes)?;
        // ros-analysis: allow(L2, round-trip of our own serializer; covered by the format tests)
        Ok(SealedImage::from_bytes(bytes).expect("own serialization must parse"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn bucket(blocks: u64) -> Bucket {
        Bucket::new(1, blocks * BLOCK_SIZE)
    }

    #[test]
    fn write_and_read_back() {
        let mut b = bucket(64);
        b.write(&p("/a/file"), &b"content"[..], 5).unwrap();
        assert_eq!(b.tree().read(&p("/a/file")).unwrap().as_ref(), b"content");
        assert!(!b.is_empty());
        assert_eq!(b.image_id(), 1);
    }

    #[test]
    fn admission_rule_rejects_oversize() {
        let mut b = bucket(8);
        // Overhead(2) + root ICB(1) leaves 5 blocks; a 5-block file needs
        // entry + 5 data + root FID data = 7.
        let err = b
            .write(&p("/big"), vec![0u8; 5 * BLOCK_SIZE as usize], 0)
            .unwrap_err();
        assert!(matches!(err, BucketError::WontFit { .. }));
        // A 2-block file fits: entry(1) + data(2) + fid block(1) = 4.
        b.write(&p("/ok"), vec![0u8; 2 * BLOCK_SIZE as usize], 0)
            .unwrap();
    }

    #[test]
    fn used_plus_free_is_capacity() {
        let mut b = bucket(128);
        b.write(&p("/x/y/z"), vec![1u8; 9000], 0).unwrap();
        assert_eq!(b.used_bytes() + b.free_bytes(), b.capacity_bytes());
    }

    #[test]
    fn max_prefix_splits_on_block_boundary() {
        let mut b = bucket(16);
        b.write(&p("/pad"), vec![0u8; 3 * BLOCK_SIZE as usize], 0)
            .unwrap();
        let free = b.free_bytes();
        assert!(free > 0);
        let want = 100 * BLOCK_SIZE;
        let prefix = b.max_prefix(&p("/huge"), want).unwrap();
        assert!(prefix < want);
        assert_eq!(prefix % BLOCK_SIZE, 0);
        // The prefix actually fits.
        b.write(&p("/huge"), vec![0u8; prefix as usize], 0).unwrap();
        // A completely full bucket yields no prefix.
        assert!(b.max_prefix(&p("/more"), want).is_none() || b.free_bytes() >= BLOCK_SIZE);
    }

    #[test]
    fn update_in_place_within_capacity() {
        let mut b = bucket(32);
        b.write(&p("/f"), vec![0u8; 100], 1).unwrap();
        b.update(&p("/f"), vec![1u8; 4000], 2).unwrap();
        assert_eq!(b.tree().stat(&p("/f")).unwrap().size, 4000);
        // Updating a missing file fails.
        assert!(matches!(
            b.update(&p("/nope"), &b""[..], 3).unwrap_err(),
            BucketError::Tree(TreeError::NotFound(_))
        ));
        // Growing beyond capacity fails and leaves the file intact.
        let err = b
            .update(&p("/f"), vec![2u8; 64 * BLOCK_SIZE as usize], 4)
            .unwrap_err();
        assert!(matches!(err, BucketError::WontFit { .. }));
        assert_eq!(b.tree().stat(&p("/f")).unwrap().size, 4000);
    }

    #[test]
    fn recycle_clears_everything() {
        let mut b = bucket(64);
        b.write(&p("/f"), vec![0u8; 100], 0).unwrap();
        let used = b.used_bytes();
        b.recycle(99);
        assert!(b.is_empty());
        assert_eq!(b.image_id(), 99);
        assert!(b.used_bytes() < used);
    }

    #[test]
    fn close_seals_a_parseable_image() {
        let mut b = bucket(64);
        b.write(&p("/data/file1"), &b"one"[..], 1).unwrap();
        b.write(&p("/data/file2"), &b"two"[..], 2).unwrap();
        let img = b.close().unwrap();
        assert_eq!(img.image_id(), 1);
        assert_eq!(img.read(&p("/data/file1")).unwrap().as_ref(), b"one");
        assert_eq!(img.scan_files().len(), 2);
        // Closing doesn't consume the bucket; it can still be recycled.
        b.recycle(2);
        assert!(b.is_empty());
    }

    #[test]
    fn serde_roundtrip_rebuilds_the_index() {
        let mut b = bucket(64);
        b.write(&p("/a/x"), &b"one"[..], 1).unwrap();
        b.write(&p("/a/y"), &b"two"[..], 2).unwrap();
        let json = serde_json::to_string(&b).unwrap();
        // The snapshot carries only the persisted fields — no index blob.
        assert!(json.contains("\"image_id\""));
        assert!(json.contains("\"tree\""));
        assert!(!json.contains("index"));
        let back: Bucket = serde_json::from_str(&json).unwrap();
        assert_eq!(back.read(&p("/a/x")).unwrap().as_ref(), b"one");
        assert_eq!(back.stat(&p("/a/y")).unwrap().mtime_nanos, 2);
        assert!(back.contains(&p("/a/y")));
        assert!(!back.contains(&p("/a")));
        // Re-serializing the round-tripped bucket is byte-identical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn index_tracks_write_update_recycle() {
        let mut b = bucket(64);
        b.write(&p("/f"), &b"v1"[..], 1).unwrap();
        assert_eq!(b.read(&p("/f")).unwrap().as_ref(), b"v1");
        b.update(&p("/f"), &b"version-two"[..], 2).unwrap();
        assert_eq!(b.read(&p("/f")).unwrap().as_ref(), b"version-two");
        assert_eq!(b.stat(&p("/f")).unwrap().size, 11);
        b.recycle(7);
        assert!(!b.contains(&p("/f")));
        assert!(matches!(
            b.read(&p("/f")).unwrap_err(),
            TreeError::NotFound(_)
        ));
    }

    #[test]
    fn duplicate_write_is_rejected() {
        let mut b = bucket(64);
        b.write(&p("/f"), &b"x"[..], 0).unwrap();
        assert!(matches!(
            b.write(&p("/f"), &b"y"[..], 1).unwrap_err(),
            BucketError::Tree(TreeError::AlreadyExists(_))
        ));
    }
}
