//! A write-once UDF-profile disc-image format for the ROS optical library.
//!
//! OLFS "strategically partitions all files into Universal Disc Format
//! (UDF) disc images on disks or discs" (§1) and uses *buckets* — updatable
//! UDF volumes on the disk write buffer — as the staging form of those
//! images (§4.3). This crate implements that image format for real:
//!
//! - fixed 2 KB blocks (the UDF basic block size, §4.5),
//! - a block-accurate on-image layout: anchor + volume descriptor, ICB
//!   metadata blocks, file-identifier-descriptor (FID) directory data and
//!   contiguous file extents,
//! - every file costs at least one 2 KB file-entry block in addition to
//!   its data blocks — reproducing §4.5's worst case where sub-2KB files
//!   halve usable capacity,
//! - full binary serialization and parsing, so namespace recovery by
//!   scanning raw disc payloads (§4.4) is real,
//! - [`Bucket`]: the updatable staging volume with close-on-overflow
//!   semantics (§4.5).
//!
//! The format is *UDF-profile*, not byte-compatible UDF 2.50: it keeps the
//! structures that matter for the paper's mechanisms (block maths, entry
//! overheads, self-descriptive directory subtrees) and drops the
//! compatibility baggage (tag checksums, OSTA strings, sparing tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bucket;
pub mod format;
pub mod image;
pub mod pathindex;
pub mod tree;

pub use block::{blocks_for, BLOCK_SIZE};
pub use bucket::{Bucket, BucketError};
pub use image::SealedImage;
pub use pathindex::PathIndex;
pub use tree::{FsTree, Path as UdfPath, TreeError};
