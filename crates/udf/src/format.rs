//! Block-level binary serialization of UDF-profile images.
//!
//! On-image layout (all integers little-endian):
//!
//! ```text
//! block 0  anchor:  magic "ROSUDF01", u32 version, u64 pvd_block (=1)
//! block 1  PVD:     u64 image_id, u64 capacity_blocks, u64 used_blocks,
//!                   u64 root_icb_block (=2)
//! block 2  root directory ICB
//! ...      directory FID data, child ICBs and file data, allocated
//!          depth-first
//! ```
//!
//! Directory ICB: tag `b'D'`, u32 child count, u64 FID-data start block,
//! u32 FID-data block count. FID stream: per child, `u8 kind`
//! (`b'd'`/`b'f'`), `u32 name_len`, name bytes, `u64 child_icb_block`.
//!
//! File ICB: tag `b'F'`, u64 size, u64 mtime_nanos, u64 data start block,
//! u32 data block count (one contiguous extent — ideal for sequential
//! write-once burning, §4.3).

use crate::block::{blocks_for, BLOCK_SIZE};
use crate::tree::{fid_cost, FileMeta, FsNode, FsTree};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Image magic.
pub const MAGIC: [u8; 8] = *b"ROSUDF01";

/// Format version.
pub const VERSION: u32 = 1;

/// Fixed overhead blocks before the root ICB: anchor + PVD.
pub const OVERHEAD_BLOCKS: u64 = 2;

/// Parsed image header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageHeader {
    /// Image identifier assigned by OLFS.
    pub image_id: u64,
    /// Declared capacity of the target disc, in blocks.
    pub capacity_blocks: u64,
    /// Blocks actually used by this image.
    pub used_blocks: u64,
}

/// Errors from serialization and parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The tree does not fit in the declared capacity.
    CapacityExceeded {
        /// Bytes the tree needs.
        needed: u64,
        /// Declared capacity in bytes.
        capacity: u64,
    },
    /// Input too short or block references out of range.
    Truncated,
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Structural corruption at the given block.
    Corrupt {
        /// Block where the inconsistency was detected.
        block: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A tree value exceeds its fixed-width on-image field; serialising
    /// would silently truncate it and corrupt the round-trip.
    FieldOverflow {
        /// Which on-image field overflowed.
        field: &'static str,
        /// The value that did not fit.
        value: u64,
    },
}

impl core::fmt::Display for FormatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FormatError::CapacityExceeded { needed, capacity } => {
                write!(f, "image needs {needed} bytes, capacity {capacity}")
            }
            FormatError::Truncated => write!(f, "image truncated"),
            FormatError::BadMagic => write!(f, "bad magic"),
            FormatError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::Corrupt { block, reason } => {
                write!(f, "corrupt image at block {block}: {reason}")
            }
            FormatError::FieldOverflow { field, value } => {
                write!(f, "{field} {value} exceeds its on-image field width")
            }
        }
    }
}

impl std::error::Error for FormatError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(blocks: u64) -> Self {
        Writer {
            buf: vec![0u8; (blocks * BLOCK_SIZE) as usize],
        }
    }

    fn at(&mut self, block: u64) -> &mut [u8] {
        let s = (block * BLOCK_SIZE) as usize;
        &mut self.buf[s..s + BLOCK_SIZE as usize]
    }

    fn write_bytes(&mut self, block: u64, offset: usize, data: &[u8]) {
        let s = (block * BLOCK_SIZE) as usize + offset;
        self.buf[s..s + data.len()].copy_from_slice(data);
    }
}

/// Checked narrowing into a u32 on-image field: a value that does not
/// fit is a [`FormatError::FieldOverflow`], never a silent saturation.
fn fits_u32(value: u64, field: &'static str) -> Result<u32, FormatError> {
    u32::try_from(value).map_err(|_| FormatError::FieldOverflow { field, value })
}

fn put_u32(b: &mut [u8], off: usize, v: u32) -> usize {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
    off + 4
}

fn put_u64(b: &mut [u8], off: usize, v: u64) -> usize {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
    off + 8
}

/// Serialises a tree into image bytes.
///
/// `capacity_bytes` is the target disc capacity recorded in the header;
/// serialization fails if the tree exceeds it. The output length is the
/// *used* portion only (a fresh image is mostly empty; the disc burn
/// charges time for the payload actually written).
pub fn serialize(tree: &FsTree, image_id: u64, capacity_bytes: u64) -> Result<Bytes, FormatError> {
    let needed = tree.image_bytes();
    if needed > capacity_bytes {
        return Err(FormatError::CapacityExceeded {
            needed,
            capacity: capacity_bytes,
        });
    }

    // Pass 1: assign block numbers depth-first.
    struct Alloc<'a> {
        icb: BTreeMap<*const FsNode, u64>,
        order: Vec<&'a FsNode>,
        next: u64,
    }
    let mut alloc = Alloc {
        icb: BTreeMap::new(),
        order: Vec::new(),
        next: OVERHEAD_BLOCKS,
    };
    fn assign<'a>(node: &'a FsNode, a: &mut Alloc<'a>) -> Result<(), FormatError> {
        a.icb.insert(node as *const FsNode, a.next);
        a.order.push(node);
        a.next += 1;
        match node {
            FsNode::File { meta, .. } => {
                let data_blocks = blocks_for(meta.size);
                fits_u32(data_blocks, "file data block count")?;
                a.next += data_blocks;
            }
            FsNode::Dir { children } => {
                fits_u32(children.len() as u64, "directory child count")?;
                let fid_bytes: u64 = children.keys().map(|n| fid_cost(n)).sum();
                let fid_blocks = blocks_for(fid_bytes);
                fits_u32(fid_blocks, "FID data block count")?;
                a.next += fid_blocks;
                for child in children.values() {
                    assign(child, a)?;
                }
            }
        }
        Ok(())
    }
    // Pass 1 also validates every fixed-width field, so oversize trees
    // fail typed *before* the image buffer below is allocated.
    assign(tree.root_node(), &mut alloc)?;
    let used_blocks = alloc.next;

    let mut w = Writer::new(used_blocks);

    // Anchor (block 0).
    {
        let b = w.at(0);
        b[..8].copy_from_slice(&MAGIC);
        let off = put_u32(b, 8, VERSION);
        put_u64(b, off, 1);
    }
    // PVD (block 1).
    {
        let b = w.at(1);
        let mut off = put_u64(b, 0, image_id);
        off = put_u64(b, off, blocks_for(capacity_bytes));
        off = put_u64(b, off, used_blocks);
        put_u64(b, off, OVERHEAD_BLOCKS);
    }

    // Pass 2: write ICBs, FID streams and data.
    fn emit(
        node: &FsNode,
        icbs: &BTreeMap<*const FsNode, u64>,
        w: &mut Writer,
    ) -> Result<(), FormatError> {
        let my_icb = icbs[&(node as *const FsNode)];
        match node {
            FsNode::File { meta, data } => {
                let data_blocks = fits_u32(blocks_for(meta.size), "file data block count")?;
                let data_start = my_icb + 1;
                let b = w.at(my_icb);
                b[0] = b'F';
                let mut off = put_u64(b, 1, meta.size);
                off = put_u64(b, off, meta.mtime_nanos);
                off = put_u64(b, off, data_start);
                put_u32(b, off, data_blocks);
                w.write_bytes(data_start, 0, data);
            }
            FsNode::Dir { children } => {
                let child_count = fits_u32(children.len() as u64, "directory child count")?;
                let fid_bytes: u64 = children.keys().map(|n| fid_cost(n)).sum();
                let data_blocks = fits_u32(blocks_for(fid_bytes), "FID data block count")?;
                let data_start = my_icb + 1;
                {
                    let b = w.at(my_icb);
                    b[0] = b'D';
                    let mut off = put_u32(b, 1, child_count);
                    off = put_u64(b, off, data_start);
                    put_u32(b, off, data_blocks);
                }
                // FID stream.
                let mut stream = Vec::with_capacity(fid_bytes as usize);
                for (name, child) in children {
                    let kind = match child {
                        FsNode::Dir { .. } => b'd',
                        FsNode::File { .. } => b'f',
                    };
                    stream.push(kind);
                    let name_len = fits_u32(name.len() as u64, "FID name length")?;
                    stream.extend_from_slice(&name_len.to_le_bytes());
                    stream.extend_from_slice(name.as_bytes());
                    let child_icb = icbs[&(child as *const FsNode)];
                    stream.extend_from_slice(&child_icb.to_le_bytes());
                }
                if !stream.is_empty() {
                    w.write_bytes(data_start, 0, &stream);
                }
                for child in children.values() {
                    emit(child, icbs, w)?;
                }
            }
        }
        Ok(())
    }
    emit(tree.root_node(), &alloc.icb, &mut w)?;

    Ok(Bytes::from(w.buf))
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn block(&self, n: u64) -> Result<&'a [u8], FormatError> {
        let s = (n * BLOCK_SIZE) as usize;
        let e = s + BLOCK_SIZE as usize;
        if e > self.buf.len() {
            return Err(FormatError::Truncated);
        }
        Ok(&self.buf[s..e])
    }

    fn span(&self, start_block: u64, bytes: u64) -> Result<&'a [u8], FormatError> {
        let s = (start_block * BLOCK_SIZE) as usize;
        let e = s + bytes as usize;
        if e > self.buf.len() {
            return Err(FormatError::Truncated);
        }
        Ok(&self.buf[s..e])
    }
}

fn get_u32(b: &[u8], off: usize) -> u32 {
    // ros-analysis: allow(L2, the four-byte slice always converts; slicing bounds-checks first)
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u64(b: &[u8], off: usize) -> u64 {
    // ros-analysis: allow(L2, the eight-byte slice always converts; slicing bounds-checks first)
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

/// Parses image bytes back into a tree and header.
///
/// Copies file data out of the slice; prefer [`parse_image`] when the
/// caller owns refcounted [`Bytes`] — that variant is zero-copy.
pub fn parse(bytes: &[u8]) -> Result<(FsTree, ImageHeader), FormatError> {
    parse_image(&Bytes::copy_from_slice(bytes))
}

/// Parses image bytes back into a tree and header, zero-copy.
///
/// Every file node's data is a refcounted slice of `bytes` — parsing
/// allocates directory structure only, and reads of the resulting tree
/// hand back slices of the one image buffer.
pub fn parse_image(bytes: &Bytes) -> Result<(FsTree, ImageHeader), FormatError> {
    let r = Reader {
        buf: bytes.as_ref(),
    };
    let anchor = r.block(0)?;
    if anchor[..8] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = get_u32(anchor, 8);
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let pvd_block = get_u64(anchor, 12);
    let pvd = r.block(pvd_block)?;
    let header = ImageHeader {
        image_id: get_u64(pvd, 0),
        capacity_blocks: get_u64(pvd, 8),
        used_blocks: get_u64(pvd, 16),
    };
    let root_icb = get_u64(pvd, 24);

    fn parse_node(
        r: &Reader<'_>,
        src: &Bytes,
        icb: u64,
        depth: u32,
    ) -> Result<FsNode, FormatError> {
        if depth > 256 {
            return Err(FormatError::Corrupt {
                block: icb,
                reason: "directory nesting too deep (cycle?)",
            });
        }
        let b = r.block(icb)?;
        match b[0] {
            b'F' => {
                let size = get_u64(b, 1);
                let mtime_nanos = get_u64(b, 9);
                let data_start = get_u64(b, 17);
                // Bounds-check through the reader, then hand out a
                // refcounted slice of the source image — no copy.
                r.span(data_start, size)?;
                let s = (data_start * BLOCK_SIZE) as usize;
                Ok(FsNode::File {
                    meta: FileMeta { size, mtime_nanos },
                    data: src.slice(s..s + size as usize),
                })
            }
            b'D' => {
                let count = get_u32(b, 1) as usize;
                let data_start = get_u64(b, 5);
                let data_blocks = get_u32(b, 13) as u64;
                let stream = if count == 0 {
                    &[][..]
                } else {
                    r.span(data_start, data_blocks * BLOCK_SIZE)?
                };
                let mut children = BTreeMap::new();
                let mut off = 0usize;
                for _ in 0..count {
                    if off + 5 > stream.len() {
                        return Err(FormatError::Corrupt {
                            block: data_start,
                            reason: "FID stream truncated",
                        });
                    }
                    let _kind = stream[off];
                    let name_len = get_u32(stream, off + 1) as usize;
                    off += 5;
                    if off + name_len + 8 > stream.len() || name_len > 4096 {
                        return Err(FormatError::Corrupt {
                            block: data_start,
                            reason: "FID name out of range",
                        });
                    }
                    let name = core::str::from_utf8(&stream[off..off + name_len])
                        .map_err(|_| FormatError::Corrupt {
                            block: data_start,
                            reason: "FID name not UTF-8",
                        })?
                        .to_string();
                    off += name_len;
                    let child_icb = get_u64(stream, off);
                    off += 8;
                    let child = parse_node(r, src, child_icb, depth + 1)?;
                    children.insert(name, child);
                }
                Ok(FsNode::Dir { children })
            }
            _ => Err(FormatError::Corrupt {
                block: icb,
                reason: "unknown ICB tag",
            }),
        }
    }

    let root = parse_node(&r, bytes, root_icb, 0)?;
    match &root {
        FsNode::Dir { .. } => Ok((FsTree::from_root(root), header)),
        FsNode::File { .. } => Err(FormatError::Corrupt {
            block: root_icb,
            reason: "root must be a directory",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Path;

    fn sample_tree() -> FsTree {
        let mut t = FsTree::new();
        t.insert(
            &"/readme.txt".parse::<Path>().unwrap(),
            &b"hello ROS"[..],
            7,
        )
        .unwrap();
        t.insert(
            &"/data/2026/jan/metrics.csv".parse::<Path>().unwrap(),
            vec![0x42u8; 5000],
            8,
        )
        .unwrap();
        t.insert(
            &"/data/2026/feb/metrics.csv".parse::<Path>().unwrap(),
            vec![0x17u8; 3000],
            9,
        )
        .unwrap();
        t.insert(&"/empty".parse::<Path>().unwrap(), &b""[..], 10)
            .unwrap();
        t.mkdir_p(&"/hollow/dir".parse::<Path>().unwrap()).unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_tree() {
        let t = sample_tree();
        let bytes = serialize(&t, 77, 1 << 24).unwrap();
        let (parsed, header) = parse(&bytes).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(header.image_id, 77);
        assert_eq!(header.capacity_blocks, (1 << 24) / BLOCK_SIZE);
        assert_eq!(header.used_blocks * BLOCK_SIZE, bytes.len() as u64);
        assert_eq!(header.used_blocks * BLOCK_SIZE, t.image_bytes());
    }

    #[test]
    fn empty_tree_roundtrips() {
        let t = FsTree::new();
        let bytes = serialize(&t, 1, 1 << 20).unwrap();
        let (parsed, _) = parse(&bytes).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn capacity_is_enforced() {
        let t = sample_tree();
        let err = serialize(&t, 1, 4 * BLOCK_SIZE).unwrap_err();
        assert!(matches!(err, FormatError::CapacityExceeded { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let t = FsTree::new();
        let bytes = serialize(&t, 1, 1 << 20).unwrap();
        let mut v = bytes.to_vec();
        v[0] ^= 0xFF;
        assert_eq!(parse(&v).unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let t = FsTree::new();
        let bytes = serialize(&t, 1, 1 << 20).unwrap();
        let mut v = bytes.to_vec();
        v[8] = 0xEE;
        assert!(matches!(parse(&v).unwrap_err(), FormatError::BadVersion(_)));
    }

    #[test]
    fn truncation_detected() {
        let t = sample_tree();
        let bytes = serialize(&t, 1, 1 << 24).unwrap();
        let v = &bytes[..bytes.len() - BLOCK_SIZE as usize];
        assert_eq!(parse(v).unwrap_err(), FormatError::Truncated);
        assert_eq!(parse(&bytes[..100]).unwrap_err(), FormatError::Truncated);
    }

    #[test]
    fn corrupt_icb_tag_detected() {
        let t = sample_tree();
        let bytes = serialize(&t, 1, 1 << 24).unwrap();
        let mut v = bytes.to_vec();
        // Root ICB tag lives at block 2, offset 0.
        v[(OVERHEAD_BLOCKS * BLOCK_SIZE) as usize] = b'X';
        assert!(matches!(
            parse(&v).unwrap_err(),
            FormatError::Corrupt { .. }
        ));
    }

    #[test]
    fn file_root_rejected() {
        // Hand-craft an image whose root ICB is a file.
        let t = FsTree::new();
        let bytes = serialize(&t, 1, 1 << 20).unwrap();
        let mut v = bytes.to_vec();
        let icb = (OVERHEAD_BLOCKS * BLOCK_SIZE) as usize;
        // Rewrite the root ICB as a zero-length file whose data starts at
        // the next block.
        for b in v[icb..icb + BLOCK_SIZE as usize].iter_mut() {
            *b = 0;
        }
        v[icb] = b'F';
        v[icb + 17..icb + 25].copy_from_slice(&(OVERHEAD_BLOCKS + 1).to_le_bytes());
        let err = parse(&v).unwrap_err();
        assert!(matches!(err, FormatError::Corrupt { reason, .. } if reason.contains("root")));
    }

    #[test]
    fn many_children_span_fid_blocks() {
        let mut t = FsTree::new();
        // Enough children that the FID stream exceeds one block.
        for i in 0..200 {
            let p: Path = format!("/directory-with-long-children/child-file-number-{i:04}")
                .parse()
                .unwrap();
            t.insert(&p, vec![i as u8; 10], 0).unwrap();
        }
        let bytes = serialize(&t, 9, 1 << 24).unwrap();
        let (parsed, _) = parse(&bytes).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn oversized_icb_field_is_a_typed_error() {
        // A file whose data-block count exceeds the u32 ICB field: the
        // old code saturated it to u32::MAX (silent round-trip
        // corruption) after attempting a multi-terabyte buffer
        // allocation. Serialisation must instead fail fast with a typed
        // error, before any block buffer is allocated.
        let size = (u64::from(u32::MAX) + 1) * BLOCK_SIZE;
        let mut children = BTreeMap::new();
        children.insert(
            "huge".to_string(),
            FsNode::File {
                meta: FileMeta {
                    size,
                    mtime_nanos: 0,
                },
                data: Bytes::new(),
            },
        );
        let t = FsTree::from_root(FsNode::Dir { children });
        assert_eq!(
            serialize(&t, 1, u64::MAX).unwrap_err(),
            FormatError::FieldOverflow {
                field: "file data block count",
                value: u64::from(u32::MAX) + 1,
            }
        );
    }

    #[test]
    fn data_survives_byte_for_byte() {
        let mut t = FsTree::new();
        let payload: Vec<u8> = (0..10_000u32)
            .map(|i| i.wrapping_mul(2654435761) as u8)
            .collect();
        t.insert(&"/blob".parse::<Path>().unwrap(), payload.clone(), 0)
            .unwrap();
        let bytes = serialize(&t, 3, 1 << 24).unwrap();
        let (parsed, _) = parse(&bytes).unwrap();
        assert_eq!(
            parsed
                .read(&"/blob".parse::<Path>().unwrap())
                .unwrap()
                .as_ref(),
            payload.as_slice()
        );
    }
}
