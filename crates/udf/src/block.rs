//! Block-size constants and path normalisation.

/// The UDF basic block size: "In the UDF file system the basic block size
/// is 2 KB and cannot be changed" (§4.5).
pub const BLOCK_SIZE: u64 = 2_048;

/// Number of blocks needed to store `bytes` (zero bytes need zero blocks).
pub fn blocks_for(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE)
}

/// Bytes consumed on the image by a file of `size` bytes: one file-entry
/// block plus its data blocks (§4.5: "each file entry size is allocated at
/// a minimum of 2KB").
pub fn file_cost(size: u64) -> u64 {
    BLOCK_SIZE + blocks_for(size) * BLOCK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_round_up() {
        assert_eq!(blocks_for(0), 0);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(2_048), 1);
        assert_eq!(blocks_for(2_049), 2);
        assert_eq!(blocks_for(10_240), 5);
    }

    #[test]
    fn tiny_files_halve_capacity() {
        // §4.5's worst case: files under 2 KB consume 4 KB each (entry +
        // one data block), so payload efficiency is at most 50%.
        let payload = 2_000u64;
        let cost = file_cost(payload);
        assert_eq!(cost, 4_096);
        assert!((payload as f64 / cost as f64) < 0.5);
    }

    #[test]
    fn empty_file_still_costs_an_entry() {
        assert_eq!(file_cost(0), BLOCK_SIZE);
    }
}
