//! Sealed (immutable) disc images.
//!
//! "OLFS considers a disc image as a basic container to accommodate files.
//! Each disc image has the same capacity as the disc and has an internal
//! UDF file system. Therefore, disc images as a whole can swap between
//! discs and disks." (§4.1)
//!
//! A [`SealedImage`] is the parsed, read-only view of such an image. Its
//! raw bytes are what gets burned; parsing those bytes back — including
//! from a disc that is the *only* surviving component — recovers the full
//! directory subtree, which is exactly the self-descriptiveness argument
//! of §4.4.

use crate::format::{self, FormatError, ImageHeader};
use crate::tree::{FileMeta, FsTree, Path, TreeError};
use bytes::Bytes;

/// An immutable, parsed disc image.
#[derive(Clone, Debug)]
pub struct SealedImage {
    header: ImageHeader,
    bytes: Bytes,
    tree: FsTree,
}

impl SealedImage {
    /// Parses raw image bytes (e.g. read back from a disc).
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Self, FormatError> {
        let bytes = bytes.into();
        let (tree, header) = format::parse(&bytes)?;
        Ok(SealedImage {
            header,
            bytes,
            tree,
        })
    }

    /// Returns the image id.
    pub fn image_id(&self) -> u64 {
        self.header.image_id
    }

    /// Returns the parsed header.
    pub fn header(&self) -> ImageHeader {
        self.header
    }

    /// Returns the raw bytes (the burn payload).
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Returns the size of the used image in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns true for an image holding no files.
    pub fn is_empty(&self) -> bool {
        self.tree.file_count() == 0
    }

    /// Reads one file by its (global) path.
    pub fn read(&self, path: &Path) -> Result<Bytes, TreeError> {
        self.tree.read(path)
    }

    /// Stats one file.
    pub fn stat(&self, path: &Path) -> Result<FileMeta, TreeError> {
        self.tree.stat(path)
    }

    /// Returns true if the image carries the file.
    pub fn contains(&self, path: &Path) -> bool {
        self.tree.is_file(path)
    }

    /// Enumerates every file in the image — the namespace-scan primitive
    /// behind MV recovery (§4.2) and post-catastrophe reconstruction
    /// (§4.4).
    pub fn scan_files(&self) -> Vec<(Path, FileMeta)> {
        self.tree.walk_files()
    }

    /// Read access to the whole tree.
    pub fn tree(&self) -> &FsTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use crate::bucket::Bucket;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn sealed() -> SealedImage {
        let mut b = Bucket::new(42, 128 * BLOCK_SIZE);
        b.write(&p("/proj/src/main.rs"), &b"fn main() {}"[..], 1)
            .unwrap();
        b.write(&p("/proj/Cargo.toml"), &b"[package]"[..], 2)
            .unwrap();
        b.close().unwrap()
    }

    #[test]
    fn image_reads_files() {
        let img = sealed();
        assert_eq!(img.image_id(), 42);
        assert!(img.contains(&p("/proj/Cargo.toml")));
        assert!(!img.contains(&p("/proj")));
        assert_eq!(
            img.read(&p("/proj/src/main.rs")).unwrap().as_ref(),
            b"fn main() {}"
        );
        assert_eq!(img.stat(&p("/proj/Cargo.toml")).unwrap().size, 9);
        assert!(!img.is_empty());
    }

    #[test]
    fn roundtrip_through_raw_bytes() {
        let img = sealed();
        let copy = SealedImage::from_bytes(img.bytes().clone()).unwrap();
        assert_eq!(copy.image_id(), img.image_id());
        assert_eq!(copy.scan_files(), img.scan_files());
    }

    #[test]
    fn scan_lists_global_paths() {
        let img = sealed();
        let files = img.scan_files();
        let paths: Vec<String> = files.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(paths, vec!["/proj/Cargo.toml", "/proj/src/main.rs"]);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(SealedImage::from_bytes(vec![0u8; 100]).is_err());
        assert!(SealedImage::from_bytes(Vec::<u8>::new()).is_err());
    }
}
