//! Sealed (immutable) disc images.
//!
//! "OLFS considers a disc image as a basic container to accommodate files.
//! Each disc image has the same capacity as the disc and has an internal
//! UDF file system. Therefore, disc images as a whole can swap between
//! discs and disks." (§4.1)
//!
//! A [`SealedImage`] is the parsed, read-only view of such an image. Its
//! raw bytes are what gets burned; parsing those bytes back — including
//! from a disc that is the *only* surviving component — recovers the full
//! directory subtree, which is exactly the self-descriptiveness argument
//! of §4.4.

use crate::format::{self, FormatError, ImageHeader};
use crate::pathindex::PathIndex;
use crate::tree::{FileMeta, FsTree, Path, TreeError};
use bytes::Bytes;

/// One file's resolved entry in a sealed image's flat namespace index:
/// the stat metadata plus a zero-copy slice of the image payload.
#[derive(Clone, Debug)]
struct Entry {
    meta: FileMeta,
    data: Bytes,
}

/// An immutable, parsed disc image.
///
/// The namespace is *closed* once sealed, so resolution goes through a
/// flat `Hash(path) → entry` index ([`PathIndex`]) built exactly once at
/// parse time — O(1) per lookup regardless of directory depth. The
/// hierarchical [`FsTree`] is retained as the structural source of truth
/// (directory listings, serialization) and as a debug-build oracle: every
/// indexed resolution is cross-checked against the tree walk under
/// `debug_assertions`.
#[derive(Clone, Debug)]
pub struct SealedImage {
    header: ImageHeader,
    bytes: Bytes,
    tree: FsTree,
    index: PathIndex<Entry>,
}

impl SealedImage {
    /// Parses raw image bytes (e.g. read back from a disc).
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Self, FormatError> {
        let bytes = bytes.into();
        let (tree, header) = format::parse_image(&bytes)?;
        let mut index = PathIndex::new();
        for (path, meta) in tree.walk_files() {
            // `read` on a just-parsed tree is a cheap refcount bump: the
            // parser hands out slices of the image buffer, not copies.
            let data = tree.read(&path).map_err(|_| FormatError::Corrupt {
                block: 0,
                reason: "walked path missing from its own tree",
            })?;
            index.insert(path, Entry { meta, data });
        }
        Ok(SealedImage {
            header,
            bytes,
            tree,
            index,
        })
    }

    /// Returns the image id.
    pub fn image_id(&self) -> u64 {
        self.header.image_id
    }

    /// Returns the parsed header.
    pub fn header(&self) -> ImageHeader {
        self.header
    }

    /// Returns the raw bytes (the burn payload).
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Returns the size of the used image in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns true for an image holding no files.
    pub fn is_empty(&self) -> bool {
        self.tree.file_count() == 0
    }

    /// Reads one file by its (global) path.
    ///
    /// Resolution is an O(1) index probe; the returned [`Bytes`] is a
    /// refcounted slice of the image buffer, not a copy. Index misses
    /// fall back to the tree walk so the caller gets the exact
    /// [`TreeError`] (NotFound vs IsADirectory) the hierarchy reports.
    pub fn read(&self, path: &Path) -> Result<Bytes, TreeError> {
        match self.index.get(path) {
            Some(e) => {
                debug_assert_eq!(
                    self.tree.read(path).as_ref().ok(),
                    Some(&e.data),
                    "index and tree oracle disagree on read({path})"
                );
                Ok(e.data.clone())
            }
            None => {
                let err = self.tree.read(path);
                debug_assert!(
                    err.is_err(),
                    "tree resolves {path} but the sealed index does not"
                );
                err
            }
        }
    }

    /// Stats one file via the flat index (tree-walk oracle in debug).
    pub fn stat(&self, path: &Path) -> Result<FileMeta, TreeError> {
        match self.index.get(path) {
            Some(e) => {
                debug_assert_eq!(
                    self.tree.stat(path).ok(),
                    Some(e.meta.clone()),
                    "index and tree oracle disagree on stat({path})"
                );
                Ok(e.meta.clone())
            }
            None => {
                let err = self.tree.stat(path);
                debug_assert!(
                    err.is_err(),
                    "tree stats {path} but the sealed index does not"
                );
                err
            }
        }
    }

    /// Returns true if the image carries the file.
    pub fn contains(&self, path: &Path) -> bool {
        let hit = self.index.contains(path);
        debug_assert_eq!(
            hit,
            self.tree.is_file(path),
            "index and tree oracle disagree on contains({path})"
        );
        hit
    }

    /// Enumerates every file in the image — the namespace-scan primitive
    /// behind MV recovery (§4.2) and post-catastrophe reconstruction
    /// (§4.4).
    pub fn scan_files(&self) -> Vec<(Path, FileMeta)> {
        self.tree.walk_files()
    }

    /// Read access to the whole tree.
    pub fn tree(&self) -> &FsTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use crate::bucket::Bucket;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn sealed() -> SealedImage {
        let mut b = Bucket::new(42, 128 * BLOCK_SIZE);
        b.write(&p("/proj/src/main.rs"), &b"fn main() {}"[..], 1)
            .unwrap();
        b.write(&p("/proj/Cargo.toml"), &b"[package]"[..], 2)
            .unwrap();
        b.close().unwrap()
    }

    #[test]
    fn image_reads_files() {
        let img = sealed();
        assert_eq!(img.image_id(), 42);
        assert!(img.contains(&p("/proj/Cargo.toml")));
        assert!(!img.contains(&p("/proj")));
        assert_eq!(
            img.read(&p("/proj/src/main.rs")).unwrap().as_ref(),
            b"fn main() {}"
        );
        assert_eq!(img.stat(&p("/proj/Cargo.toml")).unwrap().size, 9);
        assert!(!img.is_empty());
    }

    #[test]
    fn roundtrip_through_raw_bytes() {
        let img = sealed();
        let copy = SealedImage::from_bytes(img.bytes().clone()).unwrap();
        assert_eq!(copy.image_id(), img.image_id());
        assert_eq!(copy.scan_files(), img.scan_files());
    }

    #[test]
    fn scan_lists_global_paths() {
        let img = sealed();
        let files = img.scan_files();
        let paths: Vec<String> = files.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(paths, vec!["/proj/Cargo.toml", "/proj/src/main.rs"]);
    }

    #[test]
    fn read_is_a_zero_copy_slice_of_the_image_buffer() {
        let img = sealed();
        let data = img.read(&p("/proj/src/main.rs")).unwrap();
        let buf = img.bytes().as_ptr() as usize;
        let end = buf + img.bytes().len();
        let d = data.as_ptr() as usize;
        assert!(
            d >= buf && d + data.len() <= end,
            "read() must hand out a slice of the image payload, not a copy"
        );
        // Repeated reads are refcount bumps over the same storage.
        let again = img.read(&p("/proj/src/main.rs")).unwrap();
        assert_eq!(again.as_ptr(), data.as_ptr());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(SealedImage::from_bytes(vec![0u8; 100]).is_err());
        assert!(SealedImage::from_bytes(Vec::<u8>::new()).is_err());
    }
}
