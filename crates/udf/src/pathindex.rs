//! Flat `Hash(path) → entry` namespace index.
//!
//! OLFS's *unique file path* mechanism (§4.4) makes the full path the
//! identity of every object, so namespace resolution does not need a
//! per-directory tree walk: a flat hash index over full paths answers
//! lookups in O(1) regardless of depth or namespace size. The design
//! follows the "Full Path = Content = ID" argument: over a *closed*
//! namespace (a sealed image) the index is immutable and total; over a
//! mutable one (an open bucket, the MV) it is maintained incrementally
//! by the same operations that mutate the namespace.
//!
//! Determinism: the hash is an FxHash-style multiply-rotate digest with
//! an explicit seed — no per-process randomness, so two runs with the
//! same operation sequence produce byte-identical tables. Collisions are
//! resolved by chaining with full-key comparison; lookups never depend
//! on hash injectivity for correctness.

use crate::tree::Path;

/// The FxHash multiplier (golden-ratio derived, as used by rustc).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

/// Default seed for namespace indexes ("ROS_PATH" in ASCII).
pub const DEFAULT_SEED: u64 = 0x524f_535f_5041_5448;

/// Hard ceiling on the average chain length before the table doubles.
const MAX_AVG_CHAIN: usize = 4;

#[inline]
fn fx_step(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_K)
}

/// Seeded FxHash-style digest of a path.
///
/// Components are mixed with their length and a separator word, so
/// distinct component lists feed distinct streams ("/ab/c" ≠ "/a/bc").
/// Std-only and byte-deterministic across platforms.
pub fn hash_path(seed: u64, path: &Path) -> u64 {
    let mut h = fx_step(seed, u64::from(b'/'));
    for c in path.components() {
        let bytes = c.as_bytes();
        h = fx_step(h, bytes.len() as u64);
        let mut i = 0;
        while i + 8 <= bytes.len() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i..i + 8]);
            h = fx_step(h, u64::from_le_bytes(word));
            i += 8;
        }
        if i < bytes.len() {
            let mut word = [0u8; 8];
            word[..bytes.len() - i].copy_from_slice(&bytes[i..]);
            h = fx_step(h, u64::from_le_bytes(word));
        }
        h = fx_step(h, u64::from(b'/'));
    }
    h
}

#[derive(Clone, Debug)]
struct Slot<V> {
    hash: u64,
    key: Path,
    value: V,
}

/// A deterministic flat `path → V` hash index with chained buckets.
///
/// Iteration order is unspecified but fully determined by the seed and
/// the operation sequence; callers that expose an ordering must sort
/// (the namespace layers keep sorted child sidecars for that).
#[derive(Clone, Debug)]
pub struct PathIndex<V> {
    seed: u64,
    buckets: Vec<Vec<Slot<V>>>,
    len: usize,
}

impl<V> Default for PathIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PathIndex<V> {
    /// An empty index with the default seed.
    pub fn new() -> Self {
        Self::with_seed_and_buckets(DEFAULT_SEED, 16)
    }

    /// An empty index with an explicit seed and initial bucket count
    /// (rounded up to a power of two). A bucket count of 1 forces every
    /// key into one chain — used by collision tests.
    pub fn with_seed_and_buckets(seed: u64, buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        PathIndex {
            seed,
            buckets: (0..n).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket count (test/diagnostic surface).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket a path resolves to under the current table size
    /// (test/diagnostic surface for forced-collision checks).
    pub fn bucket_of(&self, key: &Path) -> usize {
        self.bucket_index(hash_path(self.seed, key))
    }

    fn bucket_index(&self, hash: u64) -> usize {
        let mask = self.buckets.len() as u64 - 1;
        // The masked value is below the bucket count, so it fits usize.
        usize::try_from(hash & mask).unwrap_or(0)
    }

    /// O(1) lookup.
    pub fn get(&self, key: &Path) -> Option<&V> {
        let h = hash_path(self.seed, key);
        self.buckets[self.bucket_index(h)]
            .iter()
            .find(|s| s.hash == h && s.key == *key)
            .map(|s| &s.value)
    }

    /// O(1) mutable lookup.
    pub fn get_mut(&mut self, key: &Path) -> Option<&mut V> {
        let h = hash_path(self.seed, key);
        let b = self.bucket_index(h);
        self.buckets[b]
            .iter_mut()
            .find(|s| s.hash == h && s.key == *key)
            .map(|s| &mut s.value)
    }

    /// True when the key is present.
    pub fn contains(&self, key: &Path) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn insert(&mut self, key: Path, value: V) -> Option<V> {
        let h = hash_path(self.seed, &key);
        let b = self.bucket_index(h);
        if let Some(s) = self.buckets[b]
            .iter_mut()
            .find(|s| s.hash == h && s.key == key)
        {
            return Some(core::mem::replace(&mut s.value, value));
        }
        if self.len + 1 > self.buckets.len() * MAX_AVG_CHAIN {
            self.grow();
        }
        let b = self.bucket_index(h);
        self.buckets[b].push(Slot {
            hash: h,
            key,
            value,
        });
        self.len += 1;
        None
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &Path) -> Option<V> {
        let h = hash_path(self.seed, key);
        let b = self.bucket_index(h);
        let pos = self.buckets[b]
            .iter()
            .position(|s| s.hash == h && s.key == *key)?;
        self.len -= 1;
        Some(self.buckets[b].remove(pos).value)
    }

    /// Iterates over `(path, value)` pairs in table order (deterministic
    /// for a given seed and operation sequence, but not sorted).
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|s| (&s.key, &s.value)))
    }

    /// Doubles the table, redistributing chains deterministically.
    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let old = core::mem::replace(&mut self.buckets, (0..new_n).map(|_| Vec::new()).collect());
        for bucket in old {
            for slot in bucket {
                let b = self.bucket_index(slot.hash);
                self.buckets[b].push(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        // ros-analysis: allow(L2, test fixture paths are static literals)
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = PathIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.insert(p("/a/b"), 1u32), None);
        assert_eq!(idx.insert(p("/a/c"), 2), None);
        assert_eq!(idx.insert(p("/a/b"), 3), Some(1), "replace returns old");
        assert_eq!(idx.get(&p("/a/b")), Some(&3));
        assert_eq!(idx.get(&p("/a/c")), Some(&2));
        assert_eq!(idx.get(&p("/a")), None);
        assert_eq!(idx.len(), 2);
        *idx.get_mut(&p("/a/c")).unwrap() = 9;
        assert_eq!(idx.remove(&p("/a/c")), Some(9));
        assert_eq!(idx.get(&p("/a/c")), None);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(&p("/a/c")), None);
    }

    #[test]
    fn forced_collisions_resolve_by_key() {
        // One bucket: every key chains into the same slot list, so
        // lookups exercise the full-key comparison path.
        let mut idx = PathIndex::with_seed_and_buckets(7, 1);
        for i in 0..4 {
            idx.insert(p(&format!("/collide/{i}")), i);
        }
        assert_eq!(idx.bucket_count(), 1, "growth threshold not yet hit");
        for i in 0..4 {
            let key = p(&format!("/collide/{i}"));
            assert_eq!(idx.bucket_of(&key), 0);
            assert_eq!(idx.get(&key), Some(&i), "chained key resolves exactly");
        }
        // Removal out of the middle of a chain keeps the others intact.
        assert_eq!(idx.remove(&p("/collide/1")), Some(1));
        assert_eq!(idx.get(&p("/collide/0")), Some(&0));
        assert_eq!(idx.get(&p("/collide/2")), Some(&2));
        assert_eq!(idx.get(&p("/collide/3")), Some(&3));
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut idx = PathIndex::with_seed_and_buckets(DEFAULT_SEED, 1);
        for i in 0..500u32 {
            idx.insert(p(&format!("/dir{}/file{i}", i % 17)), i);
        }
        assert_eq!(idx.len(), 500);
        assert!(idx.bucket_count() > 1, "table grew");
        for i in 0..500u32 {
            assert_eq!(idx.get(&p(&format!("/dir{}/file{i}", i % 17))), Some(&i));
        }
        assert_eq!(idx.iter().count(), 500);
    }

    #[test]
    fn hash_is_seeded_and_component_exact() {
        let a = p("/ab/c");
        let b = p("/a/bc");
        assert_ne!(
            hash_path(DEFAULT_SEED, &a),
            hash_path(DEFAULT_SEED, &b),
            "component boundaries are part of the digest"
        );
        assert_ne!(
            hash_path(1, &a),
            hash_path(2, &a),
            "seed perturbs the digest"
        );
        assert_eq!(
            hash_path(DEFAULT_SEED, &a),
            hash_path(DEFAULT_SEED, &p("/ab/c")),
            "digest is deterministic"
        );
        // Long components exercise the 8-byte word loop and the tail.
        let long = p("/a-rather-long-component-name-spanning-words/tail");
        assert_eq!(
            hash_path(DEFAULT_SEED, &long),
            hash_path(DEFAULT_SEED, &long.clone())
        );
    }
}
