//! The in-memory file tree of a UDF image, with block-accurate accounting.
//!
//! Every node knows its on-image cost: a file is one ICB block plus its
//! data blocks; a directory is one ICB block plus the blocks holding its
//! children's file identifier descriptors (FIDs). OLFS's *unique file
//! path* mechanism (§4.4) stores each file under its full global path, so
//! the tree of every image is a subtree of the global namespace and the
//! image is self-descriptive.

use crate::block::{blocks_for, BLOCK_SIZE};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A normalised absolute path ("/a/b/c"; "/" is the root).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Path {
    components: Vec<String>,
}

impl Path {
    /// The root path "/".
    pub fn root() -> Self {
        Path {
            components: Vec::new(),
        }
    }

    /// Parses and normalises an absolute path.
    ///
    /// Rejects relative paths, empty components, `.` and `..`.
    pub fn parse(s: &str) -> Result<Self, TreeError> {
        if !s.starts_with('/') {
            return Err(TreeError::InvalidPath(s.to_string()));
        }
        let mut components = Vec::new();
        let mut parts = s.split('/').skip(1).peekable();
        while let Some(c) = parts.next() {
            if c.is_empty() {
                // Allow a single trailing slash ("/a/b/" == "/a/b") but
                // reject interior empties: "/a//b" must not alias "/a/b"
                // (the path string is the file's identity, §4.4).
                if parts.peek().is_none() {
                    continue;
                }
                return Err(TreeError::InvalidPath(s.to_string()));
            }
            if c == "." || c == ".." || c.contains('\0') {
                return Err(TreeError::InvalidPath(s.to_string()));
            }
            components.push(c.to_string());
        }
        Ok(Path { components })
    }

    /// Returns the path components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Returns the final component (file name), or `None` for the root.
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Returns the parent path, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.components.is_empty() {
            None
        } else {
            Some(Path {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns this path extended with one more component.
    pub fn join(&self, name: &str) -> Path {
        let mut components = self.components.clone();
        components.push(name.to_string());
        Path { components }
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// True if `self` is `other` or a descendant of it.
    pub fn starts_with(&self, other: &Path) -> bool {
        self.components.len() >= other.components.len()
            && self.components[..other.components.len()] == other.components[..]
    }
}

impl core::fmt::Display for Path {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.components.is_empty() {
            write!(f, "/")
        } else {
            for c in &self.components {
                write!(f, "/{c}")?;
            }
            Ok(())
        }
    }
}

impl core::fmt::Debug for Path {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self}")
    }
}

impl std::str::FromStr for Path {
    type Err = TreeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

/// Metadata of a file node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// File size in bytes.
    pub size: u64,
    /// Modification time, nanoseconds on the simulation clock.
    pub mtime_nanos: u64,
}

/// One node in the tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FsNode {
    /// A regular file with real contents.
    File {
        /// Metadata.
        meta: FileMeta,
        /// The file data.
        data: Bytes,
    },
    /// A directory mapping child names to nodes.
    Dir {
        /// Children in name order.
        children: BTreeMap<String, FsNode>,
    },
}

impl FsNode {
    fn empty_dir() -> FsNode {
        FsNode::Dir {
            children: BTreeMap::new(),
        }
    }
}

/// Errors from tree operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// Path failed to parse.
    InvalidPath(String),
    /// Component exists but is a file where a directory is needed (or
    /// vice versa).
    NotADirectory(String),
    /// A directory was found where a file was expected.
    IsADirectory(String),
    /// The path does not exist.
    NotFound(String),
    /// A file already exists at the path.
    AlreadyExists(String),
}

impl core::fmt::Display for TreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TreeError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            TreeError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            TreeError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            TreeError::NotFound(p) => write!(f, "not found: {p}"),
            TreeError::AlreadyExists(p) => write!(f, "already exists: {p}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Size in bytes of one serialised FID for a child named `name`.
///
/// Mirrors the on-image encoding of [`crate::format`]: kind (1) +
/// name length (4) + name + ICB pointer (8).
pub fn fid_cost(name: &str) -> u64 {
    1 + 4 + name.len() as u64 + 8
}

/// A whole image's file tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FsTree {
    root: FsNode,
}

impl Default for FsTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FsTree {
    /// Creates an empty tree (just the root directory).
    pub fn new() -> Self {
        FsTree {
            root: FsNode::empty_dir(),
        }
    }

    /// Returns the root node (used by the on-image serializer).
    pub(crate) fn root_node(&self) -> &FsNode {
        &self.root
    }

    /// Rebuilds a tree around a parsed root node.
    pub(crate) fn from_root(root: FsNode) -> Self {
        FsTree { root }
    }

    fn node(&self, path: &Path) -> Option<&FsNode> {
        let mut cur = &self.root;
        for c in path.components() {
            match cur {
                FsNode::Dir { children } => cur = children.get(c)?,
                FsNode::File { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Returns true if the path names an existing file.
    pub fn is_file(&self, path: &Path) -> bool {
        matches!(self.node(path), Some(FsNode::File { .. }))
    }

    /// Returns true if the path names an existing directory.
    pub fn is_dir(&self, path: &Path) -> bool {
        matches!(self.node(path), Some(FsNode::Dir { .. }))
    }

    /// Returns a file's metadata.
    pub fn stat(&self, path: &Path) -> Result<FileMeta, TreeError> {
        match self.node(path) {
            Some(FsNode::File { meta, .. }) => Ok(meta.clone()),
            Some(FsNode::Dir { .. }) => Err(TreeError::IsADirectory(path.to_string())),
            None => Err(TreeError::NotFound(path.to_string())),
        }
    }

    /// Returns a file's contents.
    pub fn read(&self, path: &Path) -> Result<Bytes, TreeError> {
        match self.node(path) {
            Some(FsNode::File { data, .. }) => Ok(data.clone()),
            Some(FsNode::Dir { .. }) => Err(TreeError::IsADirectory(path.to_string())),
            None => Err(TreeError::NotFound(path.to_string())),
        }
    }

    /// Lists a directory's child names.
    pub fn list(&self, path: &Path) -> Result<Vec<String>, TreeError> {
        match self.node(path) {
            Some(FsNode::Dir { children }) => Ok(children.keys().cloned().collect()),
            Some(FsNode::File { .. }) => Err(TreeError::NotADirectory(path.to_string())),
            None => Err(TreeError::NotFound(path.to_string())),
        }
    }

    /// Creates all missing ancestor directories of `path` (mkdir -p on
    /// the parent), then returns the parent's children map.
    fn ensure_parent(&mut self, path: &Path) -> Result<&mut BTreeMap<String, FsNode>, TreeError> {
        let parent = path
            .parent()
            .ok_or_else(|| TreeError::InvalidPath(path.to_string()))?;
        let mut cur = &mut self.root;
        for c in parent.components() {
            let children = match cur {
                FsNode::Dir { children } => children,
                FsNode::File { .. } => return Err(TreeError::NotADirectory(c.clone())),
            };
            cur = children.entry(c.clone()).or_insert_with(FsNode::empty_dir);
        }
        match cur {
            FsNode::Dir { children } => Ok(children),
            FsNode::File { .. } => Err(TreeError::NotADirectory(parent.to_string())),
        }
    }

    /// Inserts a file, creating ancestor directories (the unique-file-path
    /// write of §4.4). Fails if the exact path already holds a file.
    pub fn insert(
        &mut self,
        path: &Path,
        data: impl Into<Bytes>,
        mtime_nanos: u64,
    ) -> Result<(), TreeError> {
        if path.is_root() {
            return Err(TreeError::InvalidPath(path.to_string()));
        }
        let name = path
            .name()
            .ok_or_else(|| TreeError::InvalidPath(path.to_string()))?
            .to_string();
        let children = self.ensure_parent(path)?;
        match children.get(&name) {
            Some(FsNode::File { .. }) => Err(TreeError::AlreadyExists(path.to_string())),
            Some(FsNode::Dir { .. }) => Err(TreeError::IsADirectory(path.to_string())),
            None => {
                let data = data.into();
                children.insert(
                    name,
                    FsNode::File {
                        meta: FileMeta {
                            size: data.len() as u64,
                            mtime_nanos,
                        },
                        data,
                    },
                );
                Ok(())
            }
        }
    }

    /// Overwrites an existing file's contents in place (only legal while
    /// the image is an updatable bucket; §4.6).
    pub fn update(
        &mut self,
        path: &Path,
        data: impl Into<Bytes>,
        mtime_nanos: u64,
    ) -> Result<(), TreeError> {
        let name = path
            .name()
            .ok_or_else(|| TreeError::InvalidPath(path.to_string()))?
            .to_string();
        let children = self.ensure_parent(path)?;
        match children.get_mut(&name) {
            Some(FsNode::File { meta, data: d }) => {
                let data = data.into();
                meta.size = data.len() as u64;
                meta.mtime_nanos = mtime_nanos;
                *d = data;
                Ok(())
            }
            Some(FsNode::Dir { .. }) => Err(TreeError::IsADirectory(path.to_string())),
            None => Err(TreeError::NotFound(path.to_string())),
        }
    }

    /// Removes a file (bucket recycling only; burned images are WORM).
    pub fn remove(&mut self, path: &Path) -> Result<(), TreeError> {
        let name = path
            .name()
            .ok_or_else(|| TreeError::InvalidPath(path.to_string()))?
            .to_string();
        let children = self.ensure_parent(path)?;
        match children.get(&name) {
            Some(FsNode::File { .. }) => {
                children.remove(&name);
                Ok(())
            }
            Some(FsNode::Dir { .. }) => Err(TreeError::IsADirectory(path.to_string())),
            None => Err(TreeError::NotFound(path.to_string())),
        }
    }

    /// Creates a directory path (mkdir -p).
    pub fn mkdir_p(&mut self, path: &Path) -> Result<(), TreeError> {
        if path.is_root() {
            return Ok(());
        }
        let name = path
            .name()
            .ok_or_else(|| TreeError::InvalidPath(path.to_string()))?
            .to_string();
        let children = self.ensure_parent(path)?;
        match children.get(&name) {
            Some(FsNode::File { .. }) => Err(TreeError::NotADirectory(path.to_string())),
            Some(FsNode::Dir { .. }) => Ok(()),
            None => {
                children.insert(name, FsNode::empty_dir());
                Ok(())
            }
        }
    }

    /// Visits every file in path order, yielding `(path, meta)`.
    pub fn walk_files(&self) -> Vec<(Path, FileMeta)> {
        let mut out = Vec::new();
        fn rec(node: &FsNode, path: &Path, out: &mut Vec<(Path, FileMeta)>) {
            match node {
                FsNode::File { meta, .. } => out.push((path.clone(), meta.clone())),
                FsNode::Dir { children } => {
                    for (name, child) in children {
                        rec(child, &path.join(name), out);
                    }
                }
            }
        }
        rec(&self.root, &Path::root(), &mut out);
        out
    }

    /// Visits every directory in path order (including the root).
    pub fn walk_dirs(&self) -> Vec<Path> {
        let mut out = Vec::new();
        fn rec(node: &FsNode, path: &Path, out: &mut Vec<Path>) {
            if let FsNode::Dir { children } = node {
                out.push(path.clone());
                for (name, child) in children {
                    rec(child, &path.join(name), out);
                }
            }
        }
        rec(&self.root, &Path::root(), &mut out);
        out
    }

    /// Counts files in the tree.
    pub fn file_count(&self) -> usize {
        self.walk_files().len()
    }

    /// Total payload bytes of all files.
    pub fn payload_bytes(&self) -> u64 {
        self.walk_files().iter().map(|(_, m)| m.size).sum()
    }

    /// Total on-image bytes: every node's ICB block, every directory's
    /// FID data blocks, every file's data blocks, plus the fixed volume
    /// descriptor overhead of [`crate::format`].
    pub fn image_bytes(&self) -> u64 {
        fn node_blocks(node: &FsNode) -> u64 {
            match node {
                FsNode::File { meta, .. } => 1 + blocks_for(meta.size),
                FsNode::Dir { children } => {
                    let fid_bytes: u64 = children.keys().map(|n| fid_cost(n)).sum();
                    // ICB block + FID data blocks (at least one when the
                    // directory is non-empty) + children.
                    let data_blocks = blocks_for(fid_bytes);
                    1 + data_blocks + children.values().map(node_blocks).sum::<u64>()
                }
            }
        }
        (crate::format::OVERHEAD_BLOCKS + node_blocks(&self.root)) * BLOCK_SIZE
    }

    /// The incremental on-image cost of adding a file at `path`: its
    /// entry and data blocks, any ancestor directories that would be
    /// created, and the FID-data growth of the deepest *existing*
    /// directory gaining a new child (§4.5's admission check).
    pub fn cost_of_insert(&self, path: &Path, size: u64) -> u64 {
        let comps = path.components();
        let mut cost_blocks: u64 = 1 + blocks_for(size); // File ICB + data.
                                                         // Walk down existing directories.
        let mut cur = &self.root;
        let mut depth = 0usize;
        while depth < comps.len() {
            match cur {
                FsNode::Dir { children } => match children.get(&comps[depth]) {
                    Some(child) if depth + 1 < comps.len() => {
                        cur = child;
                        depth += 1;
                    }
                    _ => break,
                },
                FsNode::File { .. } => break,
            }
        }
        // `cur` is the deepest existing directory; it gains one new child
        // FID (either the file itself or the first new directory).
        if let FsNode::Dir { children } = cur {
            let new_child_name = &comps[depth];
            let existing_fid: u64 = children.keys().map(|n| fid_cost(n)).sum();
            let grown = existing_fid + fid_cost(new_child_name);
            cost_blocks += blocks_for(grown) - blocks_for(existing_fid);
        }
        // Every missing intermediate directory: ICB + one FID data block
        // (holding its single child).
        let new_dirs = comps.len().saturating_sub(depth + 1) as u64;
        cost_blocks += new_dirs * 2;
        cost_blocks * BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn path_parsing() {
        assert_eq!(p("/").components().len(), 0);
        assert_eq!(p("/a/b/c").components(), &["a", "b", "c"]);
        assert_eq!(p("/a/b/").components(), &["a", "b"]);
        assert!(Path::parse("relative").is_err());
        assert!(Path::parse("/a/../b").is_err());
        assert!(Path::parse("/a/./b").is_err());
        assert_eq!(p("/a/b").to_string(), "/a/b");
        assert_eq!(p("/").to_string(), "/");
        assert_eq!(p("/a/b").parent().unwrap(), p("/a"));
        assert!(p("/").parent().is_none());
        assert_eq!(p("/a").join("b"), p("/a/b"));
        assert!(p("/a/b").starts_with(&p("/a")));
        assert!(!p("/ab").starts_with(&p("/a")));
    }

    #[test]
    fn interior_empty_components_are_rejected() {
        // "/a//b" must NOT alias "/a/b": under the unique-file-path
        // mechanism (§4.4) the path string is the identity of the file,
        // so two spellings resolving to the same components is namespace
        // aliasing. Only a single trailing slash is normalised.
        assert!(Path::parse("/a//b").is_err(), "interior empty aliases /a/b");
        assert!(Path::parse("//a").is_err(), "leading double slash");
        assert!(Path::parse("/a//").is_err(), "empty before trailing slash");
        assert!(Path::parse("//").is_err(), "root with interior empty");
        // The documented normalisations still hold.
        assert_eq!(p("/a/b/").components(), &["a", "b"]);
        assert_eq!(p("/").components().len(), 0);
    }

    #[test]
    fn insert_creates_ancestors() {
        let mut t = FsTree::new();
        t.insert(&p("/data/2026/log.txt"), &b"hello"[..], 1)
            .unwrap();
        assert!(t.is_dir(&p("/data")));
        assert!(t.is_dir(&p("/data/2026")));
        assert!(t.is_file(&p("/data/2026/log.txt")));
        assert_eq!(t.read(&p("/data/2026/log.txt")).unwrap().as_ref(), b"hello");
        assert_eq!(t.stat(&p("/data/2026/log.txt")).unwrap().size, 5);
        assert_eq!(t.list(&p("/data")).unwrap(), vec!["2026"]);
    }

    #[test]
    fn insert_conflicts() {
        let mut t = FsTree::new();
        t.insert(&p("/a/f"), &b"x"[..], 0).unwrap();
        assert_eq!(
            t.insert(&p("/a/f"), &b"y"[..], 0).unwrap_err(),
            TreeError::AlreadyExists("/a/f".into())
        );
        assert_eq!(
            t.insert(&p("/a"), &b"y"[..], 0).unwrap_err(),
            TreeError::IsADirectory("/a".into())
        );
        // A file cannot become a directory.
        assert!(matches!(
            t.insert(&p("/a/f/deeper"), &b"y"[..], 0).unwrap_err(),
            TreeError::NotADirectory(_)
        ));
        assert!(t.insert(&p("/"), &b"y"[..], 0).is_err());
    }

    #[test]
    fn update_and_remove() {
        let mut t = FsTree::new();
        t.insert(&p("/f"), &b"v1"[..], 1).unwrap();
        t.update(&p("/f"), &b"version2"[..], 2).unwrap();
        let m = t.stat(&p("/f")).unwrap();
        assert_eq!(m.size, 8);
        assert_eq!(m.mtime_nanos, 2);
        assert_eq!(
            t.update(&p("/missing"), &b""[..], 3).unwrap_err(),
            TreeError::NotFound("/missing".into())
        );
        t.remove(&p("/f")).unwrap();
        assert!(!t.is_file(&p("/f")));
        assert_eq!(
            t.remove(&p("/f")).unwrap_err(),
            TreeError::NotFound("/f".into())
        );
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut t = FsTree::new();
        t.mkdir_p(&p("/x/y/z")).unwrap();
        t.mkdir_p(&p("/x/y/z")).unwrap();
        t.mkdir_p(&p("/")).unwrap();
        assert!(t.is_dir(&p("/x/y/z")));
        t.insert(&p("/x/f"), &b""[..], 0).unwrap();
        assert!(matches!(
            t.mkdir_p(&p("/x/f")).unwrap_err(),
            TreeError::NotADirectory(_)
        ));
    }

    #[test]
    fn walk_enumerates_everything() {
        let mut t = FsTree::new();
        t.insert(&p("/a/1"), &b"x"[..], 0).unwrap();
        t.insert(&p("/a/2"), &b"xy"[..], 0).unwrap();
        t.insert(&p("/b/c/3"), &b"xyz"[..], 0).unwrap();
        let files = t.walk_files();
        assert_eq!(files.len(), 3);
        assert_eq!(files[0].0, p("/a/1"));
        assert_eq!(files[2].0, p("/b/c/3"));
        let dirs = t.walk_dirs();
        assert_eq!(dirs, vec![p("/"), p("/a"), p("/b"), p("/b/c")]);
        assert_eq!(t.file_count(), 3);
        assert_eq!(t.payload_bytes(), 6);
    }

    #[test]
    fn image_bytes_accounts_entries_and_data() {
        let mut t = FsTree::new();
        let empty = t.image_bytes();
        // Empty image: overhead + root ICB.
        assert_eq!(empty, (crate::format::OVERHEAD_BLOCKS + 1) * BLOCK_SIZE);
        t.insert(&p("/f"), vec![0u8; 100], 0).unwrap();
        // + file ICB + 1 data block + root FID data block.
        assert_eq!(t.image_bytes(), empty + 3 * BLOCK_SIZE);
        t.insert(&p("/g"), vec![0u8; 5000], 0).unwrap();
        // + file ICB + 3 data blocks (FIDs still fit one block).
        assert_eq!(t.image_bytes(), empty + 3 * BLOCK_SIZE + 4 * BLOCK_SIZE);
    }

    #[test]
    fn cost_of_insert_upper_bounds_reality() {
        let mut t = FsTree::new();
        t.insert(&p("/seed/x"), vec![0u8; 10], 0).unwrap();
        for (path, size) in [
            ("/seed/y", 100u64),
            ("/new/dir/chain/file", 5_000),
            ("/seed/big", 1 << 20),
        ] {
            let before = t.image_bytes();
            let est = t.cost_of_insert(&p(path), size);
            t.insert(&p(path), vec![0u8; size as usize], 0).unwrap();
            let actual = t.image_bytes() - before;
            assert!(
                est >= actual,
                "estimate {est} must cover actual {actual} for {path}"
            );
            // And not be wildly pessimistic (within 2 blocks + 5%).
            assert!(est as f64 <= actual as f64 * 1.05 + 2.0 * BLOCK_SIZE as f64);
        }
    }
}
