//! Edge cases of the UDF-profile image format: deep trees, long and
//! unicode names, tight capacities, degenerate shapes.

use ros_udf::{Bucket, FsTree, SealedImage, UdfPath, BLOCK_SIZE};

fn p(s: &str) -> UdfPath {
    s.parse().unwrap()
}

#[test]
fn very_deep_directory_chains_roundtrip() {
    let mut t = FsTree::new();
    let deep: String = (0..60).map(|i| format!("/d{i}")).collect();
    t.insert(&p(&format!("{deep}/leaf")), vec![1u8; 100], 0)
        .unwrap();
    let bytes = ros_udf::format::serialize(&t, 1, 64 * 1024 * 1024).unwrap();
    let img = SealedImage::from_bytes(bytes).unwrap();
    assert_eq!(
        img.read(&p(&format!("{deep}/leaf"))).unwrap().as_ref(),
        &[1u8; 100][..]
    );
}

#[test]
fn unicode_and_long_names_survive() {
    let mut b = Bucket::new(1, 1024 * BLOCK_SIZE);
    let long = "x".repeat(200);
    let names = [
        "файл.txt".to_string(),
        "数据-2026.log".to_string(),
        "emoji-📀.bin".to_string(),
        long,
    ];
    for (i, name) in names.iter().enumerate() {
        b.write(&p(&format!("/dir/{name}")), vec![i as u8; 50], 0)
            .unwrap();
    }
    let img = b.close().unwrap();
    let reparsed = SealedImage::from_bytes(img.bytes().clone()).unwrap();
    for (i, name) in names.iter().enumerate() {
        assert_eq!(
            reparsed.read(&p(&format!("/dir/{name}"))).unwrap().as_ref(),
            vec![i as u8; 50].as_slice(),
            "{name}"
        );
    }
}

#[test]
fn exactly_full_bucket_still_seals() {
    let mut b = Bucket::new(1, 32 * BLOCK_SIZE);
    // Fill with block-sized files until nothing fits.
    let mut i = 0;
    loop {
        let path = p(&format!("/f{i}"));
        if b.write(&path, vec![0u8; BLOCK_SIZE as usize], 0).is_err() {
            break;
        }
        i += 1;
    }
    assert!(i > 0);
    assert!(b.free_bytes() < 4 * BLOCK_SIZE);
    let img = b.close().unwrap();
    assert!(img.len() <= 32 * BLOCK_SIZE);
    assert_eq!(img.scan_files().len(), i);
}

#[test]
fn zero_byte_files_and_empty_dirs_coexist() {
    let mut t = FsTree::new();
    t.insert(&p("/empty-file"), Vec::<u8>::new(), 0).unwrap();
    t.mkdir_p(&p("/empty/dir/chain")).unwrap();
    let bytes = ros_udf::format::serialize(&t, 2, 1 << 22).unwrap();
    let img = SealedImage::from_bytes(bytes).unwrap();
    assert_eq!(img.read(&p("/empty-file")).unwrap().len(), 0);
    assert!(img.tree().is_dir(&p("/empty/dir/chain")));
    assert_eq!(img.scan_files().len(), 1);
}

#[test]
fn sibling_name_prefixes_do_not_collide() {
    let mut t = FsTree::new();
    for name in ["a", "aa", "aaa", "a.a", "a-a"] {
        t.insert(&p(&format!("/{name}")), name.as_bytes().to_vec(), 0)
            .unwrap();
    }
    let bytes = ros_udf::format::serialize(&t, 3, 1 << 22).unwrap();
    let img = SealedImage::from_bytes(bytes).unwrap();
    for name in ["a", "aa", "aaa", "a.a", "a-a"] {
        assert_eq!(
            img.read(&p(&format!("/{name}"))).unwrap().as_ref(),
            name.as_bytes()
        );
    }
}

#[test]
fn image_ids_are_preserved_through_recycling() {
    let mut b = Bucket::new(10, 64 * BLOCK_SIZE);
    b.write(&p("/x"), vec![1], 0).unwrap();
    let img1 = b.close().unwrap();
    assert_eq!(img1.image_id(), 10);
    b.recycle(11);
    b.write(&p("/y"), vec![2], 0).unwrap();
    let img2 = b.close().unwrap();
    assert_eq!(img2.image_id(), 11);
    assert!(
        img2.read(&p("/x")).is_err(),
        "recycled bucket must be clean"
    );
}

#[test]
fn sub_2kb_files_halve_usable_capacity() {
    // §4.5's worst case: "all files are less than 2KB plus extra
    // corresponding 2KB file entry, the actual space to store data is
    // only half of the bucket."
    let capacity = 512 * BLOCK_SIZE;
    let mut b = Bucket::new(1, capacity);
    let mut payload = 0u64;
    let mut i = 0;
    loop {
        let path = p(&format!("/tiny/f{i:04}"));
        let data = vec![0u8; 2000]; // Just under one block.
        if b.write(&path, data, 0).is_err() {
            break;
        }
        payload += 2000;
        i += 1;
    }
    let efficiency = payload as f64 / capacity as f64;
    assert!(
        efficiency < 0.5,
        "worst-case efficiency = {efficiency:.2}, paper says at most half"
    );
    assert!(efficiency > 0.4, "but not absurdly below half");
}

#[test]
fn large_files_approach_full_capacity() {
    // The flip side: block-multiple files waste only entry blocks.
    let capacity = 512 * BLOCK_SIZE;
    let mut b = Bucket::new(1, capacity);
    let mut payload = 0u64;
    let mut i = 0;
    loop {
        let path = p(&format!("/big/f{i}"));
        let size = 64 * BLOCK_SIZE;
        if b.write(&path, vec![0u8; size as usize], 0).is_err() {
            break;
        }
        payload += size;
        i += 1;
    }
    let efficiency = payload as f64 / capacity as f64;
    assert!(efficiency > 0.85, "bulk efficiency = {efficiency:.2}");
}
