//! Property tests for the flat namespace layer:
//!
//! - `Path` parse∘Display round-trips exactly, a single trailing slash
//!   is the only tolerated decoration, and interior empty components
//!   are always rejected (the aliasing bug class this layer fixes);
//! - distinct parsed paths never alias a `PathIndex` slot: inserting n
//!   distinct paths yields n live entries, each resolving to its own
//!   value, even when every key is forced through one collision chain.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use ros_udf::{PathIndex, UdfPath};
use std::collections::BTreeMap;

const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";

/// A random well-formed absolute path, 1–5 components deep.
fn random_path(rng: &mut impl Rng) -> String {
    let depth = 1 + rng.gen::<usize>() % 5;
    let mut s = String::new();
    for _ in 0..depth {
        s.push('/');
        loop {
            let len = 1 + rng.gen::<usize>() % 12;
            let c: String = (0..len)
                .map(|_| CHARS[rng.gen::<usize>() % CHARS.len()] as char)
                .collect();
            // `.` and `..` are reserved and rejected by the parser.
            if c != "." && c != ".." {
                s.push_str(&c);
                break;
            }
        }
    }
    s
}

proptest! {
    #[test]
    fn parse_display_roundtrip(seed in 0u64..400) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = random_path(&mut rng);
            let p: UdfPath = s.parse().unwrap();
            // Display is the exact inverse of parse.
            prop_assert_eq!(p.to_string(), s.clone());
            let again: UdfPath = p.to_string().parse().unwrap();
            prop_assert_eq!(&again, &p);
            // A single trailing slash normalizes to the same path...
            let trailing: UdfPath = format!("{s}/").parse().unwrap();
            prop_assert_eq!(&trailing, &p);
            // ...but interior or doubled empties must be rejected, not
            // collapsed into an aliasing sibling of `p`.
            let double_trailing = format!("{s}//");
            prop_assert!(double_trailing.parse::<UdfPath>().is_err());
            let double_leading = format!("/{s}");
            prop_assert!(double_leading.parse::<UdfPath>().is_err());
            let doubled = s.replacen('/', "//", 1);
            prop_assert!(doubled.parse::<UdfPath>().is_err());
        }
    }

    #[test]
    fn distinct_paths_never_share_a_slot(seed in 0u64..300) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // One initial bucket: every key starts in the same chain, so
        // aliasing would be caught even across forced collisions; the
        // table still grows (and redistributes) past the chain ceiling.
        let mut index: PathIndex<u32> = PathIndex::with_seed_and_buckets(seed, 1);
        let mut model: BTreeMap<String, u32> = BTreeMap::new();
        for i in 0..120u32 {
            let s = random_path(&mut rng);
            let p: UdfPath = s.parse().unwrap();
            let in_model = model.insert(s, i);
            let in_index = index.insert(p, i);
            // Replacement happens exactly when the string key repeats:
            // two distinct paths never land in one slot.
            prop_assert_eq!(in_index, in_model);
        }
        prop_assert_eq!(index.len(), model.len());
        for (s, v) in &model {
            let p: UdfPath = s.parse().unwrap();
            prop_assert_eq!(index.get(&p), Some(v));
        }
        // Removing half the keys leaves the other half untouched.
        let keys: Vec<String> = model.keys().cloned().collect();
        for s in keys.iter().step_by(2) {
            let p: UdfPath = s.parse().unwrap();
            prop_assert_eq!(index.remove(&p), model.remove(s).as_ref().copied());
        }
        prop_assert_eq!(index.len(), model.len());
        for (s, v) in &model {
            let p: UdfPath = s.parse().unwrap();
            prop_assert_eq!(index.get(&p), Some(v));
        }
    }
}
