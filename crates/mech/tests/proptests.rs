//! Property tests for rack geometry and the mechanical state machines.

use proptest::prelude::*;
use ros_mech::plc::Plc;
use ros_mech::{MechScheduler, RackLayout, SlotAddress};

fn layout_strategy() -> impl Strategy<Value = RackLayout> {
    (1u32..3, 1u32..90, 1u32..8, 1u32..16).prop_map(|(rollers, layers, slots, discs)| RackLayout {
        rollers,
        layers,
        slots_per_layer: slots,
        discs_per_tray: discs,
    })
}

proptest! {
    #[test]
    fn slot_index_roundtrips_for_any_layout(layout in layout_strategy()) {
        for i in 0..layout.total_slots() {
            let addr = layout.slot_at(i);
            prop_assert!(layout.contains(addr));
            prop_assert_eq!(layout.slot_index(addr), i);
        }
        prop_assert_eq!(layout.all_slots().count() as u32, layout.total_slots());
    }

    #[test]
    fn load_then_unload_restores_occupancy(
        layout in layout_strategy(),
        seed in 0u32..1000
    ) {
        let mut sched = MechScheduler::new(Plc::new_full(layout), 1);
        let slot = layout.slot_at(seed % layout.total_slots());
        let load = sched.load_array(slot, 0).unwrap();
        prop_assert!(load.duration.as_secs_f64() > 60.0);
        prop_assert_eq!(sched.bay_contents(0).unwrap(), Some(slot));
        let unload = sched.unload_array(0).unwrap();
        prop_assert!(unload.duration > load.duration - ros_sim::SimDuration::from_secs(20));
        prop_assert_eq!(sched.bay_contents(0).unwrap(), None);
        // The tray is occupied again: a second load of the same slot works.
        sched.load_array(slot, 0).unwrap();
    }

    #[test]
    fn deeper_layers_never_load_faster(
        slots in 1u32..7,
        a in 0u32..85,
        b in 0u32..85
    ) {
        let layout = RackLayout { rollers: 1, layers: 85, slots_per_layer: slots, discs_per_tray: 12 };
        let (hi, lo) = if a <= b { (a, b) } else { (b, a) };
        let mut s1 = MechScheduler::new(Plc::new_full(layout), 1);
        let t_hi = s1.load_array(SlotAddress::new(0, hi, 0), 0).unwrap().duration;
        let mut s2 = MechScheduler::new(Plc::new_full(layout), 1);
        let t_lo = s2.load_array(SlotAddress::new(0, lo, 0), 0).unwrap().duration;
        prop_assert!(t_lo >= t_hi, "layer {lo} loaded faster than layer {hi}");
    }
}
