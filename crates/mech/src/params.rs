//! Calibrated mechanical timing and power constants.
//!
//! Every constant cites the paper section or table it was taken from. The
//! composite operations in [`crate::ops`] combine these so that the system
//! reproduces Table 3 exactly:
//!
//! | Slot location   | Load (s) | Unload (s) |
//! |-----------------|----------|------------|
//! | Uppermost layer | 68.7     | 81.7       |
//! | Lowest layer    | 73.2     | 86.5       |

use ros_sim::SimDuration;

/// Default number of rollers in a rack (§3.2: "1 or 2 rollers").
pub const DEFAULT_ROLLERS: u32 = 2;

/// Layers per roller (§3.2: "organized in 85 layers").
pub const LAYERS_PER_ROLLER: u32 = 85;

/// Tray slots per layer (§3.2: "each layer containing 6 concentric slots").
pub const SLOTS_PER_LAYER: u32 = 6;

/// Discs per tray, i.e. per disc array (§3.2: "510 trays (of 12 discs each)").
pub const DISCS_PER_TRAY: u32 = 12;

/// Discs per roller: 6120 (§3.2).
pub const DISCS_PER_ROLLER: u32 = LAYERS_PER_ROLLER * SLOTS_PER_LAYER * DISCS_PER_TRAY;

/// Maximum roller rotation time for a worst-case (half-turn) repositioning
/// (§5.5: "The roller rotation time is less than 2 seconds"). The composite
/// calibration uses 1.7 s as the average observed rotation.
pub fn roller_rotation() -> SimDuration {
    SimDuration::from_millis(1_700)
}

/// Tray fan-out time: hook latched by the arm while the roller rotates the
/// inner connector to swing the tray out (§3.2).
pub fn tray_fan_out() -> SimDuration {
    SimDuration::from_millis(2_000)
}

/// Tray fan-in time: reverse rotation closing the tray (§3.2).
pub fn tray_fan_in() -> SimDuration {
    SimDuration::from_millis(2_000)
}

/// Latching and fetching a 12-disc array off a fanned-out tray (part
/// of §3.2's composite load cycle; not itemised in the paper).
pub fn array_latch() -> SimDuration {
    SimDuration::from_millis(1_000)
}

/// Arm settle/alignment overhead per composite operation, covering the
/// closed-loop sensor calibration described in §3.3.
pub fn arm_settle() -> SimDuration {
    SimDuration::from_millis(1_000)
}

/// Full-span (uppermost to lowest layer) arm travel time when empty.
///
/// §5.5 quotes "up to 5 seconds to move the robotic arm vertically between
/// bottom and top layer"; Table 3's load delta (73.2 - 68.7 = 4.5 s) pins
/// the effective one-way travel included in a load at 4.5 s because the
/// return leg overlaps with drive-tray preparation (parallel scheduling,
/// §3.2).
pub fn arm_full_travel_empty() -> SimDuration {
    SimDuration::from_millis(4_500)
}

/// Full-span arm travel time while carrying a 12-disc array.
///
/// Table 3's unload delta (86.5 - 81.7 = 4.8 s): the loaded arm moves
/// slightly slower.
pub fn arm_full_travel_loaded() -> SimDuration {
    SimDuration::from_millis(4_800)
}

/// Separating 12 discs one by one from the carried array into 12 opened
/// drive trays (§5.5: "separating 12 discs into 12 drives takes almost 61
/// seconds").
pub fn separate_array() -> SimDuration {
    SimDuration::from_millis(61_000)
}

/// Collecting 12 discs one by one from the ejected drive trays back onto
/// the arm (§5.5: "fetching discs one by one from drives takes 74 seconds").
pub fn collect_array() -> SimDuration {
    SimDuration::from_millis(74_000)
}

/// Time saved by precisely overlapping roller and arm movements (§3.2:
/// "can save up to almost 10 seconds"). When parallel scheduling is
/// disabled, composite operations serialise the return-travel leg, an extra
/// rotation and the fan-in wait, adding up to roughly this much.
pub fn parallel_scheduling_saving_max() -> SimDuration {
    SimDuration::from_millis(10_000)
}

/// Roller rotation motor power draw (§3.2: "rotating the entire roller
/// consumes less than 50 watts").
pub const ROLLER_MOTOR_WATTS: f64 = 48.0;

/// Arm vertical-motion motor power draw (engineering estimate; the paper
/// only bounds total idle/peak rack power, §5.1).
pub const ARM_MOTOR_WATTS: f64 = 30.0;

/// Tiny disc-separation motors on the arm (§3.3).
pub const SEPARATOR_MOTOR_WATTS: f64 = 8.0;

/// Required placement precision when partitioning discs into drives
/// (§3.3: "at the 0.05mm precision using a set of range sensors").
pub const PLACEMENT_TOLERANCE_MM: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roller_disc_count_matches_paper() {
        assert_eq!(DISCS_PER_ROLLER, 6_120);
        assert_eq!(DISCS_PER_ROLLER * DEFAULT_ROLLERS, 12_240);
    }

    #[test]
    fn tray_count_matches_paper() {
        assert_eq!(LAYERS_PER_ROLLER * SLOTS_PER_LAYER, 510);
    }

    #[test]
    fn rotation_under_two_seconds() {
        assert!(roller_rotation() < SimDuration::from_secs(2));
    }

    #[test]
    fn travel_times_bracket_five_seconds() {
        assert!(arm_full_travel_empty() <= SimDuration::from_secs(5));
        assert!(arm_full_travel_loaded() <= SimDuration::from_secs(5));
        assert!(arm_full_travel_loaded() > arm_full_travel_empty());
    }
}
