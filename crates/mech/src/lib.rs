//! Mechanical subsystem model of the ROS optical library.
//!
//! ROS houses up to 12,240 optical discs in a 42U rack: one or two rotatable
//! *rollers* (1.67 m tall, 433 mm diameter cylinders) each hold 6,120 discs
//! in 510 trays of 12 discs, organised in 85 layers of 6 lotus-shaped slots
//! (§3.2 of the paper). A vertically-moving *robotic arm* fans a tray out of
//! the roller, fetches its 12-disc array, lifts it above the drive stack and
//! separates the discs one by one into 12 optical drives. A PLC drives all
//! motors under closed-loop sensor feedback with 0.05 mm placement
//! precision (§3.3).
//!
//! This crate reproduces that machinery as a calibrated kinematic model:
//!
//! - [`geometry`]: rack layout, slot/tray addressing and capacity math,
//! - [`roller`]: roller rotation and tray fan-out/fan-in state machine,
//! - [`arm`]: robotic-arm travel, latch and disc separation/collection,
//! - [`sensors`]: range-sensor feedback loop reaching 0.05 mm tolerance,
//! - [`plc`]: the PLC instruction set and its interpreter,
//! - [`ops`]: composite load/unload operations with the parallel-scheduling
//!   overlap optimisation, calibrated to Table 3 of the paper
//!   (load 68.7-73.2 s, unload 81.7-86.5 s),
//! - [`params`]: every timing constant with its paper citation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod geometry;
pub mod ops;
pub mod params;
pub mod plc;
pub mod roller;
pub mod sensors;

pub use arm::RoboticArm;
pub use geometry::{DiscSlot, RackLayout, SlotAddress};
pub use ops::{MechOp, MechScheduler, OpKind};
pub use plc::{Plc, PlcError, PlcInstruction};
pub use roller::Roller;
