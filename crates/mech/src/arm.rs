//! Robotic-arm kinematics and carry state.
//!
//! The arm moves only vertically (§3.2's key simplification over
//! magazine-based libraries): it parks at a *station* above the drive
//! stack — which coincides with the uppermost layer, §5.5 — descends to a
//! layer to latch a fanned-out tray's disc array, lifts the array to the
//! station, and separates discs one by one into the open drive trays below.

use crate::geometry::RackLayout;
use crate::params;
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Vertical positions the arm can occupy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArmPosition {
    /// Parked above the drive stack (the start position, near the
    /// uppermost layer).
    Station,
    /// Aligned with a roller layer.
    Layer(u32),
}

/// What the arm is currently carrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CarryState {
    /// Gripper empty.
    Empty,
    /// Carrying a disc array of `discs` discs.
    Array {
        /// Number of discs currently held.
        discs: u32,
    },
}

/// Error conditions from arm operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArmError {
    /// Tried to latch an array while already carrying one.
    AlreadyCarrying,
    /// Tried to release or separate while carrying nothing.
    NotCarrying,
    /// Layer index outside the roller.
    NoSuchLayer(u32),
}

impl core::fmt::Display for ArmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArmError::AlreadyCarrying => write!(f, "arm is already carrying an array"),
            ArmError::NotCarrying => write!(f, "arm is not carrying an array"),
            ArmError::NoSuchLayer(l) => write!(f, "no such layer {l}"),
        }
    }
}

impl std::error::Error for ArmError {}

/// The robotic arm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoboticArm {
    layout: RackLayout,
    position: ArmPosition,
    carrying: CarryState,
    /// Cumulative vertical distance travelled, in span fractions
    /// (wear/telemetry).
    travel_fraction: f64,
}

impl RoboticArm {
    /// Creates an arm parked at the station, carrying nothing.
    pub fn new(layout: RackLayout) -> Self {
        RoboticArm {
            layout,
            position: ArmPosition::Station,
            carrying: CarryState::Empty,
            travel_fraction: 0.0,
        }
    }

    /// Returns the current vertical position.
    pub fn position(&self) -> ArmPosition {
        self.position
    }

    /// Returns the current carry state.
    pub fn carrying(&self) -> CarryState {
        self.carrying
    }

    /// Returns the cumulative travel in full-span units.
    pub fn travel_fraction(&self) -> f64 {
        self.travel_fraction
    }

    fn depth_of(&self, pos: ArmPosition) -> f64 {
        match pos {
            ArmPosition::Station => 0.0,
            ArmPosition::Layer(l) => self.layout.layer_depth_fraction(l),
        }
    }

    /// Computes the travel time between two positions without moving.
    pub fn travel_time(&self, from: ArmPosition, to: ArmPosition, loaded: bool) -> SimDuration {
        let dist = (self.depth_of(from) - self.depth_of(to)).abs();
        let full = if loaded {
            params::arm_full_travel_loaded()
        } else {
            params::arm_full_travel_empty()
        };
        full.mul_f64(dist)
    }

    /// Moves the arm to `to`, returning the travel time.
    pub fn travel_to(&mut self, to: ArmPosition) -> Result<SimDuration, ArmError> {
        if let ArmPosition::Layer(l) = to {
            if l >= self.layout.layers {
                return Err(ArmError::NoSuchLayer(l));
            }
        }
        let loaded = matches!(self.carrying, CarryState::Array { .. });
        let t = self.travel_time(self.position, to, loaded);
        self.travel_fraction += (self.depth_of(self.position) - self.depth_of(to)).abs();
        self.position = to;
        Ok(t)
    }

    /// Latches a full disc array off a fanned-out tray.
    pub fn latch_array(&mut self) -> Result<SimDuration, ArmError> {
        if self.carrying != CarryState::Empty {
            return Err(ArmError::AlreadyCarrying);
        }
        self.carrying = CarryState::Array {
            discs: self.layout.discs_per_tray,
        };
        Ok(params::array_latch())
    }

    /// Releases the carried array into a tray (the inverse of latch).
    pub fn release_array(&mut self) -> Result<SimDuration, ArmError> {
        match self.carrying {
            CarryState::Array { .. } => {
                self.carrying = CarryState::Empty;
                Ok(params::array_latch())
            }
            CarryState::Empty => Err(ArmError::NotCarrying),
        }
    }

    /// Separates the carried array into the drive trays, one disc at a
    /// time from the bottom (§3.2), leaving the gripper empty.
    ///
    /// Returns the total separation time (≈61 s for a full array; a partial
    /// array takes proportionally less).
    pub fn separate_into_drives(&mut self) -> Result<SimDuration, ArmError> {
        match self.carrying {
            CarryState::Array { discs } => {
                self.carrying = CarryState::Empty;
                let full = params::separate_array();
                Ok(full.mul_f64(discs as f64 / self.layout.discs_per_tray as f64))
            }
            CarryState::Empty => Err(ArmError::NotCarrying),
        }
    }

    /// Collects `discs` discs one by one from ejected drive trays onto the
    /// gripper (≈74 s for a full array; §5.5).
    pub fn collect_from_drives(&mut self, discs: u32) -> Result<SimDuration, ArmError> {
        if self.carrying != CarryState::Empty {
            return Err(ArmError::AlreadyCarrying);
        }
        let discs = discs.min(self.layout.discs_per_tray);
        self.carrying = CarryState::Array { discs };
        let full = params::collect_array();
        Ok(full.mul_f64(discs as f64 / self.layout.discs_per_tray as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RackLayout;

    fn arm() -> RoboticArm {
        RoboticArm::new(RackLayout::default())
    }

    #[test]
    fn starts_parked_and_empty() {
        let a = arm();
        assert_eq!(a.position(), ArmPosition::Station);
        assert_eq!(a.carrying(), CarryState::Empty);
    }

    #[test]
    fn travel_to_uppermost_is_free() {
        let mut a = arm();
        let t = a.travel_to(ArmPosition::Layer(0)).unwrap();
        assert_eq!(t, SimDuration::ZERO);
    }

    #[test]
    fn travel_to_lowest_takes_full_span() {
        let mut a = arm();
        let t = a.travel_to(ArmPosition::Layer(84)).unwrap();
        assert_eq!(t, params::arm_full_travel_empty());
    }

    #[test]
    fn loaded_travel_is_slower() {
        let mut a = arm();
        a.latch_array().unwrap();
        let t = a.travel_to(ArmPosition::Layer(84)).unwrap();
        assert_eq!(t, params::arm_full_travel_loaded());
    }

    #[test]
    fn travel_rejects_bad_layer() {
        let mut a = arm();
        assert_eq!(
            a.travel_to(ArmPosition::Layer(85)).unwrap_err(),
            ArmError::NoSuchLayer(85)
        );
    }

    #[test]
    fn latch_and_separate_cycle() {
        let mut a = arm();
        a.latch_array().unwrap();
        assert_eq!(a.carrying(), CarryState::Array { discs: 12 });
        assert_eq!(a.latch_array().unwrap_err(), ArmError::AlreadyCarrying);
        let t = a.separate_into_drives().unwrap();
        assert_eq!(t, params::separate_array());
        assert_eq!(a.carrying(), CarryState::Empty);
        assert_eq!(a.separate_into_drives().unwrap_err(), ArmError::NotCarrying);
    }

    #[test]
    fn collect_and_release_cycle() {
        let mut a = arm();
        let t = a.collect_from_drives(12).unwrap();
        assert_eq!(t, params::collect_array());
        assert_eq!(
            a.collect_from_drives(12).unwrap_err(),
            ArmError::AlreadyCarrying
        );
        a.release_array().unwrap();
        assert_eq!(a.release_array().unwrap_err(), ArmError::NotCarrying);
    }

    #[test]
    fn partial_array_scales_linearly() {
        let mut a = arm();
        let t = a.collect_from_drives(6).unwrap();
        assert_eq!(t, params::collect_array() / 2);
        let mut b = arm();
        b.carrying = CarryState::Array { discs: 3 };
        let t = b.separate_into_drives().unwrap();
        assert_eq!(t, params::separate_array() / 4);
    }

    #[test]
    fn travel_accumulates_wear() {
        let mut a = arm();
        a.travel_to(ArmPosition::Layer(84)).unwrap();
        a.travel_to(ArmPosition::Station).unwrap();
        assert!((a.travel_fraction() - 2.0).abs() < 1e-12);
    }
}
