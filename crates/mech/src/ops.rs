//! Composite mechanical operations and the parallel-movement scheduler.
//!
//! The system controller never issues raw PLC instructions; it requests
//! *composite* operations — "load the disc array from slot S into drive bay
//! B" — which the [`MechScheduler`] expands into a PLC instruction sequence
//! and times with the overlap rules of §3.2 ("Precisely scheduling
//! movements of the roller and robotic arm in parallel can further reduce
//! the delay of conveying discs, which can save up to almost 10 seconds").
//!
//! With parallel scheduling enabled (the default, matching the prototype),
//! the composed latencies reproduce Table 3:
//!
//! - load: 68.7 s (uppermost layer) to 73.2 s (lowest layer),
//! - unload: 81.7 s to 86.5 s.

use crate::arm::ArmPosition;
use crate::geometry::SlotAddress;
use crate::params;
use crate::plc::{Plc, PlcError, PlcInstruction};
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The kind of a composite mechanical operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Convey a disc array from its tray into the drives of a bay.
    LoadArray,
    /// Convey a disc array from a bay's drives back to its tray.
    UnloadArray,
}

/// A completed (timed) composite operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MechOp {
    /// What was performed.
    pub kind: OpKind,
    /// The tray involved.
    pub slot: SlotAddress,
    /// The drive bay involved.
    pub bay: usize,
    /// Total wall-clock (simulated) duration including overlaps.
    pub duration: SimDuration,
    /// Labelled breakdown of the serial (non-overlapped) steps.
    pub steps: Vec<(String, SimDuration)>,
    /// Motor energy consumed, in joules.
    pub energy_joules: f64,
}

/// Errors from composite scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MechError {
    /// Underlying PLC failure.
    Plc(PlcError),
    /// The requested drive bay does not exist.
    NoSuchBay(usize),
    /// Load requested into a bay that already holds an array.
    BayOccupied(usize),
    /// Unload requested from an empty bay.
    BayEmpty(usize),
    /// A transient mechanical misfeed (latch slip, sensor glitch); the
    /// same operation is expected to succeed on retry.
    Transient(OpKind),
}

impl From<PlcError> for MechError {
    fn from(e: PlcError) -> Self {
        MechError::Plc(e)
    }
}

impl core::fmt::Display for MechError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MechError::Plc(e) => write!(f, "plc: {e}"),
            MechError::NoSuchBay(b) => write!(f, "no such drive bay {b}"),
            MechError::BayOccupied(b) => write!(f, "drive bay {b} is occupied"),
            MechError::BayEmpty(b) => write!(f, "drive bay {b} is empty"),
            MechError::Transient(k) => write!(f, "transient mechanical misfeed during {k:?}"),
        }
    }
}

impl std::error::Error for MechError {}

/// Composes PLC instructions into timed load/unload operations and tracks
/// which disc array occupies which drive bay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MechScheduler {
    plc: Plc,
    /// Which tray's array currently sits in each drive bay.
    bays: Vec<Option<SlotAddress>>,
    /// Overlap roller/arm movements (§3.2). Disable for the ablation bench.
    pub parallel_scheduling: bool,
    /// Armed transient misfeeds: each pending fault spoils the next
    /// composite operation with [`MechError::Transient`].
    pending_faults: u32,
}

impl MechScheduler {
    /// Creates a scheduler over a fully-populated PLC with `bays` drive
    /// bays (each bay is a set of 12 drives).
    pub fn new(plc: Plc, bays: usize) -> Self {
        MechScheduler {
            plc,
            bays: vec![None; bays],
            parallel_scheduling: true,
            pending_faults: 0,
        }
    }

    /// Arms `n` transient misfeeds: each spoils one upcoming composite
    /// operation, which leaves the machine idle and retryable.
    pub fn inject_transient_faults(&mut self, n: u32) {
        self.pending_faults = self.pending_faults.saturating_add(n);
    }

    /// Consumes one armed misfeed, if any, failing the operation `kind`.
    fn take_transient_fault(&mut self, kind: OpKind) -> Result<(), MechError> {
        if self.pending_faults > 0 {
            self.pending_faults -= 1;
            return Err(MechError::Transient(kind));
        }
        Ok(())
    }

    /// Immutable access to the PLC (e.g. for occupancy queries).
    pub fn plc(&self) -> &Plc {
        &self.plc
    }

    /// Returns the tray whose array occupies `bay`, if any.
    pub fn bay_contents(&self, bay: usize) -> Result<Option<SlotAddress>, MechError> {
        self.bays.get(bay).copied().ok_or(MechError::NoSuchBay(bay))
    }

    /// Returns the index of a free bay, if any.
    pub fn free_bay(&self) -> Option<usize> {
        self.bays.iter().position(Option::is_none)
    }

    /// Returns the number of drive bays.
    pub fn bay_count(&self) -> usize {
        self.bays.len()
    }

    /// Loads the disc array in `slot` into drive bay `bay`.
    ///
    /// Sequence (§3.2): rotate the roller, fan the tray out, descend, latch
    /// the array, lift it above the drives (overlapped with the tray
    /// fanning back in when parallel scheduling is on), then separate the
    /// 12 discs one by one into the drives.
    pub fn load_array(&mut self, slot: SlotAddress, bay: usize) -> Result<MechOp, MechError> {
        match self.bays.get(bay) {
            None => return Err(MechError::NoSuchBay(bay)),
            Some(Some(_)) => return Err(MechError::BayOccupied(bay)),
            Some(None) => {}
        }
        self.take_transient_fault(OpKind::LoadArray)?;
        let roller = slot.roller;
        let mut steps: Vec<(String, SimDuration)> = Vec::new();
        let mut overlapped = SimDuration::ZERO;

        let settle = params::arm_settle();
        steps.push(("sensor settle".into(), settle));

        let d = self.plc.execute(PlcInstruction::RotateTo(slot))?;
        steps.push(("rotate roller".into(), d));
        let d = self.plc.execute(PlcInstruction::FanOut(slot))?;
        steps.push(("fan out tray".into(), d));
        let d = self.plc.execute(PlcInstruction::MoveArm {
            roller,
            to: ArmPosition::Layer(slot.layer),
        })?;
        steps.push(("descend to layer".into(), d));
        let d = match self.plc.execute(PlcInstruction::LatchArray(slot)) {
            Ok(d) => d,
            Err(e) => {
                // Recover: park the arm and close the tray so the machine
                // is left in a consistent idle state.
                let _ = self.plc.execute(PlcInstruction::MoveArm {
                    roller,
                    to: ArmPosition::Station,
                });
                let _ = self.plc.execute(PlcInstruction::FanIn(slot));
                return Err(e.into());
            }
        };
        steps.push(("latch array".into(), d));
        // Lift back to the station. With parallel scheduling the lift
        // overlaps the tray fan-in and the drives opening their trays, so
        // it does not appear on the critical path.
        let lift = self.plc.execute(PlcInstruction::MoveArm {
            roller,
            to: ArmPosition::Station,
        })?;
        if self.parallel_scheduling {
            overlapped += lift;
        } else {
            steps.push(("lift array".into(), lift));
        }
        let d = self.plc.execute(PlcInstruction::FanIn(slot))?;
        steps.push(("fan in tray".into(), d));
        let d = self
            .plc
            .execute(PlcInstruction::SeparateToDrives { roller })?;
        steps.push(("separate discs into drives".into(), d));

        self.bays[bay] = Some(slot);
        Ok(self.finish(OpKind::LoadArray, slot, bay, steps, overlapped))
    }

    /// Unloads the disc array in drive bay `bay` back to its home tray.
    ///
    /// Sequence (§3.2): collect the 12 discs one by one from the ejected
    /// drive trays, rotate/fan out the home tray, descend with the array,
    /// release it, fan in; the empty return leg overlaps with the fan-in
    /// when parallel scheduling is on.
    pub fn unload_array(&mut self, bay: usize) -> Result<MechOp, MechError> {
        let slot = match self.bays.get(bay) {
            None => return Err(MechError::NoSuchBay(bay)),
            Some(None) => return Err(MechError::BayEmpty(bay)),
            Some(Some(s)) => *s,
        };
        self.take_transient_fault(OpKind::UnloadArray)?;
        let roller = slot.roller;
        let discs = self.plc.layout().discs_per_tray;
        let mut steps: Vec<(String, SimDuration)> = Vec::new();
        let mut overlapped = SimDuration::ZERO;

        let d = self
            .plc
            .execute(PlcInstruction::CollectFromDrives { roller, discs })?;
        steps.push(("collect discs from drives".into(), d));

        let settle = params::arm_settle();
        steps.push(("sensor settle".into(), settle));

        let d = self.plc.execute(PlcInstruction::RotateTo(slot))?;
        steps.push(("rotate roller".into(), d));
        let d = self.plc.execute(PlcInstruction::FanOut(slot))?;
        steps.push(("fan out tray".into(), d));
        let d = self.plc.execute(PlcInstruction::MoveArm {
            roller,
            to: ArmPosition::Layer(slot.layer),
        })?;
        steps.push(("descend with array".into(), d));
        let d = self.plc.execute(PlcInstruction::ReleaseArray(slot))?;
        steps.push(("release array".into(), d));
        let ret = self.plc.execute(PlcInstruction::MoveArm {
            roller,
            to: ArmPosition::Station,
        })?;
        if self.parallel_scheduling {
            overlapped += ret;
        } else {
            steps.push(("return to station".into(), ret));
        }
        let d = self.plc.execute(PlcInstruction::FanIn(slot))?;
        steps.push(("fan in tray".into(), d));

        self.bays[bay] = None;
        Ok(self.finish(OpKind::UnloadArray, slot, bay, steps, overlapped))
    }

    fn finish(
        &self,
        kind: OpKind,
        slot: SlotAddress,
        bay: usize,
        steps: Vec<(String, SimDuration)>,
        overlapped: SimDuration,
    ) -> MechOp {
        let duration: SimDuration = steps.iter().map(|(_, d)| *d).sum();
        // Energy: motors draw power during their step plus the overlapped
        // (hidden but still powered) movements.
        let motor_secs = duration.as_secs_f64() + overlapped.as_secs_f64();
        let energy_joules = motor_secs * params::ARM_MOTOR_WATTS
            + params::roller_rotation().as_secs_f64() * params::ROLLER_MOTOR_WATTS
            + params::separate_array().as_secs_f64() * params::SEPARATOR_MOTOR_WATTS * 0.5;
        MechOp {
            kind,
            slot,
            bay,
            duration,
            steps,
            energy_joules,
        }
    }
}

/// The scheduler accepts mechanical fault kinds; everything else is for
/// another layer.
impl ros_faults::FaultSink for MechScheduler {
    fn inject_fault(&mut self, event: &ros_faults::FaultEvent) -> ros_faults::InjectionOutcome {
        use ros_faults::{FaultKind, InjectionOutcome};
        match &event.kind {
            FaultKind::MechTransient { count } => {
                self.inject_transient_faults(*count);
                InjectionOutcome::Injected
            }
            _ => InjectionOutcome::NotApplicable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RackLayout;

    fn sched() -> MechScheduler {
        MechScheduler::new(Plc::new_full(RackLayout::default()), 2)
    }

    fn secs(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }

    #[test]
    fn table3_load_uppermost_layer() {
        let mut s = sched();
        let op = s.load_array(SlotAddress::new(0, 0, 0), 0).unwrap();
        assert!(
            (secs(op.duration) - 68.7).abs() < 0.05,
            "load uppermost = {:.3}s, paper says 68.7s",
            secs(op.duration)
        );
    }

    #[test]
    fn table3_load_lowest_layer() {
        let mut s = sched();
        let op = s.load_array(SlotAddress::new(0, 84, 0), 0).unwrap();
        assert!(
            (secs(op.duration) - 73.2).abs() < 0.05,
            "load lowest = {:.3}s, paper says 73.2s",
            secs(op.duration)
        );
    }

    #[test]
    fn table3_unload_uppermost_layer() {
        let mut s = sched();
        s.load_array(SlotAddress::new(0, 0, 0), 0).unwrap();
        let op = s.unload_array(0).unwrap();
        assert!(
            (secs(op.duration) - 81.7).abs() < 0.05,
            "unload uppermost = {:.3}s, paper says 81.7s",
            secs(op.duration)
        );
    }

    #[test]
    fn table3_unload_lowest_layer() {
        let mut s = sched();
        s.load_array(SlotAddress::new(0, 84, 0), 0).unwrap();
        let op = s.unload_array(0).unwrap();
        assert!(
            (secs(op.duration) - 86.5).abs() < 0.05,
            "unload lowest = {:.3}s, paper says 86.5s",
            secs(op.duration)
        );
    }

    #[test]
    fn parallel_scheduling_saves_almost_ten_seconds_per_cycle() {
        let slot = SlotAddress::new(0, 84, 0);
        let mut fast = sched();
        let f = secs(fast.load_array(slot, 0).unwrap().duration)
            + secs(fast.unload_array(0).unwrap().duration);
        let mut slow = sched();
        slow.parallel_scheduling = false;
        let s = secs(slow.load_array(slot, 0).unwrap().duration)
            + secs(slow.unload_array(0).unwrap().duration);
        let saving = s - f;
        assert!(
            saving > 7.0 && saving <= params::parallel_scheduling_saving_max().as_secs_f64(),
            "saving = {saving:.2}s, paper says up to almost 10 s"
        );
    }

    #[test]
    fn bay_tracking_round_trip() {
        let mut s = sched();
        let slot = SlotAddress::new(1, 10, 3);
        assert_eq!(s.free_bay(), Some(0));
        s.load_array(slot, 0).unwrap();
        assert_eq!(s.bay_contents(0).unwrap(), Some(slot));
        assert_eq!(s.free_bay(), Some(1));
        let op = s.unload_array(0).unwrap();
        assert_eq!(op.slot, slot);
        assert_eq!(s.bay_contents(0).unwrap(), None);
    }

    #[test]
    fn cannot_load_into_occupied_bay() {
        let mut s = sched();
        s.load_array(SlotAddress::new(0, 0, 0), 0).unwrap();
        let err = s.load_array(SlotAddress::new(0, 1, 0), 0).unwrap_err();
        assert_eq!(err, MechError::BayOccupied(0));
    }

    #[test]
    fn cannot_unload_empty_bay() {
        let mut s = sched();
        assert_eq!(s.unload_array(1).unwrap_err(), MechError::BayEmpty(1));
        assert_eq!(s.unload_array(7).unwrap_err(), MechError::NoSuchBay(7));
    }

    #[test]
    fn load_reports_step_breakdown() {
        let mut s = sched();
        let op = s.load_array(SlotAddress::new(0, 40, 2), 0).unwrap();
        let names: Vec<&str> = op.steps.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"separate discs into drives"));
        assert!(names.contains(&"fan out tray"));
        let sum: SimDuration = op.steps.iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, op.duration);
        assert!(op.energy_joules > 0.0);
    }

    #[test]
    fn transient_fault_spoils_one_op_then_clears() {
        let mut s = sched();
        let slot = SlotAddress::new(0, 0, 0);
        s.inject_transient_faults(1);
        assert_eq!(
            s.load_array(slot, 0).unwrap_err(),
            MechError::Transient(OpKind::LoadArray)
        );
        // The misfeed left the machine idle: the bay is still free and the
        // very same request succeeds on retry.
        assert_eq!(s.bay_contents(0).unwrap(), None);
        s.load_array(slot, 0).unwrap();
        s.inject_transient_faults(1);
        assert_eq!(
            s.unload_array(0).unwrap_err(),
            MechError::Transient(OpKind::UnloadArray)
        );
        assert_eq!(s.bay_contents(0).unwrap(), Some(slot));
        s.unload_array(0).unwrap();
    }

    #[test]
    fn fault_sink_arms_mech_transients_only() {
        use ros_faults::{FaultEvent, FaultKind, FaultSink, InjectionOutcome};
        let mut s = sched();
        let armed = s.inject_fault(&FaultEvent {
            seq: 0,
            at_op: 0,
            kind: FaultKind::MechTransient { count: 2 },
        });
        assert_eq!(armed, InjectionOutcome::Injected);
        let other = s.inject_fault(&FaultEvent {
            seq: 1,
            at_op: 0,
            kind: FaultKind::DriveDeath { bay: 0, drive: 0 },
        });
        assert_eq!(other, InjectionOutcome::NotApplicable);
        assert!(s.load_array(SlotAddress::new(0, 0, 0), 0).is_err());
        assert!(s.load_array(SlotAddress::new(0, 0, 0), 0).is_err());
        assert!(s.load_array(SlotAddress::new(0, 0, 0), 0).is_ok());
    }

    #[test]
    fn loading_empty_tray_fails_cleanly() {
        let mut s = sched();
        let slot = SlotAddress::new(0, 0, 0);
        s.load_array(slot, 0).unwrap();
        s.unload_array(0).unwrap();
        s.load_array(slot, 0).unwrap();
        // Tray is now empty; a second load of the same slot must fail.
        let err = s.load_array(slot, 1).unwrap_err();
        assert!(matches!(err, MechError::Plc(_)));
        // And the bay must remain free.
        assert_eq!(s.bay_contents(1).unwrap(), None);
    }
}
