//! Sensor feedback and closed-loop positioning.
//!
//! §3.3: "ROS monitors all the sensors to continuously track the current
//! mechanical states and to calibrate the current operations. For instance,
//! ROS partitions discs into drives at the 0.05mm precision using a set of
//! range sensors." This module models that feedback loop: a noisy range
//! sensor plus a proportional controller that iterates until the measured
//! error is within tolerance.

use crate::params;
use ros_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// A range sensor with Gaussian-ish (triangular) measurement noise.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RangeSensor {
    /// 1-sigma-equivalent measurement noise, in millimetres.
    pub noise_mm: f64,
}

impl Default for RangeSensor {
    fn default() -> Self {
        // An order of magnitude finer than the required placement
        // tolerance, as any usable sensor must be.
        RangeSensor { noise_mm: 0.005 }
    }
}

impl RangeSensor {
    /// Measures a true position, adding bounded symmetric noise.
    pub fn measure(&self, true_mm: f64, rng: &mut SimRng) -> f64 {
        // Sum of two uniforms gives a triangular distribution in
        // [-noise, +noise] with most mass near zero.
        let n = (rng.unit_f64() + rng.unit_f64() - 1.0) * self.noise_mm;
        true_mm + n
    }
}

/// Result of a completed positioning feedback loop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SettleReport {
    /// Number of measure-adjust iterations performed.
    pub iterations: u32,
    /// Residual true error after settling, in millimetres.
    pub residual_mm: f64,
    /// Total time spent settling.
    pub elapsed: SimDuration,
}

/// A proportional feedback controller positioning an actuator to a target
/// within [`params::PLACEMENT_TOLERANCE_MM`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedbackLoop {
    /// The sensor closing the loop.
    pub sensor: RangeSensor,
    /// Proportional gain per iteration (fraction of measured error
    /// corrected each step).
    pub gain: f64,
    /// Time per measure-adjust iteration.
    pub step_time: SimDuration,
    /// Abort bound so that a mis-tuned loop cannot hang the machine.
    pub max_iterations: u32,
}

impl Default for FeedbackLoop {
    fn default() -> Self {
        FeedbackLoop {
            sensor: RangeSensor::default(),
            gain: 0.8,
            step_time: SimDuration::from_millis(20),
            max_iterations: 64,
        }
    }
}

/// Error from a feedback loop that failed to converge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SettleTimeout {
    /// The residual error when the loop gave up, in millimetres.
    pub residual_mm: f64,
}

impl core::fmt::Display for SettleTimeout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "feedback loop failed to settle (residual {:.3} mm)",
            self.residual_mm
        )
    }
}

impl std::error::Error for SettleTimeout {}

impl FeedbackLoop {
    /// Drives an actuator from `initial_error_mm` until the *measured*
    /// error is within the placement tolerance.
    ///
    /// Returns how long the settling took; the PLC adds this to each disc
    /// separation step.
    pub fn settle(
        &self,
        initial_error_mm: f64,
        rng: &mut SimRng,
    ) -> Result<SettleReport, SettleTimeout> {
        let tol = params::PLACEMENT_TOLERANCE_MM;
        let mut error = initial_error_mm;
        let mut iterations = 0u32;
        loop {
            let measured = self.sensor.measure(error, rng);
            if measured.abs() <= tol && error.abs() <= tol * 1.5 {
                return Ok(SettleReport {
                    iterations,
                    residual_mm: error,
                    elapsed: self.step_time * iterations as u64,
                });
            }
            if iterations >= self.max_iterations {
                return Err(SettleTimeout { residual_mm: error });
            }
            // Correct the measured error by the proportional gain.
            error -= self.gain * measured;
            iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_noise_is_bounded() {
        let s = RangeSensor { noise_mm: 0.01 };
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let m = s.measure(5.0, &mut rng);
            assert!((m - 5.0).abs() <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn loop_settles_from_large_error() {
        let fb = FeedbackLoop::default();
        let mut rng = SimRng::seed_from(2);
        let rep = fb.settle(2.0, &mut rng).expect("must settle");
        assert!(rep.residual_mm.abs() <= params::PLACEMENT_TOLERANCE_MM * 1.5);
        assert!(rep.iterations > 0);
        assert_eq!(rep.elapsed, fb.step_time * rep.iterations as u64);
    }

    #[test]
    fn already_in_tolerance_is_instant() {
        let fb = FeedbackLoop::default();
        let mut rng = SimRng::seed_from(3);
        let rep = fb.settle(0.0, &mut rng).expect("must settle");
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.elapsed, SimDuration::ZERO);
    }

    #[test]
    fn zero_gain_times_out() {
        let fb = FeedbackLoop {
            gain: 0.0,
            ..FeedbackLoop::default()
        };
        let mut rng = SimRng::seed_from(4);
        let err = fb.settle(1.0, &mut rng).unwrap_err();
        assert!(err.residual_mm.abs() > params::PLACEMENT_TOLERANCE_MM);
    }

    #[test]
    fn settling_is_deterministic_per_seed() {
        let fb = FeedbackLoop::default();
        let a = fb.settle(1.5, &mut SimRng::seed_from(9)).unwrap();
        let b = fb.settle(1.5, &mut SimRng::seed_from(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn convergence_over_many_seeds() {
        let fb = FeedbackLoop::default();
        for seed in 0..200 {
            let mut rng = SimRng::seed_from(seed);
            let rep = fb.settle(3.0, &mut rng).expect("loop must converge");
            assert!(rep.iterations <= fb.max_iterations);
        }
    }
}
