//! Roller rotation and tray state machine.
//!
//! The roller is a rotatable cylinder; to present a slot to the robotic arm
//! it rotates so the slot's angular sector faces the arm column, then the
//! targeted tray *fans out* on its inner-side connector while the arm locks
//! the outer-side hook (§3.2). Only one tray may be fanned out at a time.

use crate::geometry::{RackLayout, SlotAddress};
use crate::params;
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Occupancy of a tray slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrayOccupancy {
    /// The tray holds a full disc array.
    Occupied,
    /// The tray is empty (its array is in the drives, or never loaded).
    Empty,
}

/// Error conditions from roller operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollerError {
    /// The addressed slot does not exist in this roller.
    NoSuchSlot(SlotAddress),
    /// A different tray is currently fanned out.
    TrayBusy(SlotAddress),
    /// The addressed tray is not fanned out.
    NotFannedOut(SlotAddress),
    /// The tray is already fanned out.
    AlreadyFannedOut(SlotAddress),
    /// Attempted to take an array from an empty tray.
    TrayEmpty(SlotAddress),
    /// Attempted to put an array into an occupied tray.
    TrayOccupied(SlotAddress),
}

impl core::fmt::Display for RollerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RollerError::NoSuchSlot(s) => write!(f, "no such slot {s:?}"),
            RollerError::TrayBusy(s) => write!(f, "another tray {s:?} is fanned out"),
            RollerError::NotFannedOut(s) => write!(f, "tray {s:?} is not fanned out"),
            RollerError::AlreadyFannedOut(s) => write!(f, "tray {s:?} already fanned out"),
            RollerError::TrayEmpty(s) => write!(f, "tray {s:?} is empty"),
            RollerError::TrayOccupied(s) => write!(f, "tray {s:?} is occupied"),
        }
    }
}

impl std::error::Error for RollerError {}

/// One roller: rotation position plus per-tray state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Roller {
    layout: RackLayout,
    index: u32,
    /// Angular position expressed as the slot column currently facing the
    /// arm, or `None` when unaligned (initially, and after every fan-in,
    /// whose reverse rotation perturbs the alignment; §3.2).
    facing: Option<u32>,
    /// Currently fanned-out tray, if any.
    fanned_out: Option<SlotAddress>,
    /// Occupancy per slot (dense, indexed by layer * slots + slot).
    occupancy: Vec<TrayOccupancy>,
    /// Cumulative count of rotations performed (wear/telemetry).
    rotations: u64,
}

impl Roller {
    /// Creates a roller with every tray occupied (a factory-fresh,
    /// fully-populated library).
    pub fn new_full(layout: RackLayout, index: u32) -> Self {
        let n = (layout.layers * layout.slots_per_layer) as usize;
        Roller {
            layout,
            index,
            facing: None,
            fanned_out: None,
            occupancy: vec![TrayOccupancy::Occupied; n],
            rotations: 0,
        }
    }

    /// Creates a roller with every tray empty.
    pub fn new_empty(layout: RackLayout, index: u32) -> Self {
        let mut r = Self::new_full(layout, index);
        r.occupancy.fill(TrayOccupancy::Empty);
        r
    }

    /// Returns this roller's index in the rack.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Returns the number of rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Returns the currently fanned-out tray, if any.
    pub fn fanned_out(&self) -> Option<SlotAddress> {
        self.fanned_out
    }

    fn dense(&self, addr: SlotAddress) -> Result<usize, RollerError> {
        if addr.roller != self.index || !self.layout.contains(addr) {
            return Err(RollerError::NoSuchSlot(addr));
        }
        Ok((addr.layer * self.layout.slots_per_layer + addr.slot) as usize)
    }

    /// Returns the occupancy of a tray.
    pub fn occupancy(&self, addr: SlotAddress) -> Result<TrayOccupancy, RollerError> {
        Ok(self.occupancy[self.dense(addr)?])
    }

    /// Counts occupied trays.
    pub fn occupied_trays(&self) -> usize {
        self.occupancy
            .iter()
            .filter(|&&o| o == TrayOccupancy::Occupied)
            .count()
    }

    /// Rotates the roller so `slot` faces the arm, returning the rotation
    /// time (zero if already facing).
    pub fn rotate_to(&mut self, addr: SlotAddress) -> Result<SimDuration, RollerError> {
        self.dense(addr)?;
        if let Some(open) = self.fanned_out {
            // Rotating with a fanned-out tray would shear it off.
            return Err(RollerError::TrayBusy(open));
        }
        if self.facing == Some(addr.slot) {
            return Ok(SimDuration::ZERO);
        }
        self.facing = Some(addr.slot);
        self.rotations += 1;
        Ok(params::roller_rotation())
    }

    /// Fans the addressed tray out toward the arm.
    ///
    /// The slot must already face the arm (call [`Roller::rotate_to`]
    /// first) and no other tray may be open.
    pub fn fan_out(&mut self, addr: SlotAddress) -> Result<SimDuration, RollerError> {
        self.dense(addr)?;
        if let Some(open) = self.fanned_out {
            return Err(if open == addr {
                RollerError::AlreadyFannedOut(addr)
            } else {
                RollerError::TrayBusy(open)
            });
        }
        if self.facing != Some(addr.slot) {
            // The PLC always rotates first; reaching here is a scheduling bug.
            return Err(RollerError::NotFannedOut(addr));
        }
        self.fanned_out = Some(addr);
        Ok(params::tray_fan_out())
    }

    /// Fans the open tray back into the roller (reverse rotation).
    pub fn fan_in(&mut self, addr: SlotAddress) -> Result<SimDuration, RollerError> {
        self.dense(addr)?;
        if self.fanned_out != Some(addr) {
            return Err(RollerError::NotFannedOut(addr));
        }
        self.fanned_out = None;
        // The reverse rotation that closes the tray leaves the roller
        // unaligned, so the next rotate_to pays full rotation time.
        self.facing = None;
        Ok(params::tray_fan_in())
    }

    /// Removes the disc array from a fanned-out tray (the arm latched it).
    pub fn take_array(&mut self, addr: SlotAddress) -> Result<(), RollerError> {
        let i = self.dense(addr)?;
        if self.fanned_out != Some(addr) {
            return Err(RollerError::NotFannedOut(addr));
        }
        if self.occupancy[i] == TrayOccupancy::Empty {
            return Err(RollerError::TrayEmpty(addr));
        }
        self.occupancy[i] = TrayOccupancy::Empty;
        Ok(())
    }

    /// Places a disc array into a fanned-out empty tray.
    pub fn put_array(&mut self, addr: SlotAddress) -> Result<(), RollerError> {
        let i = self.dense(addr)?;
        if self.fanned_out != Some(addr) {
            return Err(RollerError::NotFannedOut(addr));
        }
        if self.occupancy[i] == TrayOccupancy::Occupied {
            return Err(RollerError::TrayOccupied(addr));
        }
        self.occupancy[i] = TrayOccupancy::Occupied;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roller() -> Roller {
        Roller::new_full(RackLayout::tiny(), 0)
    }

    #[test]
    fn fresh_roller_is_fully_occupied() {
        let r = roller();
        assert_eq!(r.occupied_trays(), 8);
        assert_eq!(
            r.occupancy(SlotAddress::new(0, 0, 0)).unwrap(),
            TrayOccupancy::Occupied
        );
    }

    #[test]
    fn empty_roller_has_no_arrays() {
        let r = Roller::new_empty(RackLayout::tiny(), 0);
        assert_eq!(r.occupied_trays(), 0);
    }

    #[test]
    fn rotation_is_idempotent_per_column() {
        let mut r = roller();
        let a = SlotAddress::new(0, 0, 1);
        assert_eq!(r.rotate_to(a).unwrap(), params::roller_rotation());
        assert_eq!(r.rotate_to(a).unwrap(), SimDuration::ZERO);
        // A different layer in the same column needs no rotation either.
        assert_eq!(
            r.rotate_to(SlotAddress::new(0, 3, 1)).unwrap(),
            SimDuration::ZERO
        );
        assert_eq!(r.rotations(), 1);
    }

    #[test]
    fn full_fetch_cycle() {
        let mut r = roller();
        let a = SlotAddress::new(0, 2, 0);
        r.rotate_to(a).unwrap();
        r.fan_out(a).unwrap();
        r.take_array(a).unwrap();
        assert_eq!(r.occupancy(a).unwrap(), TrayOccupancy::Empty);
        r.fan_in(a).unwrap();
        // Return the array later.
        r.rotate_to(a).unwrap();
        r.fan_out(a).unwrap();
        r.put_array(a).unwrap();
        r.fan_in(a).unwrap();
        assert_eq!(r.occupancy(a).unwrap(), TrayOccupancy::Occupied);
    }

    #[test]
    fn cannot_rotate_with_open_tray() {
        let mut r = roller();
        let a = SlotAddress::new(0, 0, 0);
        r.rotate_to(a).unwrap();
        r.fan_out(a).unwrap();
        let err = r.rotate_to(SlotAddress::new(0, 0, 1)).unwrap_err();
        assert_eq!(err, RollerError::TrayBusy(a));
    }

    #[test]
    fn cannot_fan_out_two_trays() {
        let mut r = roller();
        let a = SlotAddress::new(0, 0, 0);
        r.rotate_to(a).unwrap();
        r.fan_out(a).unwrap();
        assert_eq!(r.fan_out(a).unwrap_err(), RollerError::AlreadyFannedOut(a));
        let b = SlotAddress::new(0, 1, 0);
        assert_eq!(r.fan_out(b).unwrap_err(), RollerError::TrayBusy(a));
    }

    #[test]
    fn fan_out_requires_facing() {
        let mut r = roller();
        // Column 1 is not facing the arm initially (facing starts at 0).
        let a = SlotAddress::new(0, 0, 1);
        assert_eq!(r.fan_out(a).unwrap_err(), RollerError::NotFannedOut(a));
    }

    #[test]
    fn take_from_empty_and_put_to_full_fail() {
        let mut r = roller();
        let a = SlotAddress::new(0, 0, 0);
        r.rotate_to(a).unwrap();
        r.fan_out(a).unwrap();
        assert_eq!(r.put_array(a).unwrap_err(), RollerError::TrayOccupied(a));
        r.take_array(a).unwrap();
        assert_eq!(r.take_array(a).unwrap_err(), RollerError::TrayEmpty(a));
    }

    #[test]
    fn wrong_roller_rejected() {
        let mut r = roller();
        let a = SlotAddress::new(3, 0, 0);
        assert_eq!(r.rotate_to(a).unwrap_err(), RollerError::NoSuchSlot(a));
    }

    #[test]
    fn array_ops_require_fanned_out_tray() {
        let mut r = roller();
        let a = SlotAddress::new(0, 0, 0);
        assert_eq!(r.take_array(a).unwrap_err(), RollerError::NotFannedOut(a));
        assert_eq!(r.fan_in(a).unwrap_err(), RollerError::NotFannedOut(a));
    }
}
