//! The Programmable Logic Controller and its instruction set.
//!
//! §3.3: "the PLC controller ... defines an instruction set to execute basic
//! mechanical operations, while the [system controller] orchestrates all
//! operations of PLC via an internal TCP/IP network". The [`Plc`] here
//! interprets those basic instructions against the roller and arm state
//! machines, returning the duration of every step so the engine can
//! schedule completion events.

use crate::arm::{ArmError, ArmPosition, RoboticArm};
use crate::geometry::{RackLayout, SlotAddress};
use crate::roller::{Roller, RollerError, TrayOccupancy};
use ros_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One basic mechanical instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlcInstruction {
    /// Rotate a roller so the slot's column faces the arm.
    RotateTo(SlotAddress),
    /// Fan the addressed tray out of the roller.
    FanOut(SlotAddress),
    /// Fan the addressed tray back into the roller.
    FanIn(SlotAddress),
    /// Move the roller's arm to a vertical position.
    MoveArm {
        /// Which roller's arm.
        roller: u32,
        /// Target position.
        to: ArmPosition,
    },
    /// Latch the disc array from a fanned-out tray onto the arm.
    LatchArray(SlotAddress),
    /// Release the carried array into a fanned-out empty tray.
    ReleaseArray(SlotAddress),
    /// Separate the carried array disc-by-disc into the drive trays.
    SeparateToDrives {
        /// Which roller's arm.
        roller: u32,
    },
    /// Collect `discs` discs from ejected drive trays onto the arm.
    CollectFromDrives {
        /// Which roller's arm.
        roller: u32,
        /// Number of discs to collect.
        discs: u32,
    },
}

/// Errors surfaced by the PLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlcError {
    /// Roller-level failure.
    Roller(RollerError),
    /// Arm-level failure.
    Arm(ArmError),
    /// Instruction addressed a roller that does not exist.
    NoSuchRoller(u32),
}

impl From<RollerError> for PlcError {
    fn from(e: RollerError) -> Self {
        PlcError::Roller(e)
    }
}

impl From<ArmError> for PlcError {
    fn from(e: ArmError) -> Self {
        PlcError::Arm(e)
    }
}

impl core::fmt::Display for PlcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlcError::Roller(e) => write!(f, "roller: {e}"),
            PlcError::Arm(e) => write!(f, "arm: {e}"),
            PlcError::NoSuchRoller(r) => write!(f, "no such roller {r}"),
        }
    }
}

impl std::error::Error for PlcError {}

/// The PLC: one arm and one roller state machine per physical roller.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Plc {
    layout: RackLayout,
    rollers: Vec<Roller>,
    arms: Vec<RoboticArm>,
    /// Total instructions executed (telemetry).
    executed: u64,
}

impl Plc {
    /// Builds a PLC for a fully-populated rack.
    pub fn new_full(layout: RackLayout) -> Self {
        Plc {
            rollers: (0..layout.rollers)
                .map(|i| Roller::new_full(layout, i))
                .collect(),
            arms: (0..layout.rollers)
                .map(|_| RoboticArm::new(layout))
                .collect(),
            layout,
            executed: 0,
        }
    }

    /// Returns the rack layout.
    pub fn layout(&self) -> RackLayout {
        self.layout
    }

    /// Returns the number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Immutable view of a roller.
    pub fn roller(&self, index: u32) -> Option<&Roller> {
        self.rollers.get(index as usize)
    }

    /// Immutable view of an arm.
    pub fn arm(&self, index: u32) -> Option<&RoboticArm> {
        self.arms.get(index as usize)
    }

    /// Returns the occupancy of a tray.
    pub fn occupancy(&self, addr: SlotAddress) -> Result<TrayOccupancy, PlcError> {
        self.rollers
            .get(addr.roller as usize)
            .ok_or(PlcError::NoSuchRoller(addr.roller))?
            .occupancy(addr)
            .map_err(PlcError::from)
    }

    fn roller_mut(&mut self, index: u32) -> Result<&mut Roller, PlcError> {
        self.rollers
            .get_mut(index as usize)
            .ok_or(PlcError::NoSuchRoller(index))
    }

    fn arm_mut(&mut self, index: u32) -> Result<&mut RoboticArm, PlcError> {
        self.arms
            .get_mut(index as usize)
            .ok_or(PlcError::NoSuchRoller(index))
    }

    /// Executes one instruction, returning how long it takes.
    ///
    /// State transitions are applied immediately; the caller is responsible
    /// for serialising instructions in time (the mechanical scheduler in
    /// [`crate::ops`] does this).
    pub fn execute(&mut self, instr: PlcInstruction) -> Result<SimDuration, PlcError> {
        self.executed += 1;
        match instr {
            PlcInstruction::RotateTo(addr) => Ok(self.roller_mut(addr.roller)?.rotate_to(addr)?),
            PlcInstruction::FanOut(addr) => Ok(self.roller_mut(addr.roller)?.fan_out(addr)?),
            PlcInstruction::FanIn(addr) => Ok(self.roller_mut(addr.roller)?.fan_in(addr)?),
            PlcInstruction::MoveArm { roller, to } => Ok(self.arm_mut(roller)?.travel_to(to)?),
            PlcInstruction::LatchArray(addr) => {
                // Latch transfers the array from tray to arm atomically.
                let dur = {
                    let arm = self.arm_mut(addr.roller)?;
                    arm.latch_array()?
                };
                if let Err(e) = self.roller_mut(addr.roller)?.take_array(addr) {
                    // Roll the arm back so state stays consistent.
                    let _ = self.arm_mut(addr.roller)?.release_array();
                    return Err(e.into());
                }
                Ok(dur)
            }
            PlcInstruction::ReleaseArray(addr) => {
                let dur = {
                    let arm = self.arm_mut(addr.roller)?;
                    arm.release_array()?
                };
                if let Err(e) = self.roller_mut(addr.roller)?.put_array(addr) {
                    let _ = self.arm_mut(addr.roller)?.latch_array();
                    return Err(e.into());
                }
                Ok(dur)
            }
            PlcInstruction::SeparateToDrives { roller } => {
                Ok(self.arm_mut(roller)?.separate_into_drives()?)
            }
            PlcInstruction::CollectFromDrives { roller, discs } => {
                Ok(self.arm_mut(roller)?.collect_from_drives(discs)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::CarryState;

    fn plc() -> Plc {
        Plc::new_full(RackLayout::tiny())
    }

    #[test]
    fn executes_full_load_sequence() {
        let mut p = plc();
        let slot = SlotAddress::new(0, 2, 1);
        let seq = [
            PlcInstruction::RotateTo(slot),
            PlcInstruction::MoveArm {
                roller: 0,
                to: ArmPosition::Layer(2),
            },
            PlcInstruction::FanOut(slot),
            PlcInstruction::LatchArray(slot),
            PlcInstruction::MoveArm {
                roller: 0,
                to: ArmPosition::Station,
            },
            PlcInstruction::FanIn(slot),
            PlcInstruction::SeparateToDrives { roller: 0 },
        ];
        let total: SimDuration = seq
            .iter()
            .map(|i| p.execute(*i).expect("sequence must run"))
            .sum();
        assert!(total > SimDuration::from_secs(60));
        assert_eq!(p.occupancy(slot).unwrap(), TrayOccupancy::Empty);
        assert_eq!(p.arm(0).unwrap().carrying(), CarryState::Empty);
        assert_eq!(p.executed(), 7);
    }

    #[test]
    fn latch_failure_rolls_back_arm() {
        let mut p = plc();
        let slot = SlotAddress::new(0, 0, 0);
        p.execute(PlcInstruction::RotateTo(slot)).unwrap();
        p.execute(PlcInstruction::FanOut(slot)).unwrap();
        p.execute(PlcInstruction::LatchArray(slot)).unwrap();
        p.execute(PlcInstruction::FanIn(slot)).unwrap();
        // Second latch from the (now empty) tray must fail and leave the
        // arm still carrying the first array.
        p.execute(PlcInstruction::RotateTo(slot)).unwrap();
        p.execute(PlcInstruction::FanOut(slot)).unwrap();
        let err = p.execute(PlcInstruction::LatchArray(slot)).unwrap_err();
        assert_eq!(err, PlcError::Arm(ArmError::AlreadyCarrying));
        assert!(matches!(
            p.arm(0).unwrap().carrying(),
            CarryState::Array { .. }
        ));
    }

    #[test]
    fn release_failure_rolls_back_arm() {
        let mut p = plc();
        let a = SlotAddress::new(0, 0, 0);
        let b = SlotAddress::new(0, 1, 0);
        // Take array from a.
        p.execute(PlcInstruction::RotateTo(a)).unwrap();
        p.execute(PlcInstruction::FanOut(a)).unwrap();
        p.execute(PlcInstruction::LatchArray(a)).unwrap();
        p.execute(PlcInstruction::FanIn(a)).unwrap();
        // Try to release into occupied b: must fail and keep carrying.
        p.execute(PlcInstruction::RotateTo(b)).unwrap();
        p.execute(PlcInstruction::FanOut(b)).unwrap();
        let err = p.execute(PlcInstruction::ReleaseArray(b)).unwrap_err();
        assert_eq!(err, PlcError::Roller(RollerError::TrayOccupied(b)));
        assert!(matches!(
            p.arm(0).unwrap().carrying(),
            CarryState::Array { .. }
        ));
    }

    #[test]
    fn rejects_unknown_roller() {
        let mut p = plc();
        let err = p
            .execute(PlcInstruction::SeparateToDrives { roller: 9 })
            .unwrap_err();
        assert_eq!(err, PlcError::NoSuchRoller(9));
    }

    #[test]
    fn latch_requires_fanned_out_tray() {
        let mut p = plc();
        let slot = SlotAddress::new(0, 0, 0);
        let err = p.execute(PlcInstruction::LatchArray(slot)).unwrap_err();
        assert_eq!(err, PlcError::Roller(RollerError::NotFannedOut(slot)));
        // Arm must have been rolled back to empty.
        assert_eq!(p.arm(0).unwrap().carrying(), CarryState::Empty);
    }
}
