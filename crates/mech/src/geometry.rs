//! Rack layout and slot addressing.
//!
//! A rack holds `rollers` rollers; each roller holds `layers` layers of
//! `slots_per_layer` trays; each tray carries `discs_per_tray` discs (a
//! *disc array*). The prototype layout (§3.2) is 2 × 85 × 6 × 12 = 12,240
//! discs.

use crate::params;
use serde::{Deserialize, Serialize};

/// Static geometry of a ROS rack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackLayout {
    /// Number of rollers (1 or 2 in the prototype).
    pub rollers: u32,
    /// Layers per roller (85 in the prototype).
    pub layers: u32,
    /// Tray slots per layer (6 in the prototype).
    pub slots_per_layer: u32,
    /// Discs per tray / disc array (12 in the prototype).
    pub discs_per_tray: u32,
}

impl Default for RackLayout {
    fn default() -> Self {
        RackLayout {
            rollers: params::DEFAULT_ROLLERS,
            layers: params::LAYERS_PER_ROLLER,
            slots_per_layer: params::SLOTS_PER_LAYER,
            discs_per_tray: params::DISCS_PER_TRAY,
        }
    }
}

impl RackLayout {
    /// A small layout for tests and examples: 1 roller, 4 layers, 2 slots.
    pub fn tiny() -> Self {
        RackLayout {
            rollers: 1,
            layers: 4,
            slots_per_layer: 2,
            discs_per_tray: 12,
        }
    }

    /// Returns the total number of tray slots in the rack.
    pub fn total_slots(&self) -> u32 {
        self.rollers * self.layers * self.slots_per_layer
    }

    /// Returns the total disc capacity of the rack.
    pub fn total_discs(&self) -> u32 {
        self.total_slots() * self.discs_per_tray
    }

    /// Returns the slots of one roller in scan order (layer-major).
    pub fn slots_of_roller(&self, roller: u32) -> impl Iterator<Item = SlotAddress> + '_ {
        let layers = self.layers;
        let slots = self.slots_per_layer;
        (0..layers).flat_map(move |layer| {
            (0..slots).map(move |slot| SlotAddress {
                roller,
                layer,
                slot,
            })
        })
    }

    /// Returns every slot in the rack in scan order.
    pub fn all_slots(&self) -> impl Iterator<Item = SlotAddress> + '_ {
        (0..self.rollers).flat_map(move |r| self.slots_of_roller(r))
    }

    /// Returns true if `addr` names a slot inside this layout.
    pub fn contains(&self, addr: SlotAddress) -> bool {
        addr.roller < self.rollers && addr.layer < self.layers && addr.slot < self.slots_per_layer
    }

    /// Returns a dense index for `addr` in scan order, for use as a table
    /// key (the DAindex of §4.1 is indexed this way).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the layout.
    pub fn slot_index(&self, addr: SlotAddress) -> u32 {
        assert!(self.contains(addr), "slot {addr:?} outside layout");
        (addr.roller * self.layers + addr.layer) * self.slots_per_layer + addr.slot
    }

    /// Inverse of [`RackLayout::slot_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_slots()`.
    pub fn slot_at(&self, index: u32) -> SlotAddress {
        assert!(
            index < self.total_slots(),
            "slot index {index} out of range"
        );
        let slot = index % self.slots_per_layer;
        let rest = index / self.slots_per_layer;
        let layer = rest % self.layers;
        let roller = rest / self.layers;
        SlotAddress {
            roller,
            layer,
            slot,
        }
    }

    /// Fraction of full vertical span from the uppermost layer (0.0) to the
    /// lowest (1.0); a single-layer roller is all at the top.
    pub fn layer_depth_fraction(&self, layer: u32) -> f64 {
        if self.layers <= 1 {
            0.0
        } else {
            layer as f64 / (self.layers - 1) as f64
        }
    }
}

/// Address of one tray slot: which roller, which layer (0 = uppermost),
/// which of the concentric slots in that layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotAddress {
    /// Roller index within the rack.
    pub roller: u32,
    /// Layer index, 0 at the top of the roller.
    pub layer: u32,
    /// Slot index within the layer.
    pub slot: u32,
}

impl SlotAddress {
    /// Convenience constructor.
    pub fn new(roller: u32, layer: u32, slot: u32) -> Self {
        SlotAddress {
            roller,
            layer,
            slot,
        }
    }
}

/// Address of a single disc: a tray slot plus the position within the
/// 12-disc array (0 = bottom disc, separated first; §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiscSlot {
    /// The tray the disc lives in.
    pub tray: SlotAddress,
    /// Position within the tray, 0 at the bottom.
    pub position: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_capacity() {
        let l = RackLayout::default();
        assert_eq!(l.total_slots(), 1_020);
        assert_eq!(l.total_discs(), 12_240);
    }

    #[test]
    fn single_roller_capacity() {
        let l = RackLayout {
            rollers: 1,
            ..RackLayout::default()
        };
        assert_eq!(l.total_discs(), 6_120);
    }

    #[test]
    fn slot_index_roundtrip() {
        let l = RackLayout::default();
        for (i, addr) in l.all_slots().enumerate() {
            assert_eq!(l.slot_index(addr), i as u32);
            assert_eq!(l.slot_at(i as u32), addr);
        }
        assert_eq!(l.all_slots().count() as u32, l.total_slots());
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let l = RackLayout::tiny();
        assert!(l.contains(SlotAddress::new(0, 3, 1)));
        assert!(!l.contains(SlotAddress::new(1, 0, 0)));
        assert!(!l.contains(SlotAddress::new(0, 4, 0)));
        assert!(!l.contains(SlotAddress::new(0, 0, 2)));
    }

    #[test]
    #[should_panic(expected = "outside layout")]
    fn slot_index_panics_out_of_range() {
        RackLayout::tiny().slot_index(SlotAddress::new(5, 0, 0));
    }

    #[test]
    fn depth_fraction_spans_unit_interval() {
        let l = RackLayout::default();
        assert_eq!(l.layer_depth_fraction(0), 0.0);
        assert_eq!(l.layer_depth_fraction(84), 1.0);
        let mid = l.layer_depth_fraction(42);
        assert!(mid > 0.49 && mid < 0.51);
        let single = RackLayout {
            layers: 1,
            ..RackLayout::tiny()
        };
        assert_eq!(single.layer_depth_fraction(0), 0.0);
    }

    #[test]
    fn scan_order_is_layer_major() {
        let l = RackLayout::tiny();
        let first: Vec<SlotAddress> = l.all_slots().take(3).collect();
        assert_eq!(
            first,
            vec![
                SlotAddress::new(0, 0, 0),
                SlotAddress::new(0, 0, 1),
                SlotAddress::new(0, 1, 0),
            ]
        );
    }
}
