//! The 100-year / 1 PB TCO analytical model (§2.1).
//!
//! Cost components per media technology, over a preservation horizon:
//!
//! - **acquisition + repurchase**: media must be rebought every
//!   `lifetime_years`,
//! - **migration**: every repurchase forces a full-corpus copy
//!   (read + write + labour),
//! - **energy**: active hardware plus climate control where required,
//! - **maintenance**: rewinding for tape (§2: "rewinding operations every
//!   two years"), scrubbing labour, library hardware refresh.
//!
//! Default parameters are calibrated to the paper's cited result:
//! optical ≈ 250 K$/PB/century ≈ ⅓ of HDD ≈ ½ of tape.

use serde::{Deserialize, Serialize};

/// Economic and physical parameters of one storage technology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MediaSpec {
    /// Technology name.
    pub name: String,
    /// Media cost in $ per terabyte (per purchase).
    pub media_cost_per_tb: f64,
    /// Reliable media lifetime in years before replacement (§2: SSD/HDD
    /// ≤ 5, tape ≈ 10, optical > 50).
    pub lifetime_years: f64,
    /// Cost of one full-corpus migration, $ per PB (drive time, network,
    /// labour, verification).
    pub migration_cost_per_pb: f64,
    /// Average power draw of 1 PB of this media plus its access
    /// hardware, in watts.
    pub power_watts_per_pb: f64,
    /// Climate-control overhead multiplier on energy (strict temperature
    /// and humidity for tape/HDD; optical needs none, §2).
    pub climate_multiplier: f64,
    /// Recurring maintenance cost, $ per PB per year (tape rewinding
    /// every two years, scrubbing labour, library service).
    pub maintenance_per_pb_year: f64,
    /// Access/library hardware cost per PB per decade (drives, robots,
    /// enclosures; refreshed every 10 years).
    pub hardware_per_pb_decade: f64,
}

impl MediaSpec {
    /// Blu-ray optical library, the ROS technology point.
    pub fn optical() -> Self {
        MediaSpec {
            name: "optical".into(),
            // §2.1: "Current media cost per GB of 25GB discs has become
            // close to that of tapes." ~$1 per 25 GB disc plus the
            // 12-discs-per-11-data parity overhead and caddies.
            media_cost_per_tb: 50.0,
            lifetime_years: 50.0,
            migration_cost_per_pb: 20_000.0,
            // Idle library: discs draw nothing; the rack idles at 185 W
            // (§5.1) per 1.16 PB.
            power_watts_per_pb: 250.0,
            climate_multiplier: 1.0,
            maintenance_per_pb_year: 300.0,
            hardware_per_pb_decade: 6_000.0,
        }
    }

    /// Nearline HDD array (2016-era 4-8 TB drives).
    pub fn hdd() -> Self {
        MediaSpec {
            name: "hdd".into(),
            media_cost_per_tb: 25.0,
            lifetime_years: 5.0,
            migration_cost_per_pb: 5_000.0,
            // 250 mostly-idle 4 TB drives ≈ 1.2 kW per PB.
            power_watts_per_pb: 1_200.0,
            climate_multiplier: 1.4,
            maintenance_per_pb_year: 500.0,
            hardware_per_pb_decade: 8_000.0,
        }
    }

    /// LTO tape library.
    pub fn tape() -> Self {
        MediaSpec {
            name: "tape".into(),
            media_cost_per_tb: 10.0,
            lifetime_years: 10.0,
            migration_cost_per_pb: 8_000.0,
            power_watts_per_pb: 300.0,
            // §2: "constant temperature, strict humidity".
            climate_multiplier: 3.0,
            // §2: "rewinding operations every two years, which are
            // inevitable to protect tapes from adhesion and mildew".
            maintenance_per_pb_year: 1_700.0,
            hardware_per_pb_decade: 9_000.0,
        }
    }

    /// Holographic disc library (§2.1: "Hologram discs with 2TB have
    /// been realized and demonstrated, although their drives are plans
    /// to be productized in two years") — a what-if projection with
    /// optical-class lifetime and 20x the per-disc capacity.
    pub fn hologram() -> Self {
        MediaSpec {
            name: "hologram".into(),
            // Early media pricing premium over Blu-ray per TB.
            media_cost_per_tb: 35.0,
            lifetime_years: 50.0,
            migration_cost_per_pb: 15_000.0,
            // 20x density: far fewer discs and mechanical cycles per PB.
            power_watts_per_pb: 80.0,
            climate_multiplier: 1.0,
            maintenance_per_pb_year: 200.0,
            hardware_per_pb_decade: 7_000.0,
        }
    }

    /// Datacenter SSD (for completeness; nobody archives on flash).
    pub fn ssd() -> Self {
        MediaSpec {
            name: "ssd".into(),
            media_cost_per_tb: 250.0,
            lifetime_years: 5.0,
            migration_cost_per_pb: 4_000.0,
            power_watts_per_pb: 600.0,
            climate_multiplier: 1.2,
            maintenance_per_pb_year: 400.0,
            hardware_per_pb_decade: 6_000.0,
        }
    }
}

/// The scenario being costed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Corpus size in petabytes.
    pub capacity_pb: f64,
    /// Preservation horizon in years.
    pub horizon_years: f64,
    /// Electricity price in $ per kWh.
    pub energy_cost_per_kwh: f64,
}

impl Default for TcoModel {
    fn default() -> Self {
        // The paper's cited scenario: 1 PB for 100 years.
        TcoModel {
            capacity_pb: 1.0,
            horizon_years: 100.0,
            energy_cost_per_kwh: 0.10,
        }
    }
}

/// Cost breakdown in dollars over the whole horizon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TcoBreakdown {
    /// Technology name.
    pub name: String,
    /// Media purchases (initial + replacements).
    pub media: f64,
    /// Full-corpus migrations between media generations.
    pub migration: f64,
    /// Energy including climate control.
    pub energy: f64,
    /// Recurring maintenance.
    pub maintenance: f64,
    /// Access/library hardware refreshes.
    pub hardware: f64,
}

impl TcoBreakdown {
    /// Total cost over the horizon.
    pub fn total(&self) -> f64 {
        self.media + self.migration + self.energy + self.maintenance + self.hardware
    }

    /// Total in $ per PB over the horizon.
    pub fn per_pb(&self, capacity_pb: f64) -> f64 {
        self.total() / capacity_pb
    }
}

impl TcoModel {
    /// Costs one technology over the scenario.
    pub fn analyze(&self, spec: &MediaSpec) -> TcoBreakdown {
        let purchases = (self.horizon_years / spec.lifetime_years).ceil().max(1.0);
        let migrations = purchases - 1.0;
        let media = purchases * spec.media_cost_per_tb * 1_000.0 * self.capacity_pb;
        let migration = migrations * spec.migration_cost_per_pb * self.capacity_pb;
        let kwh = spec.power_watts_per_pb * self.capacity_pb / 1_000.0
            * 24.0
            * 365.0
            * self.horizon_years
            * spec.climate_multiplier;
        let energy = kwh * self.energy_cost_per_kwh;
        let maintenance = spec.maintenance_per_pb_year * self.capacity_pb * self.horizon_years;
        let hardware = spec.hardware_per_pb_decade * self.capacity_pb * (self.horizon_years / 10.0);
        TcoBreakdown {
            name: spec.name.clone(),
            media,
            migration,
            energy,
            maintenance,
            hardware,
        }
    }

    /// Sweeps the horizon: total cost per PB at each year count, for
    /// crossover analysis (optical's premium amortizes as the horizon
    /// grows past the first HDD replacement).
    pub fn horizon_sweep(&self, spec: &MediaSpec, years: &[f64]) -> Vec<(f64, f64)> {
        years
            .iter()
            .map(|&y| {
                let m = TcoModel {
                    horizon_years: y,
                    ..self.clone()
                };
                (y, m.analyze(spec).per_pb(self.capacity_pb))
            })
            .collect()
    }

    /// Analyzes the paper's four technologies, sorted cheapest first.
    pub fn compare_all(&self) -> Vec<TcoBreakdown> {
        let mut v: Vec<TcoBreakdown> = [
            MediaSpec::optical(),
            MediaSpec::tape(),
            MediaSpec::hdd(),
            MediaSpec::ssd(),
        ]
        .iter()
        .map(|s| self.analyze(s))
        .collect();
        v.sort_by(|a, b| a.total().total_cmp(&b.total()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn century() -> TcoModel {
        TcoModel::default()
    }

    #[test]
    fn optical_is_about_250k_per_pb_century() {
        let t = century().analyze(&MediaSpec::optical());
        let total = t.per_pb(1.0);
        assert!(
            (total - 250_000.0).abs() / 250_000.0 < 0.15,
            "optical TCO = {total:.0} $/PB (paper: 250K$)"
        );
    }

    #[test]
    fn optical_is_one_third_of_hdd() {
        let m = century();
        let optical = m.analyze(&MediaSpec::optical()).total();
        let hdd = m.analyze(&MediaSpec::hdd()).total();
        let ratio = optical / hdd;
        assert!(
            (ratio - 1.0 / 3.0).abs() < 0.07,
            "optical/hdd = {ratio:.2} (paper: about 1/3)"
        );
    }

    #[test]
    fn optical_is_one_half_of_tape() {
        let m = century();
        let optical = m.analyze(&MediaSpec::optical()).total();
        let tape = m.analyze(&MediaSpec::tape()).total();
        let ratio = optical / tape;
        assert!(
            (ratio - 0.5).abs() < 0.08,
            "optical/tape = {ratio:.2} (paper: about 1/2)"
        );
    }

    #[test]
    fn cheapest_ordering_is_optical_tape_hdd_ssd() {
        let order: Vec<String> = century()
            .compare_all()
            .into_iter()
            .map(|b| b.name)
            .collect();
        assert_eq!(order, vec!["optical", "tape", "hdd", "ssd"]);
    }

    #[test]
    fn hdd_cost_is_dominated_by_replacement_and_energy() {
        let b = century().analyze(&MediaSpec::hdd());
        assert!(b.media > b.maintenance);
        assert!(b.energy > b.maintenance);
        // 20 purchases over a century at 5-year lifetimes.
        assert!((b.media - 20.0 * 25_000.0).abs() < 1.0);
    }

    #[test]
    fn optical_pays_almost_no_migration() {
        let b = century().analyze(&MediaSpec::optical());
        // 2 purchases, 1 migration in 100 years.
        assert!((b.migration - 20_000.0).abs() < 1.0);
        let hdd = century().analyze(&MediaSpec::hdd());
        assert!(hdd.migration > b.migration * 4.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = century().analyze(&MediaSpec::tape());
        let sum = b.media + b.migration + b.energy + b.maintenance + b.hardware;
        assert_eq!(b.total(), sum);
        assert_eq!(b.per_pb(2.0), sum / 2.0);
    }

    #[test]
    fn scales_linearly_with_capacity() {
        let one = century().analyze(&MediaSpec::optical()).total();
        let ten = TcoModel {
            capacity_pb: 10.0,
            ..century()
        }
        .analyze(&MediaSpec::optical())
        .total();
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn short_horizon_has_single_purchase() {
        let m = TcoModel {
            horizon_years: 3.0,
            ..century()
        };
        let b = m.analyze(&MediaSpec::optical());
        assert!((b.media - 50_000.0).abs() < 1.0);
        assert_eq!(b.migration, 0.0);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn hologram_projection_beats_bluray() {
        let m = TcoModel::default();
        let holo = m.analyze(&MediaSpec::hologram()).total();
        let optical = m.analyze(&MediaSpec::optical()).total();
        assert!(holo < optical, "holographic density must cut TCO");
        assert!(holo > optical / 3.0, "but not implausibly");
    }

    #[test]
    fn horizon_sweep_shows_the_crossover() {
        // At short horizons HDD competes; past the first HDD replacement
        // optical wins and the gap widens.
        let m = TcoModel::default();
        let years = [3.0, 5.0, 10.0, 25.0, 50.0, 100.0];
        let optical = m.horizon_sweep(&MediaSpec::optical(), &years);
        let hdd = m.horizon_sweep(&MediaSpec::hdd(), &years);
        // Short horizon: optical's media premium makes it pricier.
        assert!(optical[0].1 > hdd[0].1, "at 3 years HDD should win");
        // Long horizon: optical wins big.
        assert!(optical[5].1 < hdd[5].1 / 2.0);
        // The crossover happens once HDD starts replacing media: by the
        // 10-year point optical is already cheaper, and the advantage at
        // 100 years dwarfs the 3-year premium. (The ratio is not
        // strictly monotone: optical buys its second media set at the
        // 100-year mark.)
        let ratio = |i: usize| optical[i].1 / hdd[i].1;
        assert!(ratio(0) > 1.0, "3y: optical premium");
        assert!(ratio(2) < 1.0, "10y: optical ahead");
        assert!(ratio(5) < ratio(2) && ratio(2) < ratio(0));
    }

    #[test]
    fn sweep_is_consistent_with_analyze() {
        let m = TcoModel::default();
        let sweep = m.horizon_sweep(&MediaSpec::tape(), &[100.0]);
        assert_eq!(sweep[0].1, m.analyze(&MediaSpec::tape()).per_pb(1.0));
    }
}
