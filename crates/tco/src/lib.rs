//! Total-cost-of-ownership and power models for long-term storage.
//!
//! §2.1 of the paper summarises a Gupta et al.-style analytical model for
//! a 1 PB / 100-year datacenter: "the TCO of an optical disc based
//! datacenter is 250K$/PB, about 1/3 of an HDD-based datacenter, 1/2 of a
//! tape-based datacenter." [`model`] reimplements that analysis with the
//! lifetime / migration / environment assumptions the paper states
//! (SSD/HDD ≤ 5 years, tape ≈ 10 years with climate control and biennial
//! rewinding, optical > 50 years with none of that).
//!
//! [`power`] reproduces the prototype's §5.1 rack power budget: 185 W
//! idle, 652 W peak, from its component inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod power;

pub use model::{MediaSpec, TcoBreakdown, TcoModel};
pub use power::{RackPower, RackState};
