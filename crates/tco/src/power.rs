//! Rack power budget (§5.1: "The idle and peak powers of ROS are 185W
//! and 652W respectively").
//!
//! The budget decomposes over the prototype inventory: the two-Xeon
//! system controller, 24 optical drives (8 W peak each), 14 HDDs + 2
//! SSDs, the PLC, and the roller/arm motors (§3.2: roller < 50 W).

use serde::{Deserialize, Serialize};

/// Operating point of the rack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RackState {
    /// Everything quiescent: drives asleep, disks idling, no motion.
    Idle,
    /// Worst case: all drives burning, disks streaming, roller turning,
    /// arm moving.
    Peak,
}

/// Component power inventory of a ROS rack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackPower {
    /// Number of optical drives.
    pub drives: u32,
    /// Number of HDDs.
    pub hdds: u32,
    /// Number of SSDs.
    pub ssds: u32,
    /// Server (system controller) idle draw, watts.
    pub server_idle_w: f64,
    /// Server peak draw, watts.
    pub server_peak_w: f64,
    /// Per-drive sleep draw, watts.
    pub drive_sleep_w: f64,
    /// Per-drive burning draw, watts (§5.1: 8 W peak).
    pub drive_peak_w: f64,
    /// Per-HDD idle draw, watts.
    pub hdd_idle_w: f64,
    /// Per-HDD active draw, watts.
    pub hdd_active_w: f64,
    /// Per-SSD idle draw, watts.
    pub ssd_idle_w: f64,
    /// Per-SSD active draw, watts.
    pub ssd_active_w: f64,
    /// PLC idle draw, watts.
    pub plc_idle_w: f64,
    /// PLC active draw, watts.
    pub plc_active_w: f64,
    /// Roller rotation motor, watts (§3.2: < 50 W; zero when still).
    pub roller_w: f64,
    /// Arm motors, watts (zero when parked).
    pub arm_w: f64,
}

impl Default for RackPower {
    fn default() -> Self {
        Self::prototype()
    }
}

impl RackPower {
    /// The §5.1 prototype: 24 drives, 14 HDDs, 2 SSDs.
    pub fn prototype() -> Self {
        RackPower {
            drives: 24,
            hdds: 14,
            ssds: 2,
            server_idle_w: 112.0,
            server_peak_w: 250.0,
            drive_sleep_w: 0.2,
            drive_peak_w: 8.0,
            hdd_idle_w: 4.0,
            hdd_active_w: 8.0,
            ssd_idle_w: 1.0,
            ssd_active_w: 3.0,
            plc_idle_w: 10.0,
            plc_active_w: 15.0,
            roller_w: 48.0,
            arm_w: 30.0,
        }
    }

    /// Total draw at an operating point, watts.
    pub fn watts(&self, state: RackState) -> f64 {
        match state {
            RackState::Idle => {
                self.server_idle_w
                    + self.drives as f64 * self.drive_sleep_w
                    + self.hdds as f64 * self.hdd_idle_w
                    + self.ssds as f64 * self.ssd_idle_w
                    + self.plc_idle_w
            }
            RackState::Peak => {
                self.server_peak_w
                    + self.drives as f64 * self.drive_peak_w
                    + self.hdds as f64 * self.hdd_active_w
                    + self.ssds as f64 * self.ssd_active_w
                    + self.plc_active_w
                    + self.roller_w
                    + self.arm_w
            }
        }
    }

    /// A mixed operating point: `burning_drives` at peak, the rest
    /// asleep, disks active, no motion — the steady burning state.
    pub fn steady_burning_watts(&self, burning_drives: u32) -> f64 {
        let burning = burning_drives.min(self.drives) as f64;
        let sleeping = self.drives as f64 - burning;
        self.server_peak_w * 0.8
            + burning * self.drive_peak_w
            + sleeping * self.drive_sleep_w
            + self.hdds as f64 * self.hdd_active_w
            + self.ssds as f64 * self.ssd_active_w
            + self.plc_idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_matches_paper_185w() {
        let w = RackPower::prototype().watts(RackState::Idle);
        assert!((w - 185.0).abs() < 2.0, "idle = {w} W (paper: 185 W)");
    }

    #[test]
    fn peak_matches_paper_652w() {
        let w = RackPower::prototype().watts(RackState::Peak);
        assert!((w - 652.0).abs() < 2.0, "peak = {w} W (paper: 652 W)");
    }

    #[test]
    fn steady_burning_sits_between_idle_and_peak() {
        let p = RackPower::prototype();
        let idle = p.watts(RackState::Idle);
        let peak = p.watts(RackState::Peak);
        let steady = p.steady_burning_watts(12);
        assert!(idle < steady && steady < peak, "steady = {steady} W");
        // Clamp to available drives.
        assert!(p.steady_burning_watts(999) <= peak);
    }

    #[test]
    fn drive_peak_matches_spec() {
        // §5.1: Pioneer BDR-S09XLB "peak power 8W".
        assert_eq!(RackPower::prototype().drive_peak_w, 8.0);
    }
}
