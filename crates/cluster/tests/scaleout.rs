//! End-to-end cluster checks: read throughput scales with rack count
//! under the paper's Fig. 7-style mixed op workload, and a whole-rack
//! failure at replication 2 loses nothing.

use ros_cluster::{Cluster, ClusterConfig, ClusterReport};
use ros_workload::spec::synth_data;
use ros_workload::{FileOp, WorkloadSpec};

fn mixed_spec() -> WorkloadSpec {
    WorkloadSpec::MultiTenantMixed {
        tenants: 24,
        tenant_skew: 0.5,
        ops: 1600,
        read_ratio: 0.7,
        sizes: ros_workload::dist::SizeDist::Fixed { bytes: 16 * 1024 },
        fanout: 2,
    }
}

/// Ingests the mix's writes, then measures the read phase in a fresh
/// epoch. Returns the aggregate read throughput in MB/s.
fn read_throughput(racks: usize) -> f64 {
    let mut cluster = Cluster::new(ClusterConfig::tiny(racks)).unwrap();
    let ops = mixed_spec().compile(42);
    for op in &ops {
        if let FileOp::Write { path, size } = op {
            cluster.write_file(path, synth_data(path, *size)).unwrap();
        }
    }
    cluster.begin_epoch();
    for op in &ops {
        match op {
            FileOp::Read { path } => {
                let report = cluster.read_file(path).unwrap();
                let expect = synth_data(path, report.data.len() as u64);
                assert_eq!(report.data.as_ref(), expect.as_slice(), "payload integrity");
            }
            FileOp::Stat { path } => {
                cluster.stat(path).unwrap();
            }
            FileOp::Write { .. } => {}
        }
    }
    let report = ClusterReport::collect(&cluster);
    assert!(report.read_latency.count() > 0);
    report.read_throughput().mb_per_sec()
}

#[test]
fn read_throughput_scales_with_rack_count() {
    let one = read_throughput(1);
    let two = read_throughput(2);
    let four = read_throughput(4);
    assert!(
        two / one >= 1.8,
        "1 -> 2 racks must scale >= 1.8x, got {:.2}x ({one:.1} -> {two:.1} MB/s)",
        two / one
    );
    assert!(
        four / one >= 3.0,
        "1 -> 4 racks must scale >= 3x, got {:.2}x ({one:.1} -> {four:.1} MB/s)",
        four / one
    );
}

#[test]
fn rack_failure_drill_loses_nothing_at_replication_two() {
    let mut cluster = Cluster::new(ClusterConfig::tiny(4)).unwrap();
    assert_eq!(cluster.config().replication, 2);
    let ops = mixed_spec().compile(7);
    let mut written = 0usize;
    for op in &ops {
        if let FileOp::Write { path, size } = op {
            cluster.write_file(path, synth_data(path, *size)).unwrap();
            written += 1;
        }
    }
    cluster.replicate_mv_snapshots(true).unwrap();
    cluster.fail_rack(2).unwrap();
    let drill = cluster.rereplicate_after_failure(2).unwrap();
    assert_eq!(drill.files_lost, 0, "replication 2 must survive one rack");
    assert_eq!(drill.files_verified, drill.files_recovered);
    assert!(drill.namespace_source.is_some(), "guardian audit available");
    assert!(drill.recovery_time.as_nanos() > 0);

    // Every file the workload wrote still reads back correct.
    let mut checked = 0usize;
    for op in &ops {
        if let FileOp::Write { path, .. } = op {
            let report = cluster.read_file(path).unwrap();
            let expect = synth_data(path, report.data.len() as u64);
            assert_eq!(report.data.as_ref(), expect.as_slice());
            checked += 1;
        }
    }
    assert_eq!(checked, written);
}
