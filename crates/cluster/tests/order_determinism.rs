//! Placement must not depend on ingest order: two fresh clusters fed
//! the same file set in different orders must agree on every group's
//! target racks. This is the observable the L6 lint protects — a stray
//! `HashMap` iteration anywhere on the placement path would break it
//! only intermittently (hash order is random per process), so the gate
//! lives here as a deterministic regression test.

use ros_cluster::{Cluster, ClusterConfig};
use ros_udf::UdfPath;
use ros_workload::spec::synth_data;

/// The shared file set: 20 groups x 4 siblings.
fn file_set() -> Vec<(UdfPath, u64)> {
    let mut files = Vec::new();
    for g in 0..20u32 {
        for f in 0..4u32 {
            let path = UdfPath::parse(&format!("/tenants/t{:03}/d{:03}/f{f}.dat", g % 5, g))
                .expect("valid path");
            files.push((path, 4096 + u64::from(g) * 512 + u64::from(f)));
        }
    }
    files
}

/// Deterministic shuffle: walk the list with a stride coprime to its
/// length, so the permutation is fixed but thoroughly out of order.
fn strided<T: Clone>(items: &[T], stride: usize) -> Vec<T> {
    assert_eq!(
        gcd(items.len(), stride),
        1,
        "stride must be coprime to len for a full permutation"
    );
    (0..items.len())
        .map(|i| items[(i * stride) % items.len()].clone())
        .collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn ingest(order: &[(UdfPath, u64)]) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig::tiny(4)).expect("cluster boots");
    for (path, size) in order {
        cluster
            .write_file(path, synth_data(path, *size))
            .expect("write succeeds");
    }
    cluster
}

#[test]
fn placement_is_identical_across_ingest_orders() {
    let files = file_set();
    let forward = ingest(&files);
    let shuffled = ingest(&strided(&files, 37));

    assert_eq!(forward.group_count(), shuffled.group_count());
    assert_eq!(forward.file_count(), shuffled.file_count());
    for (path, _) in &files {
        let a = forward.targets_of(path);
        let b = shuffled.targets_of(path);
        assert!(a.is_some(), "{path} must be placed");
        assert_eq!(a, b, "targets of {path} must not depend on ingest order");
    }
}

#[test]
fn placement_is_identical_across_fresh_runs() {
    // Same order, two independent processes' worth of state: any
    // per-instance hash randomness on the placement path would differ.
    let files = file_set();
    let a = ingest(&files);
    let b = ingest(&files);
    for (path, _) in &files {
        assert_eq!(a.targets_of(path), b.targets_of(path));
    }
}
