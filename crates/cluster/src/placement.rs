//! Deterministic rack placement via rendezvous hashing.
//!
//! Archive groups (a file's parent directory — siblings co-locate, as
//! the paper's bucket packing keeps related files in one disc array,
//! §4.3) are mapped onto racks with highest-random-weight ("rendezvous")
//! hashing: every `(group, rack)` pair gets a pseudo-random score and
//! the group lives on the top-scoring racks. Adding or removing a rack
//! moves only the groups whose top-k set changed — no global reshuffle —
//! and the mapping needs no central table to agree on.

use serde::{Deserialize, Serialize};

/// Identity of a member rack within a cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl core::fmt::Display for RackId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// FNV-1a over the group key, the stable half of the pair hash.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — mixes the key hash with the rack id so scores
/// for one group are independent across racks.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous score of `(key, rack)`.
pub fn score(key: &str, rack: RackId) -> u64 {
    mix(fnv1a(key) ^ mix(u64::from(rack.0).wrapping_add(0x5EED)))
}

/// Ranks `candidates` for `key` in descending rendezvous-score order
/// (ties broken by id, though 64-bit ties are essentially impossible).
pub fn rank(key: &str, candidates: &[RackId]) -> Vec<RackId> {
    let mut scored: Vec<(u64, RackId)> = candidates.iter().map(|&r| (score(key, r), r)).collect();
    scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, r)| r).collect()
}

/// Selects up to `replication` target racks for a group of `size` bytes:
/// candidates in rendezvous order, skipping racks whose remaining
/// capacity cannot hold the group. `candidates` pairs each rack with its
/// free bytes. Returns fewer than `replication` racks only when capacity
/// or membership runs out.
pub fn select_targets(
    key: &str,
    candidates: &[(RackId, u64)],
    size: u64,
    replication: usize,
) -> Vec<RackId> {
    let ids: Vec<RackId> = candidates.iter().map(|&(r, _)| r).collect();
    let free: std::collections::BTreeMap<RackId, u64> = candidates.iter().copied().collect();
    rank(key, &ids)
        .into_iter()
        .filter(|r| free.get(r).is_some_and(|&f| f >= size))
        .take(replication)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racks(n: u32) -> Vec<RackId> {
        (0..n).map(RackId).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let c = racks(8);
        let a = rank("/tenants/t001/d002", &c);
        let b = rank("/tenants/t001/d002", &c);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, c, "rank must be a permutation");
    }

    #[test]
    fn groups_spread_across_racks() {
        let c = racks(4);
        let mut counts = [0usize; 4];
        for g in 0..400 {
            let key = format!("/tenants/t{:03}/d{:03}", g % 20, g / 20);
            counts[rank(&key, &c)[0].0 as usize] += 1;
        }
        // 400 groups over 4 racks: each rack should be primary for a
        // reasonable share (perfect balance = 100).
        for (i, &n) in counts.iter().enumerate() {
            assert!((60..160).contains(&n), "rack {i} owns {n} of 400 groups");
        }
    }

    #[test]
    fn removing_a_rack_only_moves_its_own_groups() {
        let all = racks(5);
        let fewer: Vec<RackId> = all.iter().copied().filter(|r| r.0 != 2).collect();
        for g in 0..200 {
            let key = format!("/g/{g}");
            let before = rank(&key, &all)[0];
            let after = rank(&key, &fewer)[0];
            if before.0 != 2 {
                assert_eq!(before, after, "group {g} moved although its rack survived");
            }
        }
    }

    #[test]
    fn capacity_filter_skips_full_racks() {
        let candidates = vec![
            (RackId(0), 10_000u64),
            (RackId(1), 50u64),
            (RackId(2), 10_000u64),
        ];
        let t = select_targets("/g/full", &candidates, 1000, 2);
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&RackId(1)), "full rack must be skipped");
    }

    #[test]
    fn select_returns_short_when_capacity_runs_out() {
        let candidates = vec![(RackId(0), 10_000u64), (RackId(1), 50u64)];
        let t = select_targets("/g/x", &candidates, 1000, 2);
        assert_eq!(t, vec![RackId(0)]);
        assert!(select_targets("/g/x", &candidates, 1_000_000, 2).is_empty());
    }
}
