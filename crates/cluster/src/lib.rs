//! Multi-rack federation for ROS.
//!
//! The paper scales ROS by adding whole racks (§6 prices racks as the
//! unit of growth) but describes only a single rack's internals. This
//! crate supplies the missing scale-out layer: a cluster front end that
//! federates N independent [`ros_olfs::Ros`] instances — each with its
//! own mech/drive/disk stack and event clock — behind one namespace-less
//! router:
//!
//! - [`placement`]: deterministic rendezvous (highest-random-weight)
//!   hashing of *archive groups* (a file's parent directory) onto racks,
//!   filtered by per-rack remaining capacity;
//! - [`router`]: the [`Cluster`] front end — replicated writes, primary
//!   reads with replica fallback, per-rack and cluster-wide
//!   latency/throughput via `ros_sim::stats`;
//! - [`replication`]: cross-rack guardianship of each rack's Metadata
//!   Volume snapshot (the §4.2 snapshot text shipped to other racks), so
//!   a rack can lose its MV — or its entire hardware — without losing
//!   the namespace;
//! - [`failure`]: the rack-failure drill — fail a rack, re-replicate its
//!   groups from survivors, and report recovery time and data loss
//!   (zero at replication ≥ 2).
//!
//! Racks run in parallel: each advances its own simulated clock only for
//! the work routed to it, and cluster time is the maximum over members,
//! so an N-rack cluster completes a balanced read workload in ~1/N the
//! makespan of one rack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod error;
pub mod failure;
pub mod placement;
pub mod rack;
pub mod replication;
pub mod router;
pub mod stats;
pub mod supervise;

pub use audit::ClusterAuditReport;
pub use config::ClusterConfig;
pub use error::ClusterError;
pub use failure::DrillReport;
pub use placement::RackId;
pub use rack::RackNode;
pub use replication::MvReplicationReport;
pub use router::{Cluster, ClusterReadReport, ClusterWriteReport};
pub use stats::{ClusterReport, RackLoadSummary};
