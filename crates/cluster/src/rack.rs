//! One member rack: an independent OLFS instance plus cluster-side
//! accounting.

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::placement::RackId;
use ros_olfs::Ros;
use ros_sim::stats::LatencyRecorder;
use ros_sim::{SimDuration, SimTime};

/// A member rack of the cluster: a full single-rack ROS with its own
/// mech/drive/disk stack and event clock, wrapped with the routing state
/// the front end keeps per member (liveness, stored bytes, per-rack
/// latency recorders).
pub struct RackNode {
    id: RackId,
    ros: Ros,
    alive: bool,
    /// Service-time scale in percent; 100 is nominal, 300 means every
    /// routed operation reports 3x latency (degraded cooling, a failing
    /// switch — the rack still answers, just slowly).
    slowdown_pct: u32,
    bytes_stored: u64,
    usable_capacity: u64,
    pub(crate) read_latency: LatencyRecorder,
    pub(crate) write_latency: LatencyRecorder,
    pub(crate) bytes_read: u64,
    pub(crate) bytes_written: u64,
}

impl RackNode {
    /// Builds member `id` from the cluster configuration.
    ///
    /// Panics if the rack template is invalid; [`RackNode::try_new`]
    /// is the typed variant.
    pub fn new(cfg: &ClusterConfig, id: RackId) -> Self {
        // ros-analysis: allow(L2, constructor contract is documented; try_new is the fallible path)
        Self::try_new(cfg, id).expect("invalid rack configuration")
    }

    /// Builds member `id`, surfacing an invalid rack template as a
    /// typed error instead of a panic.
    pub fn try_new(cfg: &ClusterConfig, id: RackId) -> Result<Self, ClusterError> {
        let rack_cfg = cfg.rack_config(id.0);
        let usable_capacity = rack_cfg.usable_capacity();
        let ros = Ros::try_new(rack_cfg)
            .map_err(|e| ClusterError::Config(format!("rack {} template: {e}", id.0)))?;
        Ok(RackNode {
            id,
            ros,
            alive: true,
            slowdown_pct: 100,
            bytes_stored: 0,
            usable_capacity,
            read_latency: LatencyRecorder::new(format!("rack{} read", id.0)),
            write_latency: LatencyRecorder::new(format!("rack{} write", id.0)),
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// Current service-time scale in percent (100 = nominal).
    pub fn slowdown_pct(&self) -> u32 {
        self.slowdown_pct
    }

    /// Sets the service-time scale in percent; values below 1 clamp to 1.
    pub(crate) fn set_slowdown_pct(&mut self, pct: u32) {
        self.slowdown_pct = pct.max(1);
    }

    /// Scales a reported operation latency by the rack's slowdown.
    pub(crate) fn scaled(&self, d: SimDuration) -> SimDuration {
        if self.slowdown_pct == 100 {
            return d;
        }
        let nanos = d.as_nanos().saturating_mul(u64::from(self.slowdown_pct)) / 100;
        SimDuration::from_nanos(nanos)
    }

    /// The rack's cluster identity.
    pub fn id(&self) -> RackId {
        self.id
    }

    /// Whether the rack is serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Marks the rack failed (whole-rack loss: hardware, buffer and
    /// local MV are all gone from the cluster's point of view).
    pub(crate) fn fail(&mut self) {
        self.alive = false;
    }

    /// The rack's local simulated clock.
    pub fn now(&self) -> SimTime {
        self.ros.now()
    }

    /// Estimated remaining usable capacity in bytes. User payload is
    /// tracked exactly; image headers and parity overhead beyond the
    /// schema's share are not, so this is the planning estimate the
    /// placement filter uses, not an admission guarantee.
    pub fn free_bytes(&self) -> u64 {
        self.usable_capacity.saturating_sub(self.bytes_stored)
    }

    /// Bytes of user payload routed to this rack.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    pub(crate) fn note_stored(&mut self, bytes: u64) {
        self.bytes_stored = self.bytes_stored.saturating_add(bytes);
    }

    /// The wrapped OLFS engine.
    pub fn ros(&self) -> &Ros {
        &self.ros
    }

    /// The wrapped OLFS engine, mutably.
    pub fn ros_mut(&mut self) -> &mut Ros {
        &mut self.ros
    }

    /// Resets the per-rack measurement epoch (latency samples and byte
    /// counters); placement accounting is untouched.
    pub(crate) fn reset_stats(&mut self) {
        self.read_latency = LatencyRecorder::new(format!("rack{} read", self.id.0));
        self.write_latency = LatencyRecorder::new(format!("rack{} write", self.id.0));
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_wraps_an_engine_with_identity() {
        let cfg = ClusterConfig::tiny(2);
        let mut node = RackNode::new(&cfg, RackId(1));
        assert_eq!(node.id(), RackId(1));
        assert!(node.is_alive());
        assert_eq!(node.ros().status().rack_id, 1);
        let free = node.free_bytes();
        node.ros_mut()
            .write_file(&"/f".parse().unwrap(), vec![0u8; 512])
            .unwrap();
        node.note_stored(512);
        assert_eq!(node.free_bytes(), free - 512);
        node.fail();
        assert!(!node.is_alive());
    }
}
