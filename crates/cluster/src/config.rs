//! Cluster-level configuration.

use crate::error::ClusterError;
use ros_olfs::RosConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-rack cluster.
///
/// Each member rack is an independent [`ros_olfs::Ros`] built from the
/// `rack` template with a distinct `rack_id` and a seed derived from the
/// cluster seed, so member behaviour is deterministic but decorrelated.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of member racks.
    pub racks: usize,
    /// Data replication factor: how many racks hold each archive group.
    /// At 2 or more, whole-rack failure loses no data.
    pub replication: usize,
    /// How many *other* racks hold a guardian copy of each rack's MV
    /// snapshot text (the §4.2 snapshot shipped cross-rack). 0 disables
    /// cross-rack MV guardianship.
    pub mv_guardians: usize,
    /// Template configuration for every member rack; `rack_id` and
    /// `seed` are overridden per member.
    pub rack: RosConfig,
    /// Cluster-level RNG seed; member rack seeds are derived from it.
    pub seed: u64,
}

impl ClusterConfig {
    /// A scaled-down cluster for tests and examples: `racks` tiny racks,
    /// replication 2 (capped at the rack count), one MV guardian.
    pub fn tiny(racks: usize) -> Self {
        ClusterConfig {
            racks,
            replication: 2.min(racks.max(1)),
            mv_guardians: 1.min(racks.saturating_sub(1)),
            rack: RosConfig::tiny(),
            seed: 0xC1_05_7E_12,
        }
    }

    /// Validates internal consistency (including the rack template).
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.racks == 0 {
            return Err(ClusterError::Config("need at least one rack".into()));
        }
        if self.racks > u32::MAX as usize {
            return Err(ClusterError::Config("rack count exceeds u32 ids".into()));
        }
        if self.replication == 0 || self.replication > self.racks {
            return Err(ClusterError::Config(format!(
                "replication {} must be in 1..={} (rack count)",
                self.replication, self.racks
            )));
        }
        if self.mv_guardians >= self.racks {
            return Err(ClusterError::Config(format!(
                "mv_guardians {} must leave the owner out of its own guardian set \
                 (racks = {})",
                self.mv_guardians, self.racks
            )));
        }
        self.rack
            .validate()
            .map_err(|e| ClusterError::Config(format!("rack template: {e}")))?;
        Ok(())
    }

    /// The `RosConfig` for member rack `id`: template plus per-member
    /// identity and a decorrelated seed.
    pub fn rack_config(&self, id: u32) -> RosConfig {
        let mut cfg = self.rack.clone();
        cfg.rack_id = id;
        cfg.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(id).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_validates_at_all_scales() {
        for racks in 1..=8 {
            let cfg = ClusterConfig::tiny(racks);
            cfg.validate().unwrap();
            assert!(cfg.replication <= racks);
            assert!(cfg.mv_guardians < racks);
        }
    }

    #[test]
    fn validation_catches_mistakes() {
        let mut c = ClusterConfig::tiny(2);
        c.racks = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(2);
        c.replication = 3;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(2);
        c.mv_guardians = 2;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(2);
        c.rack.open_buckets = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn member_configs_are_distinct_and_deterministic() {
        let cfg = ClusterConfig::tiny(4);
        let a = cfg.rack_config(0);
        let b = cfg.rack_config(1);
        assert_eq!(a.rack_id, 0);
        assert_eq!(b.rack_id, 1);
        assert_ne!(a.seed, b.seed, "member seeds must be decorrelated");
        assert_eq!(cfg.rack_config(1), cfg.rack_config(1));
    }
}
