//! Cluster-level fault routing and retry supervision.
//!
//! [`Cluster`] implements [`FaultSink`] for the rack-scoped fault kinds
//! (`RackOutage`, `RackSlow`) and forwards `AtRack`-wrapped events to
//! the addressed member's own sink, so one [`ros_faults::FaultPlan`] can
//! drive faults through every layer of a federation. The supervised
//! read/write wrappers retry transient cluster errors with exponential
//! backoff charged to every alive member clock (the racks run in
//! parallel; waiting is cluster-wide).

use crate::error::ClusterError;
use crate::router::{Cluster, ClusterReadReport, ClusterWriteReport};
use bytes::Bytes;
use ros_faults::{
    FaultEvent, FaultKind, FaultSink, InjectionOutcome, RetryPolicy, RetryStats, Transience,
};
use ros_sim::SimDuration;
use ros_udf::UdfPath;

impl Cluster {
    /// Advances every alive member clock by `d` — how the supervisor
    /// charges retry backoff to a federation that runs in parallel.
    pub fn run_all_for(&mut self, d: SimDuration) {
        for rack in self.racks.iter_mut().filter(|r| r.is_alive()) {
            rack.ros_mut().run_for(d);
        }
    }

    /// Operator maintenance pass across the federation: swaps failed
    /// SSD volume members and returns quarantined drive bays to
    /// rotation on every alive member. A member whose volumes cannot
    /// heal right now is left for the next pass rather than failing
    /// the sweep. Returns `(members_healed, bays_serviced)`.
    pub fn maintain_all(&mut self) -> (usize, usize) {
        let mut healed = 0;
        let mut serviced = 0;
        for rack in self.racks.iter_mut().filter(|r| r.is_alive()) {
            if let Ok(n) = rack.ros_mut().heal_volumes() {
                healed += n;
            }
            serviced += rack.ros_mut().service_quarantined_bays();
        }
        (healed, serviced)
    }

    /// Archive pass across the federation: flush buffered writes to
    /// disc, drain the burns, and evict the SSD buffer copies on every
    /// alive member, so subsequent reads exercise the optical path
    /// (load, seek, disc read) instead of the buffer. Returns the
    /// number of buffer copies evicted.
    pub fn archive_all(&mut self, limit: SimDuration) -> Result<usize, ClusterError> {
        self.flush_all()?;
        self.run_until_quiescent_all(limit);
        let mut evicted = 0;
        for rack in self.racks.iter_mut().filter(|r| r.is_alive()) {
            evicted += rack.ros_mut().evict_burned_copies();
        }
        Ok(evicted)
    }

    /// Reads a file under `policy`: transient replica failures retry
    /// with backoff; hard errors surface immediately.
    pub fn read_file_supervised(
        &mut self,
        path: &UdfPath,
        policy: &RetryPolicy,
    ) -> Result<(ClusterReadReport, RetryStats), ClusterError> {
        let mut stats = RetryStats::new();
        loop {
            stats.attempts += 1;
            match self.read_file(path) {
                Ok(r) => return Ok((r, stats)),
                Err(e) if e.is_transient() => {
                    if !policy.should_retry(stats.attempts) {
                        return Err(ClusterError::RetriesExhausted {
                            op: "read".into(),
                            attempts: stats.attempts,
                            last: Box::new(e),
                        });
                    }
                    let backoff = policy.backoff(stats.attempts);
                    stats.note_backoff(backoff);
                    self.run_all_for(backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes a file under `policy`. A [`ClusterError::PartialWrite`] is
    /// returned as-is, never retried: the replicas it reached are
    /// durable and recorded, so a retry would mint a fresh version
    /// rather than complete this one — the caller treats it as a typed
    /// degraded-but-acknowledged outcome.
    pub fn write_file_supervised(
        &mut self,
        path: &UdfPath,
        data: impl Into<Bytes>,
        policy: &RetryPolicy,
    ) -> Result<(ClusterWriteReport, RetryStats), ClusterError> {
        let data: Bytes = data.into();
        let mut stats = RetryStats::new();
        loop {
            stats.attempts += 1;
            match self.write_file(path, data.clone()) {
                Ok(r) => return Ok((r, stats)),
                Err(e) if e.is_transient() => {
                    if !policy.should_retry(stats.attempts) {
                        return Err(ClusterError::RetriesExhausted {
                            op: "write".into(),
                            attempts: stats.attempts,
                            last: Box::new(e),
                        });
                    }
                    let backoff = policy.backoff(stats.attempts);
                    stats.note_backoff(backoff);
                    self.run_all_for(backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Routes rack-scoped faults; `AtRack` unwraps one level and hands the
/// inner event to the member's own sink (which recursively routes it to
/// a drive, the mech, a volume, or disc media).
impl FaultSink for Cluster {
    fn inject_fault(&mut self, event: &FaultEvent) -> InjectionOutcome {
        match &event.kind {
            FaultKind::RackOutage { rack } => {
                let idx = *rack as usize % self.racks.len();
                if !self.racks[idx].is_alive() {
                    return InjectionOutcome::Skipped(format!("rack {idx} already down"));
                }
                if self.alive_racks() == 1 {
                    return InjectionOutcome::Skipped("last alive rack is spared".into());
                }
                if self
                    .fail_rack(u32::try_from(idx).unwrap_or(u32::MAX))
                    .is_err()
                {
                    return InjectionOutcome::Skipped(format!("rack {idx} cannot fail"));
                }
                InjectionOutcome::Injected
            }
            FaultKind::RackSlow { rack, factor_pct } => {
                let idx = *rack as usize % self.racks.len();
                if !self.racks[idx].is_alive() {
                    return InjectionOutcome::Skipped(format!("rack {idx} is down"));
                }
                self.racks[idx].set_slowdown_pct(*factor_pct);
                InjectionOutcome::Injected
            }
            FaultKind::AtRack { rack, fault } => {
                let idx = *rack as usize % self.racks.len();
                if !self.racks[idx].is_alive() {
                    return InjectionOutcome::Skipped(format!("rack {idx} is down"));
                }
                let inner = FaultEvent {
                    seq: event.seq,
                    at_op: event.at_op,
                    kind: (**fault).clone(),
                };
                self.racks[idx].ros_mut().inject_fault(&inner)
            }
            // Bare layer-level kinds are rack-internal; a cluster plan
            // addresses them through `AtRack`.
            _ => InjectionOutcome::NotApplicable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn ev(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            seq: 0,
            at_op: 0,
            kind,
        }
    }

    #[test]
    fn rack_outage_fails_over_reads() {
        let mut c = Cluster::new(ClusterConfig::tiny(3)).unwrap();
        let w = c.write_file(&p("/o/f"), vec![4u8; 2048]).unwrap();
        assert_eq!(
            c.inject_fault(&ev(FaultKind::RackOutage { rack: w.racks[0] })),
            InjectionOutcome::Injected
        );
        let (r, stats) = c
            .read_file_supervised(&p("/o/f"), &RetryPolicy::default())
            .unwrap();
        assert_eq!(r.data.as_ref(), &[4u8; 2048][..]);
        assert_eq!(r.rack, w.racks[1], "replica serves");
        assert_eq!(r.fallbacks, 1);
        assert_eq!(stats.attempts, 1, "fallback is not a retry");
    }

    #[test]
    fn outage_spares_the_last_rack() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        assert_eq!(
            c.inject_fault(&ev(FaultKind::RackOutage { rack: 0 })),
            InjectionOutcome::Injected
        );
        assert!(matches!(
            c.inject_fault(&ev(FaultKind::RackOutage { rack: 1 })),
            InjectionOutcome::Skipped(_)
        ));
        assert!(matches!(
            c.inject_fault(&ev(FaultKind::RackOutage { rack: 0 })),
            InjectionOutcome::Skipped(_)
        ));
        assert_eq!(c.alive_racks(), 1);
    }

    #[test]
    fn rack_slow_scales_reported_latency() {
        let mut c = Cluster::new(ClusterConfig::tiny(1)).unwrap();
        let w1 = c.write_file(&p("/s/a"), vec![1u8; 4096]).unwrap();
        c.inject_fault(&ev(FaultKind::RackSlow {
            rack: 0,
            factor_pct: 300,
        }));
        let w2 = c.write_file(&p("/s/b"), vec![1u8; 4096]).unwrap();
        assert!(
            w2.latency.as_nanos() >= w1.latency.as_nanos() * 2,
            "3x slowdown must show in the reported latency ({} vs {})",
            w2.latency,
            w1.latency
        );
    }

    #[test]
    fn at_rack_forwards_to_the_member_stack() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        let w = c.write_file(&p("/ar/f"), vec![9u8; 200_000]).unwrap();
        c.flush_all().unwrap();
        for rack in &mut c.racks {
            rack.ros_mut().evict_burned_copies();
            rack.ros_mut().unload_all_bays().unwrap();
        }
        // A misfeed inside the primary rack: the supervised read retries
        // within that rack's replica before ever needing a fallback.
        let out = c.inject_fault(&ev(FaultKind::AtRack {
            rack: w.racks[0],
            fault: Box::new(FaultKind::MechTransient { count: 1 }),
        }));
        assert_eq!(out, InjectionOutcome::Injected);
        let (r, stats) = c
            .read_file_supervised(&p("/ar/f"), &RetryPolicy::default())
            .unwrap();
        assert_eq!(r.data.len(), 200_000);
        assert!(stats.attempts >= 1);
        // Bare layer kinds are not a cluster concern.
        assert_eq!(
            c.inject_fault(&ev(FaultKind::MechTransient { count: 1 })),
            InjectionOutcome::NotApplicable
        );
    }

    #[test]
    fn partial_write_is_a_durable_outcome_not_a_retry() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/pw/first"), vec![1u8; 512]).unwrap();
        let targets = c.targets_of(&p("/pw/first")).unwrap();
        let secondary = targets[1];
        c.racks[secondary as usize]
            .ros_mut()
            .write_file(&p("/pw/second/shadow"), vec![0u8; 16])
            .unwrap();
        let err = c
            .write_file_supervised(&p("/pw/second"), vec![2u8; 512], &RetryPolicy::default())
            .unwrap_err();
        match err {
            ClusterError::PartialWrite { completed, .. } => {
                assert_eq!(completed, vec![targets[0]]);
            }
            other => panic!("expected PartialWrite, got {other:?}"),
        }
        // The version that landed is durable and versioned exactly once.
        let (size, ver, _) = c.stat(&p("/pw/second")).unwrap();
        assert_eq!((size, ver), (512, 1));
    }
}
