//! Cross-rack MV snapshot replication (§4.2 carried across racks).
//!
//! Inside one rack, OLFS already protects the metadata volume by burning
//! periodic snapshots to disc ([`ros_olfs::Ros::burn_mv_snapshot`]).
//! That survives a server crash but not the loss of the whole rack. The
//! cluster therefore also ships each rack's MV snapshot text to
//! `mv_guardians` *other* racks — the guardians are chosen by rendezvous
//! ranking on a per-rack key, and the copy travels through the guardian's
//! ordinary write path, so it is itself buffered, packed and burned like
//! any archive data.
//!
//! Recovery reads the newest guardian copy back and rebuilds a
//! [`MetadataVolume`] from it; [`ros_olfs::Ros::adopt_namespace`] then
//! installs it on a rack that lost its MV but kept its media.

use crate::error::ClusterError;
use crate::placement::{self, RackId};
use crate::router::Cluster;
use bytes::Bytes;
use ros_olfs::mv::MetadataVolume;
use ros_sim::SimDuration;
use ros_udf::UdfPath;
use serde::{Deserialize, Serialize};

/// Directory on each guardian rack holding foreign MV snapshot copies.
/// Lives outside user namespaces, like the rack-local `/.mv-snapshots`.
pub const MV_REPLICA_DIR: &str = "/.mv-replicas";

/// Outcome of one cluster-wide MV replication round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MvReplicationReport {
    /// Sequence number of this round (monotonic per cluster).
    pub seq: u64,
    /// Racks whose namespace was snapshotted this round.
    pub snapshots: usize,
    /// Guardian copies written cluster-wide this round.
    pub guardian_copies: usize,
    /// MV snapshot parts burned locally (sum over racks), when local
    /// burning was requested.
    pub local_parts: usize,
    /// Snapshot text bytes shipped cross-rack this round.
    pub bytes_shipped: u64,
    /// Cluster makespan of the round.
    pub elapsed: SimDuration,
}

impl Cluster {
    /// Runs one MV replication round: every alive rack snapshots its
    /// namespace and ships the snapshot text to its guardian racks.
    /// With `burn_local` set, each rack also burns the snapshot to its
    /// own discs first (the single-rack §4.2 path).
    ///
    /// Guardians are the top `mv_guardians` alive racks by rendezvous
    /// rank on the key `mv:<rack>`, excluding the owner. Only the newest
    /// guardian copy is tracked for recovery.
    pub fn replicate_mv_snapshots(
        &mut self,
        burn_local: bool,
    ) -> Result<MvReplicationReport, ClusterError> {
        let start = self.now();
        self.mv_seq = self.mv_seq.wrapping_add(1);
        let seq = self.mv_seq;
        let alive: Vec<RackId> = self
            .racks
            .iter()
            .filter(|r| r.is_alive())
            .map(|r| r.id())
            .collect();
        let mut snapshots = 0;
        let mut guardian_copies = 0;
        let mut local_parts = 0;
        let mut bytes_shipped = 0u64;
        for owner in &alive {
            let idx = self.rack_index(owner.0)?;
            if burn_local {
                let (_seq, parts) = self.racks[idx]
                    .ros_mut()
                    .burn_mv_snapshot()
                    .map_err(ClusterError::on(owner.0))?;
                local_parts += parts;
            }
            let text = self.racks[idx].ros().export_namespace();
            snapshots += 1;
            let guardians: Vec<RackId> = placement::rank(&format!("mv:{}", owner.0), &alive)
                .into_iter()
                .filter(|g| g != owner)
                .take(self.cfg.mv_guardians)
                .collect();
            if guardians.is_empty() {
                continue;
            }
            let payload = Bytes::from(text.into_bytes());
            let path_str = format!("{MV_REPLICA_DIR}/rack-{:03}/seq-{seq:06}", owner.0);
            let path: UdfPath = path_str.parse().map_err(|_| {
                ClusterError::Internal(format!("generated MV replica path invalid: {path_str}"))
            })?;
            let mut placed = Vec::new();
            for g in guardians {
                let gidx = self.rack_index(g.0)?;
                let rack = &mut self.racks[gidx];
                rack.ros_mut()
                    .write_file(&path, payload.clone())
                    .map_err(ClusterError::on(g.0))?;
                rack.note_stored(payload.len() as u64);
                bytes_shipped = bytes_shipped.saturating_add(payload.len() as u64);
                guardian_copies += 1;
                placed.push((g, path_str.clone()));
            }
            self.mv_guardian_paths.insert(owner.0, placed);
        }
        Ok(MvReplicationReport {
            seq,
            snapshots,
            guardian_copies,
            local_parts,
            bytes_shipped,
            elapsed: self.elapsed_since(start),
        })
    }

    /// Recovers rack `owner`'s namespace from the newest guardian copy.
    /// Returns the rebuilt volume and the guardian that served it.
    ///
    /// Works whether or not `owner` is alive — this is the read path the
    /// failure drill uses to audit what a dead rack held.
    pub fn recover_namespace(
        &mut self,
        owner: u32,
    ) -> Result<(MetadataVolume, RackId), ClusterError> {
        self.rack_index(owner)?;
        let entries = self
            .mv_guardian_paths
            .get(&owner)
            .cloned()
            .ok_or(ClusterError::NoGuardianSnapshot(owner))?;
        for (guardian, path_str) in entries {
            let gidx = self.rack_index(guardian.0)?;
            if !self.racks[gidx].is_alive() {
                continue;
            }
            let path: UdfPath = match path_str.parse() {
                Ok(p) => p,
                Err(_) => continue,
            };
            let report = match self.racks[gidx].ros_mut().read_file(&path) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let text = String::from_utf8_lossy(&report.data);
            let mv = MetadataVolume::restore(&text).map_err(ClusterError::on(guardian.0))?;
            return Ok((mv, guardian));
        }
        Err(ClusterError::NoGuardianSnapshot(owner))
    }

    /// Recovers rack `rack` from MV loss (server metadata gone, rack and
    /// media intact): reads the guardian snapshot and adopts it as the
    /// rack's namespace. Returns the restored file count and the cluster
    /// time the recovery took.
    pub fn recover_mv_via_guardian(
        &mut self,
        rack: u32,
    ) -> Result<(usize, SimDuration), ClusterError> {
        let idx = self.rack_index(rack)?;
        if !self.racks[idx].is_alive() {
            return Err(ClusterError::RackDown(rack));
        }
        let start = self.now();
        let (mv, _guardian) = self.recover_namespace(rack)?;
        let files = mv.file_count();
        self.racks[idx].ros_mut().adopt_namespace(mv);
        Ok((files, self.elapsed_since(start)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn replication_round_ships_to_guardians() {
        let mut c = Cluster::new(ClusterConfig::tiny(3)).unwrap();
        c.write_file(&p("/a/f"), vec![1u8; 256]).unwrap();
        let rep = c.replicate_mv_snapshots(false).unwrap();
        assert_eq!(rep.seq, 1);
        assert_eq!(rep.snapshots, 3);
        // tiny() keeps one guardian per rack.
        assert_eq!(rep.guardian_copies, 3);
        assert!(rep.bytes_shipped > 0);
        assert_eq!(rep.local_parts, 0, "no local burn requested");
    }

    #[test]
    fn guardian_copy_rebuilds_the_namespace() {
        let mut c = Cluster::new(ClusterConfig::tiny(3)).unwrap();
        for i in 0..5 {
            c.write_file(&p(&format!("/docs/f{i}")), vec![i as u8; 128])
                .unwrap();
        }
        c.replicate_mv_snapshots(false).unwrap();
        // Find a rack that holds some of /docs.
        let owner = c.targets_of(&p("/docs/f0")).unwrap()[0];
        let (mv, guardian) = c.recover_namespace(owner).unwrap();
        assert_ne!(guardian.0, owner, "guardian must be another rack");
        assert!(mv.file_count() >= 5, "namespace carries the files");
    }

    #[test]
    fn mv_loss_recovery_adopts_and_serves_reads() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/keep/f"), vec![9u8; 512]).unwrap();
        c.replicate_mv_snapshots(true).unwrap();
        let owner = c.targets_of(&p("/keep/f")).unwrap()[0];
        // Simulate MV loss on the owner: blank its namespace, then
        // recover from the guardian.
        let blank = MetadataVolume::restore(&MetadataVolume::default().snapshot()).unwrap();
        c.racks[owner as usize].ros_mut().adopt_namespace(blank);
        let (files, elapsed) = c.recover_mv_via_guardian(owner).unwrap();
        assert!(files >= 1);
        let _ = elapsed;
        let r = c.read_file(&p("/keep/f")).unwrap();
        assert_eq!(r.data.as_ref(), &[9u8; 512][..]);
    }

    #[test]
    fn missing_guardian_is_a_typed_error() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        assert!(matches!(
            c.recover_namespace(0).unwrap_err(),
            ClusterError::NoGuardianSnapshot(0)
        ));
    }

    #[test]
    fn single_rack_cluster_has_no_guardians() {
        let mut c = Cluster::new(ClusterConfig::tiny(1)).unwrap();
        c.write_file(&p("/solo/f"), vec![0u8; 64]).unwrap();
        let rep = c.replicate_mv_snapshots(false).unwrap();
        assert_eq!(rep.guardian_copies, 0);
    }
}
