//! Whole-rack failure and the re-replication drill.
//!
//! The paper treats the rack as the unit of growth (§6); the cluster
//! treats it as the unit of failure too. When a rack dies, every archive
//! group it held must be brought back to full replication from the
//! surviving replicas, and the dead rack's namespace is audited from its
//! guardian MV snapshot so the operator knows exactly what was at risk.
//!
//! The drill models the operational runbook: fail the rack, restore its
//! namespace from a guardian, copy each affected group from a survivor
//! onto a fresh rendezvous-chosen rack, then verify every affected file
//! is readable again. With replication >= 2 a single rack failure loses
//! nothing; with replication 1 the drill reports the exact loss.

use crate::error::ClusterError;
use crate::placement::{self, RackId};
use crate::router::Cluster;
use ros_cas::{verify_payload, Digest};
use ros_disk::DataPlane;
use ros_sim::SimDuration;
use ros_udf::UdfPath;
use serde::{Deserialize, Serialize};

/// Outcome of a rack-failure re-replication drill.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillReport {
    /// The rack that failed.
    pub failed: u32,
    /// Guardian rack that supplied the dead rack's MV snapshot, if any.
    pub namespace_source: Option<u32>,
    /// Files recorded in the restored namespace audit.
    pub namespace_files: usize,
    /// Groups that were re-replicated onto a fresh rack.
    pub groups_relocated: usize,
    /// Groups left below the replication factor (no spare rack with
    /// capacity); their files are still readable from survivors.
    pub groups_degraded: usize,
    /// Files copied survivor -> fresh rack.
    pub files_recovered: usize,
    /// Files with no surviving replica (0 when replication >= 2).
    pub files_lost: usize,
    /// Copied files that read back *bit-exact* through the normal read
    /// path after the drill (CAS content-digest match against the
    /// survivor copy, digests computed on the data plane).
    pub files_verified: usize,
    /// Payload bytes copied between racks.
    pub bytes_moved: u64,
    /// Cluster time from drill start to full recovery (makespan; racks
    /// copy in parallel).
    pub recovery_time: SimDuration,
}

/// One group the dead rack held: key, current targets, member files
/// with their sizes.
type AffectedGroup = (String, Vec<RackId>, Vec<(String, u64)>);

impl Cluster {
    /// Marks rack `id` failed: its clock freezes and the router stops
    /// offering it reads, writes, or guardian duty.
    pub fn fail_rack(&mut self, id: u32) -> Result<(), ClusterError> {
        let idx = self.rack_index(id)?;
        if !self.racks[idx].is_alive() {
            return Err(ClusterError::RackDown(id));
        }
        self.racks[idx].fail();
        Ok(())
    }

    /// Runs the re-replication drill for an already-failed rack: audit
    /// its namespace from a guardian, copy every group it held from a
    /// survivor onto a fresh rack, and verify the affected files read
    /// back.
    pub fn rereplicate_after_failure(&mut self, failed: u32) -> Result<DrillReport, ClusterError> {
        let fidx = self.rack_index(failed)?;
        if self.racks[fidx].is_alive() {
            return Err(ClusterError::Internal(format!(
                "rack {failed} is still alive; fail it before the drill"
            )));
        }
        let start = self.now();

        // 1. Namespace audit from the guardian copy (what did we lose?).
        let (namespace_source, namespace_files) = match self.recover_namespace(failed) {
            Ok((mv, guardian)) => (Some(guardian.0), mv.file_count()),
            Err(ClusterError::NoGuardianSnapshot(_)) => (None, 0),
            Err(e) => return Err(e),
        };

        // 2. Collect the groups the dead rack held.
        let dead = RackId(failed);
        let affected: Vec<AffectedGroup> = self
            .groups
            .iter()
            .filter(|(_, g)| g.targets.contains(&dead))
            .map(|(k, g)| {
                let files = g.files.iter().map(|(p, s)| (p.clone(), *s)).collect();
                (k.clone(), g.targets.clone(), files)
            })
            .collect();

        let mut groups_relocated = 0;
        let mut groups_degraded = 0;
        let mut files_recovered = 0;
        let mut files_lost = 0;
        let mut bytes_moved = 0u64;
        let mut new_targets: Vec<(String, Vec<RackId>)> = Vec::new();
        let mut verify_list: Vec<(String, Digest)> = Vec::new();
        let plane = DataPlane::detect();

        for (key, targets, files) in affected {
            let survivors: Vec<RackId> = targets
                .iter()
                .copied()
                .filter(|r| *r != dead && self.racks[r.0 as usize].is_alive())
                .collect();
            if survivors.is_empty() {
                files_lost += files.len();
                new_targets.push((key, survivors));
                continue;
            }
            let group_bytes: u64 = files.iter().map(|(_, s)| *s).sum();
            let candidates: Vec<(RackId, u64)> = self
                .racks
                .iter()
                .filter(|r| r.is_alive() && !survivors.contains(&r.id()))
                .map(|r| (r.id(), r.free_bytes()))
                .collect();
            let fresh = placement::select_targets(&key, &candidates, group_bytes, 1)
                .first()
                .copied();
            let Some(fresh) = fresh else {
                groups_degraded += 1;
                new_targets.push((key, survivors));
                continue;
            };
            // Pull the group's files from the survivors first (reads
            // advance only the survivor racks' clocks, in file order).
            let mut copies: Vec<(String, UdfPath, bytes::Bytes)> = Vec::with_capacity(files.len());
            for (path_str, _size) in &files {
                let path: UdfPath = path_str.parse().map_err(|_| {
                    ClusterError::Internal(format!("tracked path invalid: {path_str}"))
                })?;
                let mut data = None;
                for s in &survivors {
                    if let Ok(report) = self.racks[s.0 as usize].ros_mut().read_file(&path) {
                        data = Some(report.data);
                        break;
                    }
                }
                let Some(data) = data else {
                    files_lost += 1;
                    continue;
                };
                copies.push((path_str.clone(), path, data));
            }
            // Digest the survivor copies on the data plane; the verify
            // pass below re-reads each file and compares bit-exact.
            // Parallelism is across files, so each digest runs serially.
            let digests: Vec<Digest> = plane.map(&copies, |(_, _, data)| Digest::of(data));
            for ((path_str, path, data), digest) in copies.into_iter().zip(digests) {
                let len = data.len() as u64;
                let tidx = self.rack_index(fresh.0)?;
                self.racks[tidx]
                    .ros_mut()
                    .write_file(&path, data)
                    .map_err(ClusterError::on(fresh.0))?;
                self.racks[tidx].note_stored(len);
                bytes_moved = bytes_moved.saturating_add(len);
                files_recovered += 1;
                verify_list.push((path_str, digest));
            }
            groups_relocated += 1;
            let mut updated = survivors;
            updated.push(fresh);
            new_targets.push((key, updated));
        }

        for (key, targets) in new_targets {
            if let Some(g) = self.groups.get_mut(&key) {
                g.targets = targets;
            }
        }

        // 3. Verify the copied files through the normal read path,
        //    bit-exact against the survivor copy's digest.
        let mut files_verified = 0;
        for (path_str, digest) in &verify_list {
            if let Ok(path) = path_str.parse::<UdfPath>() {
                if let Ok(report) = self.read_file(&path) {
                    if verify_payload(digest, &report.data, &plane).is_ok() {
                        files_verified += 1;
                    }
                }
            }
        }

        Ok(DrillReport {
            failed,
            namespace_source,
            namespace_files,
            groups_relocated,
            groups_degraded,
            files_recovered,
            files_lost,
            files_verified,
            bytes_moved,
            recovery_time: self.elapsed_since(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn loaded_cluster(racks: usize) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::tiny(racks)).unwrap();
        for g in 0..6 {
            for i in 0..3 {
                c.write_file(&p(&format!("/load/g{g}/f{i}")), vec![g as u8; 1024])
                    .unwrap();
            }
        }
        c
    }

    #[test]
    fn drill_restores_replication_with_zero_loss() {
        let mut c = loaded_cluster(4);
        c.replicate_mv_snapshots(false).unwrap();
        c.fail_rack(1).unwrap();
        let report = c.rereplicate_after_failure(1).unwrap();
        assert_eq!(report.failed, 1);
        assert_eq!(report.files_lost, 0, "replication 2 survives one rack");
        assert_eq!(report.files_verified, report.files_recovered);
        assert!(report.recovery_time > SimDuration::ZERO);
        // Every group is back at full replication on alive racks.
        for g in c.groups.values() {
            assert_eq!(g.targets.len(), 2);
            assert!(g.targets.iter().all(|r| c.racks[r.0 as usize].is_alive()));
        }
    }

    #[test]
    fn drill_audits_namespace_from_guardian() {
        let mut c = loaded_cluster(4);
        c.replicate_mv_snapshots(false).unwrap();
        c.fail_rack(2).unwrap();
        let report = c.rereplicate_after_failure(2).unwrap();
        assert!(report.namespace_source.is_some());
        assert!(report.namespace_files > 0);
    }

    #[test]
    fn replication_one_reports_exact_loss() {
        let mut cfg = ClusterConfig::tiny(3);
        cfg.replication = 1;
        let mut c = Cluster::new(cfg).unwrap();
        for g in 0..9 {
            c.write_file(&p(&format!("/solo/g{g}/f")), vec![7u8; 256])
                .unwrap();
        }
        c.fail_rack(0).unwrap();
        let held: usize = c
            .groups
            .values()
            .filter(|g| g.targets == vec![RackId(0)])
            .map(|g| g.files.len())
            .sum();
        let report = c.rereplicate_after_failure(0).unwrap();
        assert_eq!(report.files_lost, held);
        assert_eq!(report.files_recovered, 0, "nothing to copy from");
    }

    #[test]
    fn drill_requires_a_failed_rack() {
        let mut c = loaded_cluster(2);
        assert!(matches!(
            c.rereplicate_after_failure(0).unwrap_err(),
            ClusterError::Internal(_)
        ));
        c.fail_rack(0).unwrap();
        assert!(matches!(
            c.fail_rack(0).unwrap_err(),
            ClusterError::RackDown(0)
        ));
        assert!(matches!(
            c.fail_rack(9).unwrap_err(),
            ClusterError::UnknownRack(9)
        ));
    }

    #[test]
    fn two_rack_cluster_degrades_but_keeps_data() {
        let mut c = loaded_cluster(2);
        c.fail_rack(1).unwrap();
        let report = c.rereplicate_after_failure(1).unwrap();
        assert_eq!(report.files_lost, 0);
        // Nowhere to re-replicate: every group ran on both racks.
        assert_eq!(report.groups_relocated, 0);
        assert!(report.groups_degraded > 0);
        // Data still serves from the survivor.
        let r = c.read_file(&p("/load/g0/f0")).unwrap();
        assert_eq!(r.rack, 0);
        assert_eq!(r.data.len(), 1024);
    }
}
