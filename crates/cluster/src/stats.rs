//! Cluster-wide and per-rack measurement reports.
//!
//! All numbers cover the current measurement epoch (since the last
//! [`crate::Cluster::begin_epoch`], or cluster creation). Throughput is
//! bytes moved divided by the cluster makespan of the epoch — racks run
//! in parallel, so a read mix balanced over N racks shows close to N
//! times one rack's rate, which is the scale-out claim the bench
//! scenario checks.

use crate::router::Cluster;
use ros_sim::stats::LatencyRecorder;
use ros_sim::{Bandwidth, SimDuration};
use serde::{Deserialize, Serialize};

/// Per-rack load summary for one measurement epoch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RackLoadSummary {
    /// The rack's cluster identity.
    pub rack_id: u32,
    /// Whether the rack is serving requests.
    pub alive: bool,
    /// Reads served by this rack.
    pub reads: usize,
    /// Replica writes applied on this rack.
    pub writes: usize,
    /// Mean read latency on this rack.
    pub read_mean: SimDuration,
    /// Mean per-replica write latency on this rack.
    pub write_mean: SimDuration,
    /// Payload bytes read from this rack.
    pub bytes_read: u64,
    /// Payload bytes written to this rack (per replica).
    pub bytes_written: u64,
    /// Total payload bytes placed on this rack since creation.
    pub bytes_stored: u64,
}

/// Cluster-wide measurement report for one epoch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-rack breakdown, rack id order.
    pub per_rack: Vec<RackLoadSummary>,
    /// All read latencies across racks (one sample per served read).
    pub read_latency: LatencyRecorder,
    /// All per-replica write latencies across racks.
    pub write_latency: LatencyRecorder,
    /// Cluster makespan of the epoch: furthest alive clock minus epoch
    /// start.
    pub elapsed: SimDuration,
    /// Payload bytes read cluster-wide.
    pub bytes_read: u64,
    /// Payload bytes written cluster-wide (counting each replica).
    pub bytes_written: u64,
}

impl ClusterReport {
    /// Collects the current epoch's measurements from `cluster`.
    pub fn collect(cluster: &Cluster) -> ClusterReport {
        let mut read_latency = LatencyRecorder::new("cluster read");
        let mut write_latency = LatencyRecorder::new("cluster write");
        let mut bytes_read = 0u64;
        let mut bytes_written = 0u64;
        let per_rack = cluster
            .racks()
            .iter()
            .map(|r| {
                read_latency.merge(&r.read_latency);
                write_latency.merge(&r.write_latency);
                bytes_read = bytes_read.saturating_add(r.bytes_read);
                bytes_written = bytes_written.saturating_add(r.bytes_written);
                RackLoadSummary {
                    rack_id: r.id().0,
                    alive: r.is_alive(),
                    reads: r.read_latency.count(),
                    writes: r.write_latency.count(),
                    read_mean: r.read_latency.mean(),
                    write_mean: r.write_latency.mean(),
                    bytes_read: r.bytes_read,
                    bytes_written: r.bytes_written,
                    bytes_stored: r.bytes_stored(),
                }
            })
            .collect();
        ClusterReport {
            per_rack,
            read_latency,
            write_latency,
            elapsed: cluster.elapsed_since(cluster.epoch_start),
            bytes_read,
            bytes_written,
        }
    }

    /// Aggregate read throughput over the epoch makespan.
    pub fn read_throughput(&self) -> Bandwidth {
        Self::rate(self.bytes_read, self.elapsed)
    }

    /// Aggregate write throughput (replica bytes) over the epoch makespan.
    pub fn write_throughput(&self) -> Bandwidth {
        Self::rate(self.bytes_written, self.elapsed)
    }

    fn rate(bytes: u64, elapsed: SimDuration) -> Bandwidth {
        if elapsed.is_zero() {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use ros_udf::UdfPath;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn report_accounts_reads_and_writes() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/r/f"), vec![1u8; 4096]).unwrap();
        c.read_file(&p("/r/f")).unwrap();
        let rep = ClusterReport::collect(&c);
        assert_eq!(rep.per_rack.len(), 2);
        assert_eq!(rep.read_latency.count(), 1);
        // Replication 2: two replica writes recorded.
        assert_eq!(rep.write_latency.count(), 2);
        assert_eq!(rep.bytes_read, 4096);
        assert_eq!(rep.bytes_written, 8192);
        assert!(rep.read_throughput().bytes_per_sec() > 0.0);
        assert!(rep.write_throughput().bytes_per_sec() > 0.0);
    }

    #[test]
    fn empty_epoch_reports_zero_rates() {
        let c = Cluster::new(ClusterConfig::tiny(1)).unwrap();
        let rep = ClusterReport::collect(&c);
        assert!(rep.read_throughput().is_zero());
        assert!(rep.write_throughput().is_zero());
    }
}
