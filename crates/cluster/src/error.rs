//! Typed errors for the cluster front end.

use ros_olfs::OlfsError;

/// Any error the cluster front end can surface to a caller.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The cluster configuration is inconsistent.
    Config(String),
    /// The addressed rack does not exist.
    UnknownRack(u32),
    /// The addressed rack is marked failed.
    RackDown(u32),
    /// No alive rack has capacity for the placement.
    NoCapacity {
        /// Bytes the placement needed.
        size: u64,
        /// Replicas requested.
        replication: usize,
    },
    /// The path is not tracked by any placement group.
    NotFound(String),
    /// Every replica of a file failed to serve a read.
    AllReplicasFailed {
        /// The file path.
        path: String,
        /// Racks tried, in placement order.
        tried: Vec<u32>,
    },
    /// No guardian rack holds an MV snapshot for the given rack.
    NoGuardianSnapshot(u32),
    /// A member rack returned an error.
    Rack {
        /// The rack that failed.
        rack: u32,
        /// The underlying OLFS error.
        source: OlfsError,
    },
    /// A replicated write landed on some racks but failed on another.
    /// The group map records the completed replicas, so the data that
    /// did land stays readable; the caller decides whether to retry for
    /// full redundancy.
    PartialWrite {
        /// The file path.
        path: String,
        /// Racks the payload durably reached, placement order.
        completed: Vec<u32>,
        /// The rack whose replica failed.
        failed: u32,
        /// The underlying OLFS error on the failed rack.
        source: OlfsError,
    },
    /// A supervised cluster operation ran out of retry budget; `last`
    /// is the transient error from the final attempt.
    RetriesExhausted {
        /// The supervised operation ("read", "write", ...).
        op: String,
        /// Attempts performed before giving up.
        attempts: u32,
        /// The last transient failure.
        last: Box<ClusterError>,
    },
    /// An internal invariant was violated.
    Internal(String),
}

impl ClusterError {
    /// Adapter for `map_err`: tags an OLFS error with its rack.
    pub(crate) fn on(rack: u32) -> impl Fn(OlfsError) -> ClusterError + Copy {
        move |source| ClusterError::Rack { rack, source }
    }
}

/// What the cluster-level retry supervisor may retry.
///
/// A single rack error is transient when its OLFS source is (a misfeed,
/// a rerouted drive); `AllReplicasFailed` is transient because replica
/// errors are often independent glitches and the next pass may find one
/// recovered. A `PartialWrite` is deliberately NOT transient: the bytes
/// that landed are durable and recorded, so retrying would mint a new
/// version instead of completing this one — callers handle it as a typed
/// degraded outcome.
impl ros_faults::Transience for ClusterError {
    fn is_transient(&self) -> bool {
        match self {
            ClusterError::Rack { source, .. } => ros_faults::Transience::is_transient(source),
            ClusterError::AllReplicasFailed { .. } => true,
            _ => false,
        }
    }
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "config: {m}"),
            ClusterError::UnknownRack(r) => write!(f, "unknown rack {r}"),
            ClusterError::RackDown(r) => write!(f, "rack {r} is down"),
            ClusterError::NoCapacity { size, replication } => {
                write!(f, "no capacity for {size} bytes x{replication}")
            }
            ClusterError::NotFound(p) => write!(f, "not found: {p}"),
            ClusterError::AllReplicasFailed { path, tried } => {
                write!(f, "all replicas of {path} failed (tried racks {tried:?})")
            }
            ClusterError::NoGuardianSnapshot(r) => {
                write!(f, "no guardian MV snapshot for rack {r}")
            }
            ClusterError::Rack { rack, source } => write!(f, "rack {rack}: {source}"),
            ClusterError::PartialWrite {
                path,
                completed,
                failed,
                source,
            } => write!(
                f,
                "partial write of {path}: replicas on racks {completed:?}, rack {failed} failed: {source}"
            ),
            ClusterError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
            ClusterError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Rack { source, .. } | ClusterError::PartialWrite { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}
