//! Federation-wide audit sweep with replica escalation (DESIGN.md §16).
//!
//! Each rack's LOCKSS-style sampled audit ([`ros_olfs::Ros::audit_sample`])
//! heals latent rot from its own disc-array parity. When the rot
//! exceeds the local schema's tolerance the rack reports the images
//! unrepairable — and the cluster is the next rung of the ladder: the
//! affected files are re-read from a healthy replica rack, rewritten
//! onto the damaged member, and verified bit-exact through the normal
//! read path. Only files with no healthy source *anywhere* are reported
//! lost.

use crate::error::ClusterError;
use crate::router::Cluster;
use ros_cas::{verify_payload, Digest};
use ros_disk::DataPlane;
use ros_sim::SimDuration;
use ros_udf::UdfPath;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome of one cluster-wide audit sweep ([`Cluster::audit_all`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClusterAuditReport {
    /// Images digest-verified across all alive racks.
    pub sampled: usize,
    /// Sampled images whose bytes matched their recorded digest.
    pub verified: usize,
    /// Sampled images with latent rot (digest mismatch, no I/O error).
    pub rotted: usize,
    /// Rotted images healed locally from disc-array parity.
    pub repaired_parity: usize,
    /// Files re-fetched from a replica rack after local redundancy was
    /// exhausted, rewritten and digest-verified.
    pub repaired_replica: usize,
    /// Files with no healthy copy on any alive rack — actual data loss.
    pub lost: Vec<String>,
    /// Cluster time the sweep consumed (makespan across racks).
    pub elapsed: SimDuration,
}

impl Cluster {
    /// Moves every alive rack to cold storage: lingering buffer copies
    /// of burned images are evicted and loaded trays are returned to
    /// the roller, so subsequent reads and audits exercise the media
    /// path rather than a warm cache. Returns the number of racks
    /// cold-stored.
    pub fn cold_store_all(&mut self) -> usize {
        let mut n = 0;
        for rack in &mut self.racks {
            if !rack.is_alive() {
                continue;
            }
            rack.ros_mut().evict_all_burned_copies();
            if rack.ros_mut().unload_all_bays().is_ok() {
                n += 1;
            }
        }
        n
    }

    /// Runs one sampled-audit pass on every alive rack (up to `sample`
    /// images each), then escalates whatever local parity could not
    /// repair to the replica tier: the affected files are re-read from
    /// a healthy replica, rewritten onto the damaged rack, and the
    /// rewrite is verified bit-exact against the replica's digest
    /// through the normal read path.
    pub fn audit_all(&mut self, sample: usize) -> Result<ClusterAuditReport, ClusterError> {
        let start = self.now();
        let mut report = ClusterAuditReport::default();
        let plane = DataPlane::detect();

        let alive: Vec<usize> = (0..self.racks.len())
            .filter(|i| self.racks[*i].is_alive())
            .collect();
        for idx in alive {
            let rack_id = self.racks[idx].id();
            let local = self.racks[idx].ros_mut().audit_sample(sample);
            report.sampled += local.sampled;
            report.verified += local.verified;
            report.rotted += local.rotted.len();
            report.repaired_parity += local.repaired.len();

            // Escalate: map unrepairable images to the files they hold.
            let mut paths: BTreeSet<String> = BTreeSet::new();
            for image in &local.unrepairable {
                for path in self.racks[idx].ros().paths_of_image(*image) {
                    paths.insert(path.to_string());
                }
            }
            for path_str in paths {
                let path: UdfPath = path_str.parse().map_err(|_| {
                    ClusterError::Internal(format!("tracked path invalid: {path_str}"))
                })?;
                let key = Cluster::group_key(&path);
                let sources: Vec<crate::placement::RackId> = self
                    .groups
                    .get(&key)
                    .map(|g| g.targets.clone())
                    .unwrap_or_default();
                // Read the healthy bytes from any alive replica.
                let mut data = None;
                for s in sources {
                    if s == rack_id || !self.racks[s.0 as usize].is_alive() {
                        continue;
                    }
                    if let Ok(rep) = self.racks[s.0 as usize].ros_mut().read_file(&path) {
                        data = Some(rep.data);
                        break;
                    }
                }
                let Some(data) = data else {
                    report.lost.push(path_str);
                    continue;
                };
                // Rewrite onto the damaged rack and verify bit-exact.
                let digest = Digest::of(&data);
                let len = data.len() as u64;
                self.racks[idx]
                    .ros_mut()
                    .write_file(&path, data.to_vec())
                    .map_err(ClusterError::on(rack_id.0))?;
                self.racks[idx].note_stored(len);
                let back = self.racks[idx]
                    .ros_mut()
                    .read_file(&path)
                    .map_err(ClusterError::on(rack_id.0))?;
                if verify_payload(&digest, &back.data, &plane).is_ok() {
                    report.repaired_replica += 1;
                } else {
                    report.lost.push(path_str);
                }
            }
        }
        report.elapsed = self.elapsed_since(start);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use ros_faults::{FaultEvent, FaultKind, FaultSink, InjectionOutcome};

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    fn ev(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            seq: 0,
            at_op: 0,
            kind,
        }
    }

    /// A replicated federation with archived (burned + cold) content.
    fn archived_cluster(racks: usize) -> (Cluster, Vec<(UdfPath, Vec<u8>)>) {
        let mut c = Cluster::new(ClusterConfig::tiny(racks)).unwrap();
        let mut files = Vec::new();
        for g in 0..4 {
            for i in 0..2 {
                let path = p(&format!("/audit/g{g}/f{i}"));
                let data = vec![(g * 16 + i) as u8; 60_000];
                c.write_file(&path, data.clone()).unwrap();
                files.push((path, data));
            }
        }
        c.archive_all(SimDuration::from_secs(86_400)).unwrap();
        // Send the trays back to the roller: cold storage means the
        // discs sit in the library, not in drives.
        for rack in &mut c.racks {
            rack.ros_mut().unload_all_bays().unwrap();
        }
        (c, files)
    }

    #[test]
    fn single_member_rot_heals_from_local_parity() {
        let (mut c, files) = archived_cluster(3);
        // One disc's rot on rack 0: within RAID-5 tolerance, so the
        // rack heals itself without touching its replicas.
        assert_eq!(
            c.racks[0]
                .ros_mut()
                .inject_fault(&ev(FaultKind::MediaRot { disc: 0, bytes: 4 })),
            InjectionOutcome::Injected
        );
        let report = c.audit_all(64).unwrap();
        assert!(report.rotted >= 1, "audit must find the rot");
        assert!(report.repaired_parity >= 1, "local parity heals it");
        assert_eq!(report.repaired_replica, 0);
        assert!(report.lost.is_empty());
        for (path, data) in &files {
            let r = c.read_file(path).unwrap();
            assert_eq!(r.data.as_ref(), data.as_slice());
        }
    }

    #[test]
    fn rot_beyond_parity_escalates_to_replica() {
        let (mut c, files) = archived_cluster(3);
        // Rot *every* burned disc on rack 0 and drop its lingering
        // buffer copies: local parity is exhausted, so the audit must
        // climb to the replica tier.
        c.racks[0].ros_mut().evict_all_burned_copies();
        assert!(c.racks[0].ros_mut().rot_media(4) >= 2);
        let report = c.audit_all(64).unwrap();
        assert!(report.rotted >= 1);
        assert!(
            report.repaired_replica >= 1,
            "replica escalation must repair: {report:?}"
        );
        assert!(report.lost.is_empty(), "replication 2 loses nothing");
        // Every file still reads back bit-exact through the router.
        for (path, data) in &files {
            let r = c.read_file(path).unwrap();
            assert_eq!(r.data.as_ref(), data.as_slice());
        }
    }

    #[test]
    fn unreplicated_rot_is_reported_lost() {
        let mut cfg = ClusterConfig::tiny(1);
        cfg.replication = 1;
        let mut c = Cluster::new(cfg).unwrap();
        let path = p("/solo/f");
        c.write_file(&path, vec![9u8; 50_000]).unwrap();
        c.archive_all(SimDuration::from_secs(86_400)).unwrap();
        c.racks[0].ros_mut().unload_all_bays().unwrap();
        c.racks[0].ros_mut().evict_all_burned_copies();
        assert!(c.racks[0].ros_mut().rot_media(4) >= 1);
        let report = c.audit_all(64).unwrap();
        assert!(report.rotted >= 1);
        assert!(
            !report.lost.is_empty(),
            "no replica to climb to: {report:?}"
        );
    }

    #[test]
    fn audit_on_healthy_cluster_is_clean_and_deterministic() {
        let build = || {
            let (mut c, _) = archived_cluster(2);
            let r = c.audit_all(16).unwrap();
            (r.sampled, r.verified, r.rotted, r.elapsed)
        };
        let (sampled, verified, rotted, elapsed) = build();
        assert!(sampled >= 1);
        assert_eq!(sampled, verified);
        assert_eq!(rotted, 0);
        assert_eq!(build(), (sampled, verified, rotted, elapsed));
    }
}
