//! The cluster front end: replicated writes, primary reads with replica
//! fallback, and per-rack request accounting.
//!
//! Racks are modelled as running in parallel: routing an operation to a
//! rack advances only that rack's event clock, and cluster time is the
//! maximum over members. A balanced workload across N racks therefore
//! completes in ~1/N the makespan of a single rack — the scale-out
//! behaviour the paper's §6 TCO analysis assumes when it prices growth
//! in whole racks.

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::placement::{self, RackId};
use crate::rack::RackNode;
use bytes::Bytes;
use ros_olfs::maintenance::SystemStatus;
use ros_olfs::OlfsError;
use ros_sim::{SimDuration, SimTime};
use ros_udf::UdfPath;
use std::collections::BTreeMap;

/// Placement record of one archive group (one directory of files).
#[derive(Clone, Debug)]
pub(crate) struct Group {
    /// Racks holding the group, rendezvous-preferred first (reads try
    /// them in order). Empty after an unrecoverable loss.
    pub(crate) targets: Vec<RackId>,
    /// Member files and their latest payload sizes.
    pub(crate) files: BTreeMap<String, u64>,
}

/// Result of a replicated cluster write.
#[derive(Clone, Debug)]
pub struct ClusterWriteReport {
    /// Racks the payload was written to, placement order.
    pub racks: Vec<u32>,
    /// Completion latency: replicas are written in parallel, so this is
    /// the slowest replica's write latency.
    pub latency: SimDuration,
    /// File version assigned by the primary rack.
    pub version: u32,
}

/// Result of a cluster read.
#[derive(Clone, Debug)]
pub struct ClusterReadReport {
    /// The file contents.
    pub data: Bytes,
    /// The rack that served the read.
    pub rack: u32,
    /// The serving rack's read latency.
    pub latency: SimDuration,
    /// Replicas that failed before one answered (0 = primary served).
    pub fallbacks: usize,
}

/// A federation of independent rack instances behind one router.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) racks: Vec<RackNode>,
    pub(crate) groups: BTreeMap<String, Group>,
    pub(crate) epoch_start: SimTime,
    pub(crate) mv_seq: u64,
    /// Latest guardian copy of each rack's MV snapshot:
    /// owner rack id -> (guardian, path on the guardian, files at snapshot).
    pub(crate) mv_guardian_paths: BTreeMap<u32, Vec<(RackId, String)>>,
}

impl Cluster {
    /// Builds a cluster of `cfg.racks` independent rack instances.
    pub fn new(cfg: ClusterConfig) -> Result<Self, ClusterError> {
        cfg.validate()?;
        let racks = (0..u32::try_from(cfg.racks).unwrap_or(u32::MAX))
            .map(|id| RackNode::try_new(&cfg, RackId(id)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Cluster {
            cfg,
            racks,
            groups: BTreeMap::new(),
            epoch_start: SimTime::ZERO,
            mv_seq: 0,
            mv_guardian_paths: BTreeMap::new(),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Cluster-wide simulated time: the furthest member clock (racks run
    /// in parallel, so the slowest member defines the makespan). Failed
    /// racks' frozen clocks are excluded.
    pub fn now(&self) -> SimTime {
        self.racks
            .iter()
            .filter(|r| r.is_alive())
            .map(RackNode::now)
            .max()
            .unwrap_or_else(|| {
                self.racks
                    .iter()
                    .map(RackNode::now)
                    .max()
                    .unwrap_or(SimTime::ZERO)
            })
    }

    /// Elapsed cluster time since `start` (zero if no alive clock has
    /// passed it — e.g. after the furthest rack failed).
    pub(crate) fn elapsed_since(&self, start: SimTime) -> SimDuration {
        let now = self.now();
        if now <= start {
            SimDuration::ZERO
        } else {
            now.duration_since(start)
        }
    }

    /// Member racks.
    pub fn racks(&self) -> &[RackNode] {
        &self.racks
    }

    /// Alive member count.
    pub fn alive_racks(&self) -> usize {
        self.racks.iter().filter(|r| r.is_alive()).count()
    }

    pub(crate) fn rack_index(&self, id: u32) -> Result<usize, ClusterError> {
        if (id as usize) < self.racks.len() {
            Ok(id as usize)
        } else {
            Err(ClusterError::UnknownRack(id))
        }
    }

    /// The placement group key of a path: its parent directory, so
    /// sibling files co-locate on the same racks (they pack into the
    /// same buckets and disc arrays inside the rack, §4.3).
    pub fn group_key(path: &UdfPath) -> String {
        match path.parent() {
            Some(dir) => dir.to_string(),
            None => "/".to_string(),
        }
    }

    /// The racks currently holding `path`'s group, placement order.
    pub fn targets_of(&self, path: &UdfPath) -> Option<Vec<u32>> {
        self.groups
            .get(&Self::group_key(path))
            .map(|g| g.targets.iter().map(|r| r.0).collect())
    }

    /// Writes a file, replicated onto the group's target racks.
    ///
    /// A new group is placed by rendezvous hashing over alive racks with
    /// enough remaining capacity; an existing group sticks to its racks
    /// (only a failure drill re-homes groups). Replicas are written in
    /// parallel, so the reported latency is the slowest replica's.
    pub fn write_file(
        &mut self,
        path: &UdfPath,
        data: impl Into<Bytes>,
    ) -> Result<ClusterWriteReport, ClusterError> {
        let data: Bytes = data.into();
        let size = data.len() as u64;
        let key = Self::group_key(path);
        let targets: Vec<RackId> = match self.groups.get(&key) {
            Some(g) => {
                let alive: Vec<RackId> = g
                    .targets
                    .iter()
                    .copied()
                    .filter(|r| self.racks[r.0 as usize].is_alive())
                    .collect();
                if alive.is_empty() {
                    // Every holder died and no drill re-homed the group:
                    // place the new version afresh among the living.
                    self.place_new_group(&key, size)?
                } else {
                    alive
                }
            }
            None => self.place_new_group(&key, size)?,
        };

        // Attempt every replica even if one fails: bytes that landed on
        // a rack are durable, and the group map must learn about them
        // or subsequent reads would miss data the cluster is holding.
        let mut latency = SimDuration::ZERO;
        let mut version = None;
        let mut completed: Vec<RackId> = Vec::new();
        let mut failure: Option<(u32, OlfsError)> = None;
        for rid in &targets {
            let idx = self.rack_index(rid.0)?;
            let rack = &mut self.racks[idx];
            match rack.ros_mut().write_file(path, data.clone()) {
                Ok(report) => {
                    let lat = rack.scaled(report.latency);
                    rack.write_latency.record(lat);
                    rack.bytes_written = rack.bytes_written.saturating_add(size);
                    rack.note_stored(size);
                    latency = latency.max(lat);
                    version.get_or_insert(report.version);
                    completed.push(*rid);
                }
                Err(source) => {
                    failure.get_or_insert((rid.0, source));
                }
            }
        }

        if !completed.is_empty() {
            // Record the replicas that hold the new version. The target
            // set only ever GROWS here: racks already in the group keep
            // holding every older member file, so evicting one (as a
            // partial write used to) would make data the cluster still
            // holds unreachable once another replica failed. Reads skip
            // dead or file-less members and fall through to the next
            // target; only a failure drill re-homes a group.
            let group = self.groups.entry(key).or_insert_with(|| Group {
                targets: completed.clone(),
                files: BTreeMap::new(),
            });
            for rid in &completed {
                if !group.targets.contains(rid) {
                    group.targets.push(*rid);
                }
            }
            group.files.insert(path.to_string(), size);
        }
        match failure {
            None => Ok(ClusterWriteReport {
                racks: completed.into_iter().map(|r| r.0).collect(),
                latency,
                version: version.unwrap_or(0),
            }),
            Some((failed, source)) if completed.is_empty() => Err(ClusterError::Rack {
                rack: failed,
                source,
            }),
            Some((failed, source)) => Err(ClusterError::PartialWrite {
                path: path.to_string(),
                completed: completed.into_iter().map(|r| r.0).collect(),
                failed,
                source,
            }),
        }
    }

    fn place_new_group(&self, key: &str, size: u64) -> Result<Vec<RackId>, ClusterError> {
        let candidates: Vec<(RackId, u64)> = self
            .racks
            .iter()
            .filter(|r| r.is_alive())
            .map(|r| (r.id(), r.free_bytes()))
            .collect();
        let targets = placement::select_targets(key, &candidates, size, self.cfg.replication);
        if targets.is_empty() {
            return Err(ClusterError::NoCapacity {
                size,
                replication: self.cfg.replication,
            });
        }
        Ok(targets)
    }

    /// Reads a file from its group's primary rack, falling back to the
    /// replicas in placement order.
    pub fn read_file(&mut self, path: &UdfPath) -> Result<ClusterReadReport, ClusterError> {
        let key = Self::group_key(path);
        let targets = self
            .groups
            .get(&key)
            .filter(|g| g.files.contains_key(&path.to_string()))
            .map(|g| g.targets.clone())
            .ok_or_else(|| ClusterError::NotFound(path.to_string()))?;
        let mut tried = Vec::new();
        for rid in &targets {
            let idx = self.rack_index(rid.0)?;
            if !self.racks[idx].is_alive() {
                tried.push(rid.0);
                continue;
            }
            match self.racks[idx].ros_mut().read_file(path) {
                Ok(report) => {
                    let rack = &mut self.racks[idx];
                    let lat = rack.scaled(report.latency);
                    rack.read_latency.record(lat);
                    rack.bytes_read = rack.bytes_read.saturating_add(report.data.len() as u64);
                    return Ok(ClusterReadReport {
                        data: report.data,
                        rack: rid.0,
                        latency: lat,
                        fallbacks: tried.len(),
                    });
                }
                Err(_) => tried.push(rid.0),
            }
        }
        Err(ClusterError::AllReplicasFailed {
            path: path.to_string(),
            tried,
        })
    }

    /// Stats a file on the first alive rack of its group:
    /// `(size, version, mtime_nanos)`.
    pub fn stat(&mut self, path: &UdfPath) -> Result<(u64, u32, u64), ClusterError> {
        let key = Self::group_key(path);
        let targets = self
            .groups
            .get(&key)
            .filter(|g| g.files.contains_key(&path.to_string()))
            .map(|g| g.targets.clone())
            .ok_or_else(|| ClusterError::NotFound(path.to_string()))?;
        let mut tried = Vec::new();
        for rid in &targets {
            let idx = self.rack_index(rid.0)?;
            if !self.racks[idx].is_alive() {
                tried.push(rid.0);
                continue;
            }
            match self.racks[idx].ros_mut().stat(path) {
                Ok(meta) => return Ok(meta),
                Err(_) => tried.push(rid.0),
            }
        }
        Err(ClusterError::AllReplicasFailed {
            path: path.to_string(),
            tried,
        })
    }

    /// Flushes every alive rack (seal open buckets and burn, §4.3).
    pub fn flush_all(&mut self) -> Result<(), ClusterError> {
        for rack in self.racks.iter_mut().filter(|r| r.is_alive()) {
            let id = rack.id().0;
            rack.ros_mut().flush().map_err(ClusterError::on(id))?;
        }
        Ok(())
    }

    /// Runs every alive rack until its event queue drains (or `limit`
    /// expires); returns true if all drained.
    pub fn run_until_quiescent_all(&mut self, limit: SimDuration) -> bool {
        self.racks
            .iter_mut()
            .filter(|r| r.is_alive())
            .all(|r| r.ros_mut().run_until_quiescent(limit))
    }

    /// Advances every alive rack to the current cluster time, aligning
    /// member clocks (e.g. between workload phases).
    pub fn sync_clocks(&mut self) {
        let deadline = self.now();
        for rack in self.racks.iter_mut().filter(|r| r.is_alive()) {
            rack.ros_mut().run_until(deadline);
        }
    }

    /// Starts a measurement epoch: clears per-rack latency samples and
    /// byte counters and marks the epoch start time. Placement state is
    /// untouched.
    pub fn begin_epoch(&mut self) {
        self.sync_clocks();
        self.epoch_start = self.now();
        for rack in &mut self.racks {
            rack.reset_stats();
        }
    }

    /// Per-rack status summaries, attributable via `SystemStatus::rack_id`.
    pub fn status(&self) -> Vec<SystemStatus> {
        self.racks.iter().map(|r| r.ros().status()).collect()
    }

    /// Number of placement groups tracked by the router.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total files tracked across all groups.
    pub fn file_count(&self) -> usize {
        self.groups.values().map(|g| g.files.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> UdfPath {
        s.parse().unwrap()
    }

    #[test]
    fn writes_replicate_and_reads_verify() {
        let mut c = Cluster::new(ClusterConfig::tiny(3)).unwrap();
        let w = c.write_file(&p("/a/f1"), vec![7u8; 2048]).unwrap();
        assert_eq!(w.racks.len(), 2, "replication factor 2");
        let r = c.read_file(&p("/a/f1")).unwrap();
        assert_eq!(r.data.as_ref(), &[7u8; 2048][..]);
        assert_eq!(r.fallbacks, 0, "primary serves");
        assert_eq!(r.rack, w.racks[0]);
    }

    #[test]
    fn sibling_files_share_a_group() {
        let mut c = Cluster::new(ClusterConfig::tiny(4)).unwrap();
        c.write_file(&p("/d/one"), vec![1u8; 100]).unwrap();
        c.write_file(&p("/d/two"), vec![2u8; 100]).unwrap();
        c.write_file(&p("/e/one"), vec![3u8; 100]).unwrap();
        assert_eq!(c.group_count(), 2);
        assert_eq!(
            c.targets_of(&p("/d/one")).unwrap(),
            c.targets_of(&p("/d/two")).unwrap()
        );
    }

    #[test]
    fn unknown_paths_are_not_found() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        assert!(matches!(
            c.read_file(&p("/nope")).unwrap_err(),
            ClusterError::NotFound(_)
        ));
        c.write_file(&p("/d/known"), vec![0u8; 10]).unwrap();
        assert!(matches!(
            c.read_file(&p("/d/other")).unwrap_err(),
            ClusterError::NotFound(_)
        ));
    }

    #[test]
    fn single_rack_cluster_routes_everything_to_it() {
        let mut c = Cluster::new(ClusterConfig::tiny(1)).unwrap();
        for i in 0..10 {
            let w = c
                .write_file(&p(&format!("/g{}/f", i)), vec![0u8; 64])
                .unwrap();
            assert_eq!(w.racks, vec![0]);
        }
    }

    #[test]
    fn stat_reports_size_and_version() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/s/f"), vec![0u8; 321]).unwrap();
        let (size, ver, _mtime) = c.stat(&p("/s/f")).unwrap();
        assert_eq!(size, 321);
        assert_eq!(ver, 1);
    }

    #[test]
    fn capacity_filter_rejects_oversized_groups() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        let huge = c.racks()[0].free_bytes() * 2;
        assert!(matches!(
            c.write_file(&p("/big/f"), vec![0u8; 16]).and_then(|_| {
                // Exhaust the accounting rather than allocating `huge`
                // bytes: mark the racks full, then place a fresh group.
                for r in &mut c.racks {
                    r.note_stored(huge);
                }
                c.write_file(&p("/big2/f"), vec![0u8; 16])
            }),
            Err(ClusterError::NoCapacity { .. })
        ));
    }

    #[test]
    fn partial_write_records_completed_replicas() {
        // Regression: a replica failure used to abort write_file before
        // the group map learned the file exists, so reads failed even
        // though a full copy was durable on the surviving replica.
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/d/first"), vec![1u8; 512]).unwrap();
        let targets = c.targets_of(&p("/d/first")).unwrap();
        assert_eq!(targets.len(), 2);
        let secondary = targets[1];

        // Shadow the path with a directory on the secondary only (behind
        // the router's back), so that rack's replica write fails with a
        // typed OLFS error while the primary's succeeds.
        c.racks[secondary as usize]
            .ros_mut()
            .write_file(&p("/d/second/shadow"), vec![0u8; 16])
            .unwrap();

        let err = c.write_file(&p("/d/second"), vec![2u8; 512]).unwrap_err();
        match err {
            ClusterError::PartialWrite {
                completed, failed, ..
            } => {
                assert_eq!(completed, vec![targets[0]]);
                assert_eq!(failed, secondary);
            }
            other => panic!("expected PartialWrite, got {other:?}"),
        }
        // The durable replica must be readable despite the failure.
        let r = c.read_file(&p("/d/second")).unwrap();
        assert_eq!(r.data.as_ref(), &[2u8; 512][..]);
        assert_eq!(r.rack, targets[0]);
        // And the earlier group file is still served.
        assert!(c.read_file(&p("/d/first")).is_ok());
    }

    #[test]
    fn partial_write_must_not_evict_replicas_of_earlier_files() {
        // Regression: a partial write used to REPLACE the group's target
        // set with only the racks the new file reached. /d/first below
        // was written at replication 2, but after /d/second partially
        // failed on the secondary, the group forgot the secondary held
        // /d/first — and a primary outage then lost a file the cluster
        // still had a full copy of.
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/d/first"), vec![1u8; 512]).unwrap();
        let targets = c.targets_of(&p("/d/first")).unwrap();
        assert_eq!(targets.len(), 2);
        let (primary, secondary) = (targets[0], targets[1]);

        // Shadow the path with a directory on the secondary only, so its
        // replica write fails typed while the primary's succeeds.
        c.racks[secondary as usize]
            .ros_mut()
            .write_file(&p("/d/second/shadow"), vec![0u8; 16])
            .unwrap();
        let err = c.write_file(&p("/d/second"), vec![2u8; 512]).unwrap_err();
        assert!(matches!(err, ClusterError::PartialWrite { .. }));

        // The secondary must still be a target: it holds /d/first.
        assert_eq!(c.targets_of(&p("/d/first")).unwrap().len(), 2);

        // Primary outage: /d/first must keep serving from the secondary.
        c.fail_rack(primary).unwrap();
        let r = c.read_file(&p("/d/first")).unwrap();
        assert_eq!(r.data.as_ref(), &[1u8; 512][..]);
        assert_eq!(r.rack, secondary);
        assert_eq!(r.fallbacks, 1);
        // /d/second only ever reached the primary; its loss is reported
        // typed, not silently absorbed.
        assert!(matches!(
            c.read_file(&p("/d/second")).unwrap_err(),
            ClusterError::AllReplicasFailed { .. }
        ));
    }

    #[test]
    fn epoch_reset_clears_measurements() {
        let mut c = Cluster::new(ClusterConfig::tiny(2)).unwrap();
        c.write_file(&p("/m/f"), vec![0u8; 100]).unwrap();
        c.begin_epoch();
        let report = crate::stats::ClusterReport::collect(&c);
        assert_eq!(report.bytes_written, 0);
        assert_eq!(report.write_latency.count(), 0);
    }

    #[test]
    fn status_is_attributable_per_rack() {
        let c = Cluster::new(ClusterConfig::tiny(3)).unwrap();
        let ids: Vec<u32> = c.status().iter().map(|s| s.rack_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
