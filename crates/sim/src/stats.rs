//! Measurement collection for the benchmark harness.
//!
//! Two collectors cover everything the paper's evaluation reports:
//!
//! - [`LatencyRecorder`] accumulates per-operation latencies and reports
//!   mean / min / max / percentiles (Tables 1 and 3, Figure 7).
//! - [`ThroughputSeries`] samples an instantaneous rate over simulated time
//!   (Figures 8-10's recording-speed curves).

use crate::bandwidth::Bandwidth;
use crate::time::{SimDuration, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::cell::RefCell;

/// Accumulates operation latencies and reports summary statistics.
///
/// Order statistics (`min`/`max`/`percentile`) are served from a lazily
/// maintained sorted view: the first query after new samples arrive
/// sorts once, and every further query is O(1) (percentile) or O(1)
/// (min/max) without cloning the sample vector. Recording stays O(1).
///
/// # Examples
///
/// ```
/// use ros_sim::stats::LatencyRecorder;
/// use ros_sim::SimDuration;
///
/// let mut rec = LatencyRecorder::new("file write");
/// rec.record(SimDuration::from_millis(16));
/// rec.record(SimDuration::from_millis(14));
/// assert_eq!(rec.count(), 2);
/// assert_eq!(rec.mean(), SimDuration::from_millis(15));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    label: String,
    samples: Vec<SimDuration>,
    /// Sorted copy of `samples`, rebuilt on demand. Samples are only
    /// ever appended, so a length mismatch is a complete dirtiness
    /// test — no separate flag needed.
    sorted: RefCell<Vec<SimDuration>>,
}

impl Serialize for LatencyRecorder {
    fn serialize_value(&self) -> Value {
        // The sorted view is a cache; persist only label + samples
        // (same shape the former derive produced).
        Value::Object(vec![
            ("label".to_string(), self.label.serialize_value()),
            ("samples".to_string(), self.samples.serialize_value()),
        ])
    }
}

impl Deserialize for LatencyRecorder {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let label = String::deserialize_value(
            v.get("label")
                .ok_or_else(|| DeError::missing_field("label"))?,
        )?;
        let samples = Vec::<SimDuration>::deserialize_value(
            v.get("samples")
                .ok_or_else(|| DeError::missing_field("samples"))?,
        )?;
        Ok(LatencyRecorder {
            label,
            samples,
            sorted: RefCell::new(Vec::new()),
        })
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder with a human-readable label.
    pub fn new(label: impl Into<String>) -> Self {
        LatencyRecorder {
            label: label.into(),
            samples: Vec::new(),
            sorted: RefCell::new(Vec::new()),
        }
    }

    /// Runs `f` over the up-to-date sorted view, rebuilding it first if
    /// samples arrived since the last order-statistic query.
    fn with_sorted<R>(&self, f: impl FnOnce(&[SimDuration]) -> R) -> R {
        let mut sorted = self.sorted.borrow_mut();
        if sorted.len() != self.samples.len() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_unstable();
        }
        f(&sorted)
    }

    /// Returns the recorder's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
    }

    /// Returns the number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    /// Returns the smallest sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        self.with_sorted(|s| s.first().copied().unwrap_or(SimDuration::ZERO))
    }

    /// Returns the largest sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.with_sorted(|s| s.last().copied().unwrap_or(SimDuration::ZERO))
    }

    /// Returns the `q`-quantile (0.0 = min, 0.5 = median, 1.0 = max)
    /// using ceil-based nearest-rank (the sample at rank `⌈q·n⌉`), so a
    /// tail quantile never rounds down past the samples it covers; zero
    /// when empty.
    pub fn percentile(&self, q: f64) -> SimDuration {
        self.with_sorted(|s| {
            if s.is_empty() {
                return SimDuration::ZERO;
            }
            let q = q.clamp(0.0, 1.0);
            let rank = (q * s.len() as f64).ceil() as usize;
            s[rank.clamp(1, s.len()) - 1]
        })
    }

    /// Returns all samples in recording order.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// One `(time, bandwidth)` sample of a throughput curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Sample instant.
    pub at: SimTime,
    /// Instantaneous transfer rate at that instant.
    pub rate: Bandwidth,
}

/// Samples an instantaneous transfer rate over simulated time.
///
/// Used to regenerate the paper's recording-speed curves: Figure 8 (single
/// 25 GB drive ramp), Figure 9 (12-drive aggregate) and Figure 10 (100 GB
/// fail-safe oscillation).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThroughputSeries {
    label: String,
    points: Vec<RatePoint>,
}

impl ThroughputSeries {
    /// Creates an empty series with a human-readable label.
    pub fn new(label: impl Into<String>) -> Self {
        ThroughputSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Returns the series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a sample; samples must be pushed in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded sample.
    pub fn push(&mut self, at: SimTime, rate: Bandwidth) {
        if let Some(last) = self.points.last() {
            assert!(at >= last.at, "throughput samples must be time-ordered");
        }
        self.points.push(RatePoint { at, rate });
    }

    /// Returns the recorded samples.
    pub fn points(&self) -> &[RatePoint] {
        &self.points
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the peak sampled rate, or zero when empty.
    pub fn peak(&self) -> Bandwidth {
        self.points
            .iter()
            .map(|p| p.rate)
            .fold(Bandwidth::ZERO, Bandwidth::max)
    }

    /// Returns the time-weighted average rate over the sampled interval.
    ///
    /// Each sample's rate is held until the next sample (zero-order hold);
    /// an empty or single-point series averages to that point's rate.
    pub fn time_weighted_mean(&self) -> Bandwidth {
        match self.points.len() {
            0 => Bandwidth::ZERO,
            1 => self.points[0].rate,
            _ => {
                let mut weighted = 0.0;
                let mut total = 0.0;
                for pair in self.points.windows(2) {
                    let dt = pair[1].at.duration_since(pair[0].at).as_secs_f64();
                    weighted += pair[0].rate.bytes_per_sec() * dt;
                    total += dt;
                }
                if total == 0.0 {
                    self.points[0].rate
                } else {
                    Bandwidth::from_bytes_per_sec(weighted / total)
                }
            }
        }
    }

    /// Returns the span between the first and last sample.
    pub fn span(&self) -> SimDuration {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.at.duration_since(a.at),
            _ => SimDuration::ZERO,
        }
    }

    /// Sums several series point-by-point onto a shared time grid, producing
    /// the aggregate curve (e.g. 12 drives burning concurrently, Figure 9).
    ///
    /// Each input series is sampled with zero-order hold at every instant
    /// appearing in any series. Implemented as a single k-way sweep-line
    /// merge over the time-ordered inputs — O(total points × log k) with
    /// an incrementally maintained running sum — instead of resampling
    /// every series at every grid instant (which is quadratic in the
    /// total point count and dominated Figure 9 at drive-array scale).
    pub fn aggregate<'a>(
        label: impl Into<String>,
        series: impl IntoIterator<Item = &'a ThroughputSeries>,
    ) -> ThroughputSeries {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let series: Vec<&ThroughputSeries> = series.into_iter().collect();
        // Next unconsumed point index per series, and the rate each
        // series currently holds (bytes/sec, summed incrementally).
        let mut cursor = vec![0usize; series.len()];
        let mut held = vec![0.0f64; series.len()];
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = series
            .iter()
            .enumerate()
            .filter_map(|(k, s)| s.points.first().map(|p| Reverse((p.at, k))))
            .collect();
        let mut out = ThroughputSeries::new(label);
        let mut total = 0.0f64;
        while let Some(&Reverse((t, _))) = heap.peek() {
            // Fold in every series with a sample at instant `t`; within
            // a series, the last of several same-instant samples wins,
            // matching zero-order hold.
            while let Some(&Reverse((at, k))) = heap.peek() {
                if at != t {
                    break;
                }
                heap.pop();
                let pts = &series[k].points;
                let mut i = cursor[k];
                while i < pts.len() && pts[i].at == t {
                    i += 1;
                }
                let new = pts[i - 1].rate.bytes_per_sec();
                total += new - held[k];
                held[k] = new;
                cursor[k] = i;
                if i < pts.len() {
                    heap.push(Reverse((pts[i].at, k)));
                }
            }
            // Float cancellation could leave a tiny negative residue
            // once every series has dropped to zero; clamp it.
            out.push(t, Bandwidth::from_bytes_per_sec(total.max(0.0)));
        }
        out
    }

    /// Returns the zero-order-hold rate at instant `t` (zero before the
    /// first sample and after the last sample's hold is irrelevant here
    /// because a finished burn contributes zero). Binary search over the
    /// time-ordered points, O(log n).
    pub fn rate_at(&self, t: SimTime) -> Bandwidth {
        let after = self.points.partition_point(|p| p.at <= t);
        if after == 0 {
            Bandwidth::ZERO
        } else {
            self.points[after - 1].rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_statistics() {
        let mut rec = LatencyRecorder::new("op");
        for ms in [10u64, 20, 30, 40, 50] {
            rec.record(SimDuration::from_millis(ms));
        }
        assert_eq!(rec.count(), 5);
        assert_eq!(rec.mean(), SimDuration::from_millis(30));
        assert_eq!(rec.min(), SimDuration::from_millis(10));
        assert_eq!(rec.max(), SimDuration::from_millis(50));
        assert_eq!(rec.percentile(0.5), SimDuration::from_millis(30));
        assert_eq!(rec.percentile(0.0), SimDuration::from_millis(10));
        assert_eq!(rec.percentile(1.0), SimDuration::from_millis(50));
    }

    #[test]
    fn empty_recorder_is_zero() {
        let rec = LatencyRecorder::new("empty");
        assert_eq!(rec.mean(), SimDuration::ZERO);
        assert_eq!(rec.min(), SimDuration::ZERO);
        assert_eq!(rec.max(), SimDuration::ZERO);
        assert_eq!(rec.percentile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new("a");
        a.record(SimDuration::from_millis(10));
        let mut b = LatencyRecorder::new("b");
        b.record(SimDuration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn series_peak_and_mean() {
        let mut s = ThroughputSeries::new("burn");
        s.push(SimTime::from_secs(0), Bandwidth::from_mb_per_sec(10.0));
        s.push(SimTime::from_secs(10), Bandwidth::from_mb_per_sec(30.0));
        s.push(SimTime::from_secs(20), Bandwidth::from_mb_per_sec(30.0));
        assert_eq!(s.peak(), Bandwidth::from_mb_per_sec(30.0));
        // 10 MB/s for 10 s then 30 MB/s for 10 s -> 20 MB/s average.
        assert!((s.time_weighted_mean().mb_per_sec() - 20.0).abs() < 1e-9);
        assert_eq!(s.span(), SimDuration::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn series_rejects_time_travel() {
        let mut s = ThroughputSeries::new("bad");
        s.push(SimTime::from_secs(5), Bandwidth::ZERO);
        s.push(SimTime::from_secs(1), Bandwidth::ZERO);
    }

    #[test]
    fn rate_at_holds_last_sample() {
        let mut s = ThroughputSeries::new("hold");
        s.push(SimTime::from_secs(1), Bandwidth::from_mb_per_sec(5.0));
        s.push(SimTime::from_secs(3), Bandwidth::from_mb_per_sec(7.0));
        assert_eq!(s.rate_at(SimTime::ZERO), Bandwidth::ZERO);
        assert_eq!(
            s.rate_at(SimTime::from_secs(2)),
            Bandwidth::from_mb_per_sec(5.0)
        );
        assert_eq!(
            s.rate_at(SimTime::from_secs(9)),
            Bandwidth::from_mb_per_sec(7.0)
        );
    }

    #[test]
    fn aggregate_sums_concurrent_series() {
        let mut a = ThroughputSeries::new("a");
        a.push(SimTime::from_secs(0), Bandwidth::from_mb_per_sec(10.0));
        a.push(SimTime::from_secs(10), Bandwidth::ZERO);
        let mut b = ThroughputSeries::new("b");
        b.push(SimTime::from_secs(5), Bandwidth::from_mb_per_sec(20.0));
        b.push(SimTime::from_secs(15), Bandwidth::ZERO);
        let sum = ThroughputSeries::aggregate("sum", [&a, &b]);
        assert_eq!(
            sum.rate_at(SimTime::from_secs(2)),
            Bandwidth::from_mb_per_sec(10.0)
        );
        assert_eq!(
            sum.rate_at(SimTime::from_secs(7)),
            Bandwidth::from_mb_per_sec(30.0)
        );
        assert_eq!(
            sum.rate_at(SimTime::from_secs(12)),
            Bandwidth::from_mb_per_sec(20.0)
        );
        assert_eq!(sum.rate_at(SimTime::from_secs(20)), Bandwidth::ZERO);
    }

    #[test]
    fn percentile_uses_ceil_nearest_rank() {
        // Regression: .round()-based ranks mis-placed quantiles — p91
        // of ten samples picked the 9th instead of the 10th, quietly
        // under-reporting tails.
        let mut rec = LatencyRecorder::new("tail");
        for ms in 1..=10u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        assert_eq!(rec.percentile(0.91), SimDuration::from_millis(10));
        assert_eq!(rec.percentile(0.90), SimDuration::from_millis(9));
        // Ceil nearest-rank: the even-count median is the lower middle,
        // and any quantile past a rank boundary takes the next sample.
        let mut four = LatencyRecorder::new("four");
        for ms in [10u64, 20, 30, 40] {
            four.record(SimDuration::from_millis(ms));
        }
        assert_eq!(four.percentile(0.5), SimDuration::from_millis(20));
        assert_eq!(four.percentile(0.75), SimDuration::from_millis(30));
        assert_eq!(four.percentile(0.751), SimDuration::from_millis(40));
    }

    #[test]
    fn order_stats_refresh_after_new_samples() {
        // The cached sorted view must invalidate when samples arrive
        // between queries (both via record and via merge).
        let mut rec = LatencyRecorder::new("refresh");
        rec.record(SimDuration::from_millis(20));
        assert_eq!(rec.max(), SimDuration::from_millis(20));
        rec.record(SimDuration::from_millis(50));
        assert_eq!(rec.max(), SimDuration::from_millis(50));
        assert_eq!(rec.min(), SimDuration::from_millis(20));
        let mut other = LatencyRecorder::new("other");
        other.record(SimDuration::from_millis(5));
        rec.merge(&other);
        assert_eq!(rec.min(), SimDuration::from_millis(5));
        assert_eq!(rec.percentile(1.0), SimDuration::from_millis(50));
    }

    #[test]
    fn recorder_serde_round_trip() {
        let mut rec = LatencyRecorder::new("rt");
        rec.record(SimDuration::from_millis(7));
        rec.record(SimDuration::from_millis(3));
        let _ = rec.max(); // populate the cache; it must not serialize
        let json = serde_json::to_string(&rec).unwrap();
        let back: LatencyRecorder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label(), "rt");
        assert_eq!(back.samples(), rec.samples());
        assert_eq!(back.percentile(0.5), SimDuration::from_millis(3));
    }

    #[test]
    fn aggregate_handles_same_instant_samples() {
        let mut a = ThroughputSeries::new("a");
        a.push(SimTime::from_secs(0), Bandwidth::from_mb_per_sec(10.0));
        a.push(SimTime::from_secs(5), Bandwidth::ZERO);
        let mut b = ThroughputSeries::new("b");
        b.push(SimTime::from_secs(0), Bandwidth::from_mb_per_sec(5.0));
        b.push(SimTime::from_secs(5), Bandwidth::from_mb_per_sec(15.0));
        // Same-instant re-sample: the later value wins (zero-order hold).
        b.push(SimTime::from_secs(5), Bandwidth::from_mb_per_sec(25.0));
        let sum = ThroughputSeries::aggregate("sum", [&a, &b]);
        assert_eq!(sum.len(), 2, "grid instants must stay deduplicated");
        assert_eq!(
            sum.rate_at(SimTime::from_secs(0)),
            Bandwidth::from_mb_per_sec(15.0)
        );
        assert_eq!(
            sum.rate_at(SimTime::from_secs(5)),
            Bandwidth::from_mb_per_sec(25.0)
        );
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        assert!(ThroughputSeries::aggregate("none", []).is_empty());
        let empty = ThroughputSeries::new("e");
        let mut one = ThroughputSeries::new("o");
        one.push(SimTime::from_secs(1), Bandwidth::from_mb_per_sec(2.0));
        let sum = ThroughputSeries::aggregate("sum", [&empty, &one]);
        assert_eq!(sum.len(), 1);
        assert_eq!(
            sum.rate_at(SimTime::from_secs(1)),
            Bandwidth::from_mb_per_sec(2.0)
        );
    }

    #[test]
    fn sweep_line_matches_naive_resampling() {
        // Pin the sweep-line merge against the definitionally obvious
        // grid resampler on irregular pseudo-random series.
        fn naive(series: &[&ThroughputSeries]) -> Vec<RatePoint> {
            let mut grid: Vec<SimTime> = series
                .iter()
                .flat_map(|s| s.points().iter().map(|p| p.at))
                .collect();
            grid.sort_unstable();
            grid.dedup();
            grid.into_iter()
                .map(|t| RatePoint {
                    at: t,
                    rate: series.iter().map(|s| s.rate_at(t)).sum(),
                })
                .collect()
        }
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let series: Vec<ThroughputSeries> = (0..7)
            .map(|k| {
                let mut s = ThroughputSeries::new(format!("s{k}"));
                let mut t = 0u64;
                for _ in 0..40 {
                    t += next() % 90; // duplicate instants included
                    s.push(
                        SimTime::from_secs(t),
                        Bandwidth::from_mb_per_sec((next() % 50) as f64),
                    );
                }
                s
            })
            .collect();
        let refs: Vec<&ThroughputSeries> = series.iter().collect();
        let fast = ThroughputSeries::aggregate("fast", refs.iter().copied());
        let slow = naive(&refs);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.points().iter().zip(&slow) {
            assert_eq!(f.at, s.at);
            assert!(
                (f.rate.bytes_per_sec() - s.rate.bytes_per_sec()).abs() < 1e-3,
                "rate diverged at {:?}: {} vs {}",
                f.at,
                f.rate,
                s.rate
            );
        }
    }

    #[test]
    fn single_point_series_mean_is_that_point() {
        let mut s = ThroughputSeries::new("one");
        s.push(SimTime::from_secs(1), Bandwidth::from_mb_per_sec(42.0));
        assert_eq!(s.time_weighted_mean(), Bandwidth::from_mb_per_sec(42.0));
        assert!(ThroughputSeries::new("none").time_weighted_mean().is_zero());
    }
}

/// A fixed-bucket latency histogram with logarithmic bucket edges, for
/// reporting latency distributions (e.g. the runner's per-op spread
/// between disk hits and mechanical fetches).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    label: String,
    /// Bucket upper edges, ascending; the last bucket is open-ended.
    edges: Vec<SimDuration>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with logarithmic edges from `min` up to
    /// `max` (both inclusive bounds of the edge range), `per_decade`
    /// buckets per 10x.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, `max <= min`, or `per_decade` is zero.
    pub fn logarithmic(
        label: impl Into<String>,
        min: SimDuration,
        max: SimDuration,
        per_decade: u32,
    ) -> Self {
        assert!(!min.is_zero(), "min edge must be positive");
        assert!(max > min, "max must exceed min");
        assert!(per_decade > 0, "need at least one bucket per decade");
        let mut edges = Vec::new();
        let factor = 10f64.powf(1.0 / per_decade as f64);
        let mut edge = min.as_secs_f64();
        while edge <= max.as_secs_f64() * (1.0 + 1e-12) {
            edges.push(SimDuration::from_secs_f64(edge));
            edge *= factor;
        }
        let n = edges.len() + 1; // + the open-ended overflow bucket.
        Histogram {
            label: label.into(),
            edges,
            counts: vec![0; n],
        }
    }

    /// Returns the label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = self
            .edges
            .iter()
            .position(|&e| d <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(upper_edge, count)`; the final entry has `None` as its
    /// edge (the overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<SimDuration>, u64)> + '_ {
        self.edges
            .iter()
            .copied()
            .map(Some)
            .chain(core::iter::once(None))
            .zip(self.counts.iter().copied())
    }

    /// The smallest edge at or below which at least `q` of the samples
    /// fall (an upper bound on the q-quantile); `None` when the quantile
    /// lands in the overflow bucket or the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<SimDuration> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (edge, count) in self.buckets() {
            acc += count;
            if acc >= target {
                return edge;
            }
        }
        None
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram::logarithmic(
            "latency",
            SimDuration::from_millis(1),
            SimDuration::from_secs(100),
            1,
        )
    }

    #[test]
    fn buckets_span_the_range_logarithmically() {
        let h = hist();
        // Edges at 1ms, 10ms, 100ms, 1s, 10s, 100s + overflow.
        assert_eq!(h.buckets().count(), 7);
    }

    #[test]
    fn samples_land_in_the_right_buckets() {
        let mut h = hist();
        h.record(SimDuration::from_micros(500)); // <= 1ms bucket.
        h.record(SimDuration::from_millis(9)); // <= 10ms.
        h.record(SimDuration::from_secs(70)); // <= 100s.
        h.record(SimDuration::from_secs(5000)); // Overflow.
        assert_eq!(h.total(), 4);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![1, 1, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn quantile_upper_bounds() {
        let mut h = hist();
        for _ in 0..90 {
            h.record(SimDuration::from_millis(5)); // 10ms bucket.
        }
        for _ in 0..10 {
            h.record(SimDuration::from_secs(70)); // 100s bucket.
        }
        assert_eq!(
            h.quantile_upper_bound(0.5),
            Some(SimDuration::from_millis(10))
        );
        assert_eq!(
            h.quantile_upper_bound(0.99),
            Some(SimDuration::from_secs(100))
        );
        assert!(Histogram::logarithmic(
            "empty",
            SimDuration::from_millis(1),
            SimDuration::from_secs(1),
            1
        )
        .quantile_upper_bound(0.5)
        .is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_min_rejected() {
        Histogram::logarithmic("bad", SimDuration::ZERO, SimDuration::SECOND, 1);
    }
}
