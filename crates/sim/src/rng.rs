//! Seedable, reproducible randomness.
//!
//! All stochastic behaviour in the simulation — servo fail-safe disturbances
//! during 100 GB burns, sector-error injection, workload file sizes — draws
//! from a [`SimRng`] seeded from the experiment configuration, so every run
//! is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator for simulation components.
///
/// # Examples
///
/// ```
/// use ros_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per drive, so that
    /// adding a component does not perturb the streams of the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Returns a uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        self.inner.gen_range(0..n)
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Samples an exponential inter-arrival time with the given mean.
    ///
    /// Returns 0 for a non-positive mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = 1.0 - self.unit_f64(); // Avoid ln(0).
        -mean * u.ln()
    }

    /// Fills `buf` with random bytes (used to synthesize file contents).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_and_index_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(6);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = SimRng::seed_from(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.7..5.3).contains(&mean), "mean={mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-3.0), 0.0);
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = SimRng::seed_from(9);
        let mut buf = [0u8; 256];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
