//! Logical simulation time.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] is a span between instants. Both are nanosecond-resolution
//! unsigned 64-bit counters, giving a simulated horizon of ~584 years —
//! comfortably beyond the 100-year TCO analyses the paper performs.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of nanoseconds per second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// Saturates to [`SimDuration::ZERO`] if `earlier` is after `self`, so
    /// latency computations never underflow.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One microsecond.
    pub const MICROSECOND: SimDuration = SimDuration(1_000);

    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1_000_000);

    /// One second.
    pub const SECOND: SimDuration = SimDuration(NANOS_PER_SEC);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Creates a span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a span of `mins` whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins.saturating_mul(60).saturating_mul(NANOS_PER_SEC))
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        // ros-analysis: allow(L3, f64 product saturates to +inf, which the branch below clamps)
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this span expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns this span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns true if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        // ros-analysis: allow(L3, f64 product; from_secs_f64 clamps non-finite and negative results)
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition of two spans (same behaviour as `+`, named
    /// so checked-arithmetic call sites can spell the saturation out).
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating multiplication by a scalar (same behaviour as `*`,
    /// named so checked-arithmetic call sites can spell the saturation
    /// out).
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        // ros-analysis: allow(L3, delegates to the saturating Add impl above)
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        // ros-analysis: allow(L3, delegates to the saturating Add impl above)
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        // ros-analysis: allow(L3, delegates to the saturating Add impl above)
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 60.0 {
            write!(f, "{:.1}min", s / 60.0)
        } else if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            // ros-analysis: allow(L3, f64 display scaling of a value already known to be < 1.0)
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
    }

    #[test]
    fn fractional_seconds_round_to_nanos() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert_eq!(d.as_nanos(), 123_456_789);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let later = t + SimDuration::from_secs(5);
        assert_eq!(later, SimTime::from_secs(15));
        assert_eq!(later - t, SimDuration::from_secs(5));
        assert_eq!(t.duration_since(later), SimDuration::ZERO);
        assert_eq!(later.duration_since(t), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let small = SimDuration::from_secs(1);
        let big = SimDuration::from_secs(2);
        assert_eq!(small - big, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(u64::MAX) + big,
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(3);
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(1500));
    }

    #[test]
    fn min_max_ordering() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_secs(1);
        let tb = SimTime::from_secs(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "1.5min");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(120)), "120ns");
    }
}
