//! Transfer-rate arithmetic.
//!
//! Storage models throughout ROS express device speed as a [`Bandwidth`]
//! (bytes per second). The paper quotes optical speeds in "X" units where
//! 1X = 4.49 MB/s for Blu-ray ([`Bandwidth::from_bluray_x`]), disk speeds in
//! MB/s, and network links in Gb/s; this module converts between all of them
//! and computes exact transfer durations.

use crate::time::SimDuration;
use core::fmt;
use core::ops::{Add, Div, Mul};
use serde::{Deserialize, Serialize};

/// The Blu-ray base reference speed: 1X = 4.49 MB/s (§2.1 of the paper).
pub const BLURAY_1X_BYTES_PER_SEC: f64 = 4.49 * 1e6;

/// A data-transfer rate in bytes per second.
///
/// Internally stored as an `f64` because optical speed curves are continuous
/// functions of disc radius; durations are rounded to nanoseconds only at
/// the final [`Bandwidth::time_for`] step.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero transfer rate (e.g. a powered-off device).
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth of `bps` bytes per second.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        if bps.is_finite() && bps > 0.0 {
            Bandwidth(bps)
        } else {
            Bandwidth(0.0)
        }
    }

    /// Creates a bandwidth of `mbps` *decimal* megabytes per second, the
    /// unit the paper uses for all disk and drive throughput numbers.
    pub fn from_mb_per_sec(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * 1e6)
    }

    /// Creates a bandwidth of `gbps` *decimal* gigabytes per second.
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// Creates a bandwidth from a network link rate in gigabits per second
    /// (e.g. the 10GbE client network of the prototype).
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        Self::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Creates a bandwidth from a Blu-ray "X" speed multiple (1X = 4.49 MB/s).
    pub fn from_bluray_x(x: f64) -> Self {
        Self::from_bytes_per_sec(x * BLURAY_1X_BYTES_PER_SEC)
    }

    /// Returns the rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in decimal megabytes per second.
    pub fn mb_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the rate as a Blu-ray "X" speed multiple.
    pub fn bluray_x(self) -> f64 {
        self.0 / BLURAY_1X_BYTES_PER_SEC
    }

    /// Returns true if the rate is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Computes the time needed to transfer `bytes` at this rate.
    ///
    /// A zero bandwidth yields [`SimDuration::ZERO`]; callers model
    /// unavailable devices explicitly rather than via infinite transfers.
    pub fn time_for(self, bytes: u64) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Computes how many bytes are transferred in `dur` at this rate.
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (self.0 * dur.as_secs_f64()).floor() as u64
    }

    /// Scales the rate by a dimensionless factor (e.g. an interference or
    /// software-stack degradation factor), clamping at zero.
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 * factor)
    }

    /// Returns the smaller of two rates (e.g. the bottleneck of a pipeline).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        self.scale(rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        if rhs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bytes_per_sec(self.0 / rhs)
        }
    }
}

impl core::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluray_x_reference_speed() {
        let one_x = Bandwidth::from_bluray_x(1.0);
        assert!((one_x.mb_per_sec() - 4.49).abs() < 1e-9);
        assert!((Bandwidth::from_bluray_x(12.0).bluray_x() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Bandwidth::from_mb_per_sec(150.0).bytes_per_sec(), 150e6);
        assert_eq!(Bandwidth::from_gb_per_sec(1.2).bytes_per_sec(), 1.2e9);
        // 10GbE carries 1.25 GB/s of raw payload.
        assert_eq!(Bandwidth::from_gbit_per_sec(10.0).bytes_per_sec(), 1.25e9);
    }

    #[test]
    fn transfer_time_is_exact() {
        let bw = Bandwidth::from_mb_per_sec(100.0);
        assert_eq!(bw.time_for(100_000_000), SimDuration::from_secs(1));
        assert_eq!(bw.time_for(50_000_000), SimDuration::from_millis(500));
        assert_eq!(bw.time_for(0), SimDuration::ZERO);
    }

    #[test]
    fn bytes_in_inverts_time_for() {
        let bw = Bandwidth::from_mb_per_sec(45.0);
        let dur = bw.time_for(25_000_000_000);
        let bytes = bw.bytes_in(dur);
        // Round-trips to within one byte of rounding error.
        assert!((bytes as i64 - 25_000_000_000i64).abs() <= 1);
    }

    #[test]
    fn zero_bandwidth_is_inert() {
        assert_eq!(Bandwidth::ZERO.time_for(1 << 30), SimDuration::ZERO);
        assert_eq!(Bandwidth::ZERO.bytes_in(SimDuration::from_secs(10)), 0);
        assert!(Bandwidth::ZERO.is_zero());
        assert_eq!(Bandwidth::from_bytes_per_sec(-5.0), Bandwidth::ZERO);
        assert_eq!(Bandwidth::from_bytes_per_sec(f64::NAN), Bandwidth::ZERO);
    }

    #[test]
    fn aggregation_and_scaling() {
        let one = Bandwidth::from_mb_per_sec(24.1);
        let twelve: Bandwidth = std::iter::repeat_n(one, 12).sum();
        assert!((twelve.mb_per_sec() - 289.2).abs() < 1e-6);
        assert!((one.scale(0.5).mb_per_sec() - 12.05).abs() < 1e-9);
        assert_eq!((one * -1.0), Bandwidth::ZERO);
        assert_eq!((one / 0.0), Bandwidth::ZERO);
        assert!(((one / 2.0).mb_per_sec() - 12.05).abs() < 1e-9);
    }

    #[test]
    fn min_max_bottleneck() {
        let a = Bandwidth::from_mb_per_sec(10.0);
        let b = Bandwidth::from_mb_per_sec(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
