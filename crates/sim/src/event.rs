//! Deterministic future-event list.
//!
//! The event queue is the heart of the discrete-event engine: components
//! schedule an event for a future [`SimTime`]; the owning engine repeatedly
//! pops the earliest event and advances the clock to it. Events scheduled
//! for the same instant are delivered in FIFO order of scheduling, which
//! makes every simulation run bit-for-bit reproducible.

use crate::time::{SimDuration, SimTime};
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// An event popped from the queue: its delivery time, id and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// The handle assigned at scheduling time.
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with a built-in clock.
///
/// # Examples
///
/// ```
/// use ros_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(5), "later");
/// q.schedule_in(SimDuration::from_secs(1), "sooner");
/// let first = q.pop().unwrap();
/// assert_eq!(first.payload, "sooner");
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
pub struct EventQueue<E> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Returns the current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to fire "now": the event is
    /// delivered at the current instant without rewinding the clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, payload });
        self.debug_check_monotonic();
        EventId(seq)
    }

    /// Debug-build invariant: the clock never sits past the earliest
    /// pending event, so delivery time is monotonic through every pop.
    /// Compiled out in release builds.
    #[cfg(debug_assertions)]
    fn debug_check_monotonic(&self) {
        if let Some(front) = self.heap.peek() {
            debug_assert!(
                front.at >= self.now,
                "event queue holds an event in the past: {:?} < {:?}",
                front.at,
                self.now
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_monotonic(&self) {}

    /// Schedules `payload` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns true if the event was still pending. Cancelling an already
    /// delivered or already cancelled event returns false.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot remove from the middle of a BinaryHeap; mark it and
        // filter at pop time.
        if self.heap.iter().any(|e| e.seq == id.0) && !self.cancelled.contains(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Returns the delivery time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest pending event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skim_cancelled();
        self.debug_check_monotonic();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some(ScheduledEvent {
            at: entry.at,
            id: EventId(entry.seq),
            payload: entry.payload,
        })
    }

    /// Pops the earliest pending event only if it fires at or before
    /// `deadline`; otherwise advances the clock to `deadline` and returns
    /// `None`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        self.skim_cancelled();
        match self.heap.peek() {
            Some(e) if e.at <= deadline => self.pop(),
            _ => {
                self.now = self.now.max(deadline);
                None
            }
        }
    }

    /// Advances the clock without delivering events.
    ///
    /// Only moves forward; an `at` in the past is ignored.
    pub fn advance_to(&mut self, at: SimTime) {
        self.now = self.now.max(at);
    }

    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 'c');
        q.schedule_at(SimTime::from_secs(1), 'a');
        q.schedule_at(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(15));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_secs(1), "keep");
        let drop = q.schedule_at(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel must fail");
        assert_eq!(q.len(), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.id, keep);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_delivered_event_fails() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "later");
        assert!(q.pop_until(SimTime::from_secs(3)).is_none());
        assert_eq!(q.now(), SimTime::from_secs(3));
        let e = q.pop_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(e.payload, "later");
        assert_eq!(q.now(), SimTime::from_secs(5));
        // Deadline with empty queue still advances the clock.
        assert!(q.pop_until(SimTime::from_secs(10)).is_none());
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(4));
        q.advance_to(SimTime::from_secs(2));
        assert_eq!(q.now(), SimTime::from_secs(4));
    }
}
