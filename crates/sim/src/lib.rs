//! Deterministic discrete-event simulation engine for the ROS optical library.
//!
//! Every hardware component in the ROS reproduction (roller, robotic arm,
//! optical drives, disk tier) is modelled on a *logical* clock so that an
//! hour-long disc burn completes in microseconds of wall time while still
//! reporting paper-scale latencies. This crate provides the shared
//! foundations:
//!
//! - [`SimTime`] / [`SimDuration`]: nanosecond-resolution logical time,
//! - [`Bandwidth`]: byte-per-second transfer rates with exact
//!   duration-for-size arithmetic,
//! - [`EventQueue`]: a deterministic future-event list with stable FIFO
//!   tie-breaking,
//! - [`SimRng`]: a seedable, reproducible random number generator,
//! - [`stats`]: latency recorders and time-series samplers used by the
//!   benchmark harness to regenerate the paper's figures.
//!
//! The engine is intentionally *passive*: component models compute durations
//! and the owning engine (in `ros-olfs`) schedules completion events. This
//! keeps hardware models pure and unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use bandwidth::Bandwidth;
pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
