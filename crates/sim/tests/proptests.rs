//! Property tests for the simulation foundations.

use proptest::collection::vec;
use proptest::prelude::*;
use ros_sim::{Bandwidth, EventQueue, SimDuration, SimTime};

proptest! {
    #[test]
    fn event_queue_delivers_in_nondecreasing_time_order(
        times in vec(0u64..1_000_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut delivered = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
            delivered += 1;
        }
        prop_assert_eq!(delivered, times.len());
    }

    #[test]
    fn simultaneous_events_preserve_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_secs(1), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn bandwidth_time_for_is_monotone_in_bytes(
        mbps in 1.0f64..2000.0,
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000
    ) {
        let bw = Bandwidth::from_mb_per_sec(mbps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.time_for(lo) <= bw.time_for(hi));
    }

    #[test]
    fn bandwidth_roundtrip_bytes(
        mbps in 1.0f64..2000.0,
        bytes in 1u64..10_000_000_000
    ) {
        let bw = Bandwidth::from_mb_per_sec(mbps);
        let d = bw.time_for(bytes);
        let back = bw.bytes_in(d);
        // Nanosecond rounding: within one microsecond's worth of bytes.
        let slack = (bw.bytes_per_sec() / 1e6).ceil() as i64 + 1;
        prop_assert!((back as i64 - bytes as i64).abs() <= slack,
            "bytes {bytes} -> {back} (slack {slack})");
    }

    #[test]
    fn duration_arithmetic_never_underflows(
        a in 0u64..u64::MAX / 2,
        b in 0u64..u64::MAX / 2
    ) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let diff = da - db;
        prop_assert!(diff.as_nanos() == a.saturating_sub(b));
        let sum = da + db;
        prop_assert!(sum.as_nanos() == a + b);
    }
}
