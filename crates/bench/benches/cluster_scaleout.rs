//! Cluster scale-out: aggregate read throughput across federated racks
//! must grow near-linearly, and a rack failure at replication 2 must
//! lose nothing.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let points = ros_bench::cluster_scaleout(&[1, 2, 4], 1600).expect("scaleout");
    println!(
        "{}",
        ros_bench::render::render_cluster_smoke().expect("render")
    );
    let two = points[1].speedup;
    let four = points[2].speedup;
    assert!(two >= 1.8, "1 -> 2 racks speedup = {two:.2}x");
    assert!(four >= 3.0, "1 -> 4 racks speedup = {four:.2}x");
    let drill = ros_bench::cluster_failure_drill(4, 1600).expect("drill");
    assert_eq!(drill.drill.files_lost, 0, "replication 2 loses nothing");
    c.bench_function("cluster/scaleout_2rack_smoke", |b| {
        b.iter(|| ros_bench::cluster_scaleout(&[2], 240).expect("smoke"))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
