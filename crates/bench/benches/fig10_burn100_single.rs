//! Figure 10: single-drive 100 GB recording with fail-safe dips.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let plan = ros_bench::fig10();
    println!("{}", ros_bench::render::render_fig10());
    assert!((plan.total.as_secs_f64() - 3757.0).abs() < 80.0);
    assert!((plan.average_x - 5.9).abs() < 0.1);
    let dips = plan
        .samples
        .iter()
        .filter(|s| s.x > 0.0 && s.x < 5.0)
        .count();
    assert!(dips > 0, "fail-safe dips must appear");
    c.bench_function("fig10/burn_plan_100gb", |b| b.iter(ros_bench::fig10));
}

criterion_group!(benches, bench);
criterion_main!(benches);
