//! Figure 8: single-drive 25 GB recording curve.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let plan = ros_bench::fig8();
    println!("{}", ros_bench::render::render_fig8());
    assert!((plan.total.as_secs_f64() - 675.0).abs() < 10.0);
    assert!((plan.average_x - 8.2).abs() < 0.15);
    c.bench_function("fig8/burn_plan_25gb", |b| b.iter(ros_bench::fig8));
}

criterion_group!(benches, bench);
criterion_main!(benches);
