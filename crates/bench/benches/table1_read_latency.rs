//! Table 1: read latency from the six file locations.
//!
//! The criterion measurement times the *scenario construction + read*
//! on the host; the simulated latencies themselves are printed once and
//! asserted against the paper inside `ros_bench::table1`.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = ros_bench::table1().expect("table1");
    println!("{}", ros_bench::render::render_table1().expect("render"));
    // Shape assertions: each row strictly slower than the previous.
    for pair in rows.windows(2) {
        assert!(
            pair[1].measured_secs > pair[0].measured_secs,
            "Table 1 rows must be ordered by latency"
        );
    }
    // Quantitative: within tolerance of the paper where a number exists.
    for row in &rows {
        if let Some(paper) = row.paper_secs {
            let tol = (paper * 0.05f64).max(0.0003);
            assert!(
                (row.measured_secs - paper).abs() < tol,
                "{}: measured {:.4}s vs paper {:.3}s",
                row.location,
                row.measured_secs,
                paper
            );
        }
    }
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("six_location_scenario", |b| b.iter(ros_bench::table1));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
