//! Criterion microbenches for the GF(256) parity kernels: P (word-sliced
//! XOR), Q (per-generator split tables), the fused P+Q encode, two-stripe
//! reconstruction and the no-allocation verify sweep — each at 1 thread
//! and on a 4-thread data plane, plus the scalar shift-and-add Q as the
//! pre-table contrast. Companion to the `repro perf` parity section,
//! which gates the table-vs-scalar cost ratios; this harness gives the
//! richer interactive Criterion view.

use criterion::{criterion_group, criterion_main, Criterion};
use ros_disk::parity::{self, gf_mul_scalar, gf_pow2};
use ros_disk::DataPlane;
use std::hint::black_box;

const STRIPES: usize = 10;
const STRIPE_LEN: usize = 256 * 1024;

/// Deterministic splitmix-style byte stream.
fn next_id(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn corpus() -> Vec<Vec<u8>> {
    let mut state = 0xC0FF_EE00_5EED_u64;
    (0..STRIPES)
        .map(|_| {
            let mut stripe = vec![0u8; STRIPE_LEN];
            for chunk in stripe.chunks_mut(8) {
                let word = next_id(&mut state).to_le_bytes();
                for (dst, src) in chunk.iter_mut().zip(word.iter()) {
                    *dst = *src;
                }
            }
            stripe
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let data = corpus();
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let planes = [("1t", DataPlane::new(1)), ("4t", DataPlane::new(4))];

    c.bench_function("parity/q_scalar_reference", |b| {
        b.iter(|| {
            let mut q = vec![0u8; STRIPE_LEN];
            for (i, stripe) in refs.iter().enumerate() {
                let g = gf_pow2(i);
                for (dst, src) in q.iter_mut().zip(stripe.iter()) {
                    *dst ^= gf_mul_scalar(g, *src);
                }
            }
            black_box(q)
        })
    });

    for (tag, plane) in &planes {
        c.bench_function(&format!("parity/p_{tag}"), |b| {
            b.iter(|| black_box(parity::parity_p_with(&refs, plane).ok()))
        });
        c.bench_function(&format!("parity/q_{tag}"), |b| {
            b.iter(|| black_box(parity::parity_q_with(&refs, plane).ok()))
        });
        c.bench_function(&format!("parity/encode_pq_{tag}"), |b| {
            b.iter(|| black_box(parity::encode_pq_with(&refs, plane).ok()))
        });
    }

    if let Ok((p, q)) = parity::encode_pq(&refs) {
        let mut lossy: Vec<Option<&[u8]>> = refs.iter().map(|s| Some(*s)).collect();
        lossy[2] = None;
        lossy[STRIPES - 3] = None;
        for (tag, plane) in &planes {
            c.bench_function(&format!("parity/reconstruct2_{tag}"), |b| {
                b.iter(|| {
                    black_box(parity::reconstruct_pq_with(&lossy, Some(&p), Some(&q), plane).ok())
                })
            });
            c.bench_function(&format!("parity/verify_{tag}"), |b| {
                b.iter(|| black_box(parity::verify_group_with(&refs, &p, Some(&q), plane).ok()))
            });
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
