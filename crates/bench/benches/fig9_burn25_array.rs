//! Figure 9: 12-drive aggregate burn of a 25 GB disc array.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let report = ros_bench::fig9();
    println!("{}", ros_bench::render::render_fig9());
    assert!((report.total.as_secs_f64() - 1146.0).abs() / 1146.0 < 0.03);
    assert!((report.peak.mb_per_sec() - 380.0).abs() < 5.0);
    assert!((report.average.mb_per_sec() - 268.0).abs() / 268.0 < 0.04);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("array_burn_cosim", |b| b.iter(ros_bench::fig9));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
