//! Ablations of the paper's design choices.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", ros_bench::render::render_ablations().expect("render"));
    let (spread, crammed) = ros_bench::ablation_volumes().expect("volumes");
    assert!(spread > crammed * 1.5, "volume spreading must pay off");
    let (par, ser) = ros_bench::ablation_parallel_scheduling().expect("scheduling");
    let saving = ser - par;
    assert!((7.0..10.0).contains(&saving), "saving = {saving:.1}s");
    let (fp_ms, no_fp_s) = ros_bench::ablation_forepart().expect("forepart");
    assert!(fp_ms <= 2.1, "forepart first byte = {fp_ms} ms");
    assert!(no_fp_s > 60.0, "without forepart = {no_fp_s} s");
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("forepart_cold_read", |b| {
        b.iter(ros_bench::ablation_forepart)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
