//! Criterion microbenches for the algorithmic hot paths rebuilt in the
//! complexity overhaul: Read Cache LRU churn, k-way throughput
//! aggregation at growing series counts, and cached order-statistics
//! percentile queries. Companion to `repro perf`, which measures the
//! same paths under the regression gate; this harness gives the richer
//! interactive Criterion view.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ros_bench::perf::synth_series;
use ros_olfs::cache::ReadCache;
use ros_olfs::ImageId;
use ros_sim::stats::{LatencyRecorder, ThroughputSeries};
use ros_sim::{SimDuration, SimTime};
use std::hint::black_box;

/// Deterministic splitmix-style id stream.
fn next_id(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn bench(c: &mut Criterion) {
    for capacity in [64usize, 640] {
        c.bench_function(&format!("hotpaths/cache_churn_{capacity}"), |b| {
            b.iter_batched(
                || {
                    let mut cache = ReadCache::new(capacity);
                    for i in 0..capacity as u64 * 2 {
                        cache.insert(ImageId(i));
                    }
                    (cache, capacity as u64)
                },
                |(mut cache, mut state)| {
                    for _ in 0..4096 {
                        let id = ImageId(next_id(&mut state) % (capacity as u64 * 2));
                        match next_id(&mut state) % 4 {
                            0 => {
                                black_box(cache.insert(id));
                            }
                            1 | 2 => {
                                black_box(cache.touch(id));
                            }
                            _ => {
                                black_box(cache.remove(id));
                            }
                        }
                    }
                    cache
                },
                BatchSize::SmallInput,
            )
        });
    }

    for k in [12usize, 48, 480] {
        let series = synth_series(k, 96);
        c.bench_function(&format!("hotpaths/aggregate_{k}_series"), |b| {
            b.iter(|| {
                let out = ThroughputSeries::aggregate("agg", series.iter());
                black_box(out.len())
            })
        });
    }

    for n in [4_000usize, 40_000] {
        let mut rec = LatencyRecorder::new("bench");
        let mut state = n as u64;
        for _ in 0..n {
            rec.record(SimDuration::from_nanos(next_id(&mut state) % 1_000_000));
        }
        // Prime the cached sorted view so the one-time O(n log n) build
        // is not charged to the first measured iteration.
        black_box(rec.percentile(0.5));
        c.bench_function(&format!("hotpaths/percentiles_{n}_samples"), |b| {
            b.iter(|| {
                let mut acc = SimDuration::ZERO;
                for _ in 0..512 {
                    acc = acc
                        + black_box(rec.percentile(0.5))
                        + black_box(rec.percentile(0.95))
                        + black_box(rec.percentile(0.99));
                }
                acc
            })
        });
    }

    let lookup = &synth_series(1, 10_000)[0];
    c.bench_function("hotpaths/rate_at_10k_points", |b| {
        let mut state = 1u64;
        b.iter(|| {
            let t = SimTime::from_nanos(next_id(&mut state) % 10_000_000_000);
            black_box(lookup.rate_at(t))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
