//! Table 3: disc-array load/unload latency at the uppermost and lowest
//! layers.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = ros_bench::table3().expect("table3");
    println!("{}", ros_bench::render::render_table3().expect("render"));
    for row in &rows {
        assert!((row.load - row.paper_load).abs() < 0.1, "{}", row.location);
        assert!(
            (row.unload - row.paper_unload).abs() < 0.1,
            "{}",
            row.location
        );
    }
    c.bench_function("table3/mech_cycle_model", |b| b.iter(ros_bench::table3));
}

criterion_group!(benches, bench);
criterion_main!(benches);
