//! Figure 6: singlestream throughput under the five software stacks.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let bars = ros_bench::fig6();
    println!("{}", ros_bench::render::render_fig6());
    // The headline result: samba+OLFS ≈ 236.1 MB/s read, 323.6 MB/s write.
    let so = bars.iter().find(|b| b.stack == "samba+OLFS").expect("bar");
    assert!(
        (so.read_mbps - 236.1).abs() < 8.0,
        "read = {}",
        so.read_mbps
    );
    assert!(
        (so.write_mbps - 323.6).abs() < 8.0,
        "write = {}",
        so.write_mbps
    );
    // Reads strictly descend across the stacks.
    for pair in bars.windows(2) {
        assert!(pair[0].read_norm > pair[1].read_norm);
    }
    c.bench_function("fig6/stack_model", |b| b.iter(ros_bench::fig6));
}

criterion_group!(benches, bench);
criterion_main!(benches);
