//! Table 2: single and aggregate optical read speeds.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = ros_bench::table2();
    println!("{}", ros_bench::render::render_table2());
    for row in &rows {
        assert!((row.single - row.paper_single).abs() / row.paper_single < 0.02);
        assert!((row.aggregate - row.paper_aggregate).abs() / row.paper_aggregate < 0.02);
    }
    c.bench_function("table2/aggregate_read_model", |b| b.iter(ros_bench::table2));
}

criterion_group!(benches, bench);
criterion_main!(benches);
