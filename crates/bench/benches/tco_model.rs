//! §2.1 TCO analysis: 1 PB for 100 years on four technologies.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = ros_bench::tco();
    println!("{}", ros_bench::render::render_tco().expect("render"));
    let get = |n: &str| rows.iter().find(|b| b.name == n).expect("media").total();
    let optical = get("optical");
    assert!((optical - 250_000.0).abs() / 250_000.0 < 0.15);
    assert!((optical / get("hdd") - 1.0 / 3.0).abs() < 0.07);
    assert!((optical / get("tape") - 0.5).abs() < 0.08);
    c.bench_function("tco/compare_all", |b| b.iter(ros_bench::tco));
}

criterion_group!(benches, bench);
criterion_main!(benches);
