//! Figure 7: internal OLFS operations per POSIX call.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let ops = ros_bench::fig7().expect("fig7");
    println!("{}", ros_bench::render::render_fig7().expect("render"));
    for op in &ops {
        let rel = (op.measured_ms - op.paper_ms).abs() / op.paper_ms;
        assert!(
            rel < 0.08,
            "{}: {:.1} ms vs paper {:.0} ms",
            op.label,
            op.measured_ms,
            op.paper_ms
        );
    }
    // The samba write gains exactly the paper's extra stat burst.
    let sw = ops
        .iter()
        .find(|o| o.label == "samba+OLFS write")
        .expect("op");
    let stats = sw.steps.iter().filter(|(n, _)| n == "stat").count();
    assert_eq!(stats, 8, "2 OLFS stats + 6 Samba stats");
    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("op_trace_scenario", |b| b.iter(ros_bench::fig7));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
