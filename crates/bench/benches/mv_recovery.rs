//! §4.2's MV recovery experiment: half an hour for 120 discs.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let t = ros_bench::mv_recovery_default().expect("mv recovery");
    println!("{}", ros_bench::render::render_mvrec().expect("render"));
    let mins = t.as_secs_f64() / 60.0;
    assert!((27.0..33.0).contains(&mins), "recovery = {mins:.1} min");
    c.bench_function("mvrec/model_120_discs", |b| {
        b.iter(ros_bench::mv_recovery_default)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
