//! Micro-benchmarks of the library's own hot paths (host wall time):
//! how fast the simulation engine processes writes, reads and burns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ros_olfs::{Ros, RosConfig, UdfPath};

fn bench(c: &mut Criterion) {
    let p = |s: &str| -> UdfPath { s.parse().unwrap() };

    c.bench_function("hot/write_1kb", |b| {
        b.iter_batched(
            || (Ros::new(RosConfig::tiny()), 0u32),
            |(mut ros, mut i)| {
                for _ in 0..16 {
                    ros.write_file(&p(&format!("/w/{i}")), vec![0u8; 1024])
                        .unwrap();
                    i += 1;
                }
                ros
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("hot/read_buffered_64kb", |b| {
        let mut ros = Ros::new(RosConfig::tiny());
        ros.write_file(&p("/r"), vec![7u8; 65536]).unwrap();
        b.iter(|| ros.read_file(&p("/r")).unwrap().data.len())
    });

    c.bench_function("hot/flush_small_dataset", |b| {
        b.iter_batched(
            || {
                let mut ros = Ros::new(RosConfig::tiny());
                for i in 0..12 {
                    ros.write_file(&p(&format!("/f/{i}")), vec![1u8; 400_000])
                        .unwrap();
                }
                ros
            },
            |mut ros| {
                ros.flush().unwrap();
                ros
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
