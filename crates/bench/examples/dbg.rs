fn main() {
    use ros_olfs::*;
    let mut cfg = RosConfig::tiny();
    cfg.layout = ros_mech::RackLayout::default();
    cfg.drive_bays = 1;
    cfg.read_cache_images = 512;
    cfg.forepart_bytes = 4096;
    let mut ros = Ros::new(cfg);
    let p = |s: &str| -> UdfPath { s.parse().unwrap() };
    for i in 0..12 {
        ros.write_file(&p(&format!("/t1/set-a/{i}")), vec![3u8; 900_000])
            .unwrap();
    }
    ros.flush().unwrap();
    ros.evict_burned_copies();
    let r = ros.read_file(&p("/t1/set-a/0")).unwrap();
    println!(
        "source {:?} segs {:?}",
        r.source,
        ros.image_segments(&p("/t1/set-a/0"))
    );
    for s in &r.trace.steps {
        println!("step {} {:?}", s.name, s.duration);
    }
    for s in &r.trace.extra {
        println!("extra {} {:?}", s.name, s.duration);
    }
}
