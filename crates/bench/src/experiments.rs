//! Scenario builders for every table and figure of the paper.

use ros_access::AccessStack;
use ros_drive::media::MediaKind;
use ros_drive::{params as drive_params, BurnPlan, DiscClass, DriveSet, SpeedCurve};
use ros_mech::plc::Plc;
use ros_mech::{MechScheduler, RackLayout, SlotAddress};
use ros_olfs::config::BusyReadPolicy;
use ros_olfs::trace::OpTrace;
use ros_olfs::{Redundancy, Ros, RosConfig, UdfPath};
use ros_sim::{Bandwidth, SimDuration, SimRng, SimTime};
use ros_tco::{RackPower, RackState, TcoModel};

/// An experiment scenario failed to build or run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchError {
    /// The failing experiment step.
    pub context: &'static str,
    /// Underlying error text.
    pub detail: String,
}

impl BenchError {
    /// Adapter for `map_err`: tags an underlying error with the step.
    fn wrap<E: core::fmt::Display>(context: &'static str) -> impl Fn(E) -> BenchError + Copy {
        move |e| BenchError {
            context,
            detail: e.to_string(),
        }
    }

    /// A scenario invariant failed (no underlying error object).
    fn state(context: &'static str, detail: impl Into<String>) -> BenchError {
        BenchError {
            context,
            detail: detail.into(),
        }
    }
}

impl core::fmt::Display for BenchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.context, self.detail)
    }
}

impl std::error::Error for BenchError {}

/// Extracts the pure data-access latency from an operation trace — the
/// quantity Table 1 reports (device time and mechanical time, without
/// the per-op FUSE overheads of Figure 7).
pub fn data_access_latency(trace: &OpTrace) -> SimDuration {
    let op_overhead = ros_olfs::params::internal_op_overhead();
    let steps: SimDuration = trace
        .steps
        .iter()
        .map(|s| s.duration.saturating_sub(op_overhead))
        .sum();
    let extra: SimDuration = trace
        .extra
        .iter()
        .filter(|e| e.name != "smb")
        .map(|e| e.duration)
        .sum();
    steps + extra
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// File location label (the paper's wording).
    pub location: &'static str,
    /// The paper's measured latency, seconds (None for the "minutes" row).
    pub paper_secs: Option<f64>,
    /// Our measured latency, seconds.
    pub measured_secs: f64,
}

fn table1_config() -> RosConfig {
    RosConfig {
        layout: RackLayout::default(),
        disc_class: DiscClass::Custom {
            capacity: 4 * 1024 * 1024,
        },
        drive_bays: 1,
        drives_per_bay: 12,
        redundancy: Redundancy::Raid5,
        open_buckets: 2,
        read_cache_images: 512,
        forepart_bytes: 4096,
        busy_read_policy: BusyReadPolicy::Wait,
        separate_volumes: true,
        prefetch_array: false,
        write_and_check: false,
        scrub_interval: None,
        seed: 7,
        rack_id: 0,
        data_plane_threads: 0,
        dedup: false,
        audit_sample_images: 0,
    }
}

fn p(s: &str) -> UdfPath {
    // ros-analysis: allow(L2, every caller passes a well-formed path literal)
    s.parse().expect("static path")
}

/// Checks that a Table 1 row was served from the location it models.
fn expect_source(
    row: &'static str,
    got: ros_olfs::engine::ReadSource,
    want: ros_olfs::engine::ReadSource,
) -> Result<(), BenchError> {
    if got == want {
        Ok(())
    } else {
        Err(BenchError::state(
            row,
            format!("read served from {got:?}, scenario expects {want:?}"),
        ))
    }
}

/// Regenerates Table 1: read latency from each of the six file
/// locations. The mechanical rows use the full 85-layer rack model; data
/// rows use scaled discs (timing is size-independent at 1 KB files).
pub fn table1() -> Result<Vec<Table1Row>, BenchError> {
    use ros_olfs::engine::ReadSource;
    let mut rows = Vec::new();
    let e = BenchError::wrap("table1");

    // Row 1: file still in a disk bucket.
    let mut ros = Ros::new(table1_config());
    ros.write_file(&p("/t1/bucket"), vec![1u8; 1024])
        .map_err(e)?;
    let r = ros.read_file(&p("/t1/bucket")).map_err(e)?;
    rows.push(Table1Row {
        location: "Disk bucket",
        paper_secs: Some(0.001),
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    // Row 2: sealed disc image on the disk buffer.
    ros.write_file(&p("/t1/image"), vec![2u8; 1024])
        .map_err(e)?;
    ros.seal_open_buckets().map_err(e)?;
    let r = ros.read_file(&p("/t1/image")).map_err(e)?;
    rows.push(Table1Row {
        location: "Disc image",
        paper_secs: Some(0.002),
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    // Rows 3-5 share a burned dataset: bulk files to fill buckets plus a
    // 1 KB probe file (the paper measures small-file read latency).
    let mut ros = Ros::new(table1_config());
    for i in 0..12 {
        ros.write_file(&p(&format!("/t1/set-a/{i}")), vec![3u8; 900_000])
            .map_err(e)?;
    }
    ros.write_file(&p("/t1/set-a/probe"), vec![9u8; 1024])
        .map_err(e)?;
    ros.flush().map_err(e)?;
    ros.evict_burned_copies();

    // Row 3: the freshly burned array is still in the drives.
    let r = ros.read_file(&p("/t1/set-a/probe")).map_err(e)?;
    expect_source("table1 row 3", r.source, ReadSource::DiscInDrive)?;
    rows.push(Table1Row {
        location: "Disc in optical drive",
        paper_secs: Some(0.223),
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    // Row 4: array back in the roller, drives free.
    ros.unload_all_bays().map_err(e)?;
    ros.evict_burned_copies();
    let r = ros.read_file(&p("/t1/set-a/probe")).map_err(e)?;
    expect_source("table1 row 4", r.source, ReadSource::RollerFreeDrives)?;
    rows.push(Table1Row {
        location: "Disc array in the roller with free drives",
        paper_secs: Some(70.553),
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    // Row 5: drives hold another (idle) array that must be unloaded.
    // Burn a second set so the bay is occupied by set B, then read set A.
    for i in 0..12 {
        ros.write_file(&p(&format!("/t1/set-b/{i}")), vec![4u8; 900_000])
            .map_err(e)?;
    }
    ros.flush().map_err(e)?;
    ros.evict_burned_copies();
    let r = ros.read_file(&p("/t1/set-a/probe")).map_err(e)?;
    expect_source("table1 row 5", r.source, ReadSource::RollerUnloadFirst)?;
    rows.push(Table1Row {
        location: "Disc array in the roller and drives are not working",
        paper_secs: Some(155.037),
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    // Row 6: all drives busy burning; the Wait policy rides out the
    // burn. At 4 MiB scale the wait is seconds; on 25/100 GB media the
    // same wait is the residual burn time — minutes to over an hour.
    let mut ros = Ros::new(table1_config());
    for i in 0..12 {
        ros.write_file(&p(&format!("/t1/cold/{i}")), vec![5u8; 900_000])
            .map_err(e)?;
    }
    ros.flush().map_err(e)?;
    ros.unload_all_bays().map_err(e)?;
    ros.evict_burned_copies();
    // Kick off a new burn and read a cold file while it runs.
    for i in 0..12 {
        ros.write_file(&p(&format!("/t1/hot/{i}")), vec![6u8; 900_000])
            .map_err(e)?;
    }
    ros.seal_open_buckets().map_err(e)?;
    ros.force_close_collecting_group();
    ros.run_for(SimDuration::from_millis(4_000)); // Parity done, burn starts.
    let r = ros.read_file(&p("/t1/cold/3")).map_err(e)?;
    expect_source("table1 row 6", r.source, ReadSource::RollerDrivesBusy)?;
    rows.push(Table1Row {
        location: "Disc array in the roller and all drives are busy",
        paper_secs: None, // "minutes"
        measured_secs: data_access_latency(&r.trace).as_secs_f64(),
    });

    Ok(rows)
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Disc capacity label.
    pub capacity_gb: u32,
    /// Paper single-drive read speed, MB/s.
    pub paper_single: f64,
    /// Our single-drive read speed, MB/s.
    pub single: f64,
    /// Paper 12-drive aggregate, MB/s.
    pub paper_aggregate: f64,
    /// Our 12-drive aggregate, MB/s.
    pub aggregate: f64,
}

/// Regenerates Table 2: optical drive read speeds.
pub fn table2() -> Vec<Table2Row> {
    let set = DriveSet::new(12);
    vec![
        Table2Row {
            capacity_gb: 25,
            paper_single: 24.1,
            single: drive_params::read_speed_bd25().mb_per_sec(),
            paper_aggregate: 282.5,
            aggregate: set.aggregate_read_speed(DiscClass::Bd25).mb_per_sec(),
        },
        Table2Row {
            capacity_gb: 100,
            paper_single: 18.0,
            single: drive_params::read_speed_bd100().mb_per_sec(),
            paper_aggregate: 210.2,
            aggregate: set.aggregate_read_speed(DiscClass::Bd100).mb_per_sec(),
        },
    ]
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Slot location label.
    pub location: &'static str,
    /// Paper load time, seconds.
    pub paper_load: f64,
    /// Our load time, seconds.
    pub load: f64,
    /// Paper unload time, seconds.
    pub paper_unload: f64,
    /// Our unload time, seconds.
    pub unload: f64,
}

/// Regenerates Table 3: disc-array load/unload latency.
pub fn table3() -> Result<Vec<Table3Row>, BenchError> {
    let layout = RackLayout::default();
    let run = |layer: u32| -> Result<(f64, f64), BenchError> {
        let e = BenchError::wrap("table3");
        let mut sched = MechScheduler::new(Plc::new_full(layout), 1);
        let slot = SlotAddress::new(0, layer, 0);
        let load = sched.load_array(slot, 0).map_err(e)?.duration;
        let unload = sched.unload_array(0).map_err(e)?.duration;
        Ok((load.as_secs_f64(), unload.as_secs_f64()))
    };
    let (l0, u0) = run(0)?;
    let (l84, u84) = run(layout.layers - 1)?;
    Ok(vec![
        Table3Row {
            location: "Uppermost layer",
            paper_load: 68.7,
            load: l0,
            paper_unload: 81.7,
            unload: u0,
        },
        Table3Row {
            location: "Lowest layer",
            paper_load: 73.2,
            load: l84,
            paper_unload: 86.5,
            unload: u84,
        },
    ])
}

/// One bar pair of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Bar {
    /// Stack name.
    pub stack: &'static str,
    /// Read throughput normalized to ext4.
    pub read_norm: f64,
    /// Write throughput normalized to ext4.
    pub write_norm: f64,
    /// Absolute read throughput, MB/s.
    pub read_mbps: f64,
    /// Absolute write throughput, MB/s.
    pub write_mbps: f64,
}

/// Regenerates Figure 6: singlestream throughput under the five stacks,
/// normalized to ext4 on the RAID-5 volume (1.2 GB/s R / 1.0 GB/s W).
pub fn fig6() -> Vec<Fig6Bar> {
    let base_r = Bandwidth::from_mb_per_sec(1204.0);
    let base_w = Bandwidth::from_mb_per_sec(1002.0);
    AccessStack::all()
        .into_iter()
        .map(|s| {
            let t = s.throughput(base_r, base_w);
            Fig6Bar {
                stack: s.name(),
                read_norm: t.read.bytes_per_sec() / base_r.bytes_per_sec(),
                write_norm: t.write.bytes_per_sec() / base_w.bytes_per_sec(),
                read_mbps: t.read.mb_per_sec(),
                write_mbps: t.write.mb_per_sec(),
            }
        })
        .collect()
}

/// One operation of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Op {
    /// Operation label (e.g. "samba+OLFS write").
    pub label: &'static str,
    /// Paper total latency, ms.
    pub paper_ms: f64,
    /// Our total latency, ms.
    pub measured_ms: f64,
    /// Internal step sequence with per-step ms.
    pub steps: Vec<(String, f64)>,
}

/// Regenerates Figure 7: the internal operation breakdown of 1 KB file
/// writes and reads under ext4+OLFS and samba+OLFS.
pub fn fig7() -> Result<Vec<Fig7Op>, BenchError> {
    let e = BenchError::wrap("fig7");
    let mut out = Vec::new();
    for (stack, wl, rl, wp, rp) in [
        (AccessStack::Ext4Olfs, "OLFS write", "OLFS read", 16.0, 9.0),
        (
            AccessStack::SambaOlfs,
            "samba+OLFS write",
            "samba+OLFS read",
            53.0,
            15.0,
        ),
    ] {
        let mut g = ros_access::NasGateway::new(Ros::new(table1_config()), stack);
        let w = g.write_file(&p("/f7/file"), vec![0u8; 1024]).map_err(e)?;
        out.push(Fig7Op {
            label: wl,
            paper_ms: wp,
            measured_ms: w.latency.as_millis_f64(),
            steps: w
                .trace
                .steps
                .iter()
                .map(|s| (s.name.clone(), s.duration.as_millis_f64()))
                .collect(),
        });
        let r = g.read_file(&p("/f7/file")).map_err(e)?;
        out.push(Fig7Op {
            label: rl,
            paper_ms: rp,
            measured_ms: r.latency.as_millis_f64(),
            steps: r
                .trace
                .steps
                .iter()
                .map(|s| (s.name.clone(), s.duration.as_millis_f64()))
                .collect(),
        });
    }
    Ok(out)
}

/// Figure 8 result: the single-drive 25 GB recording curve.
pub fn fig8() -> BurnPlan {
    let curve = SpeedCurve::for_media(DiscClass::Bd25, MediaKind::Worm);
    BurnPlan::plan(
        curve,
        drive_params::BD25_BYTES,
        1.0,
        false,
        &mut SimRng::seed_from(8),
    )
}

/// Figure 9 result: the 12-drive aggregate 25 GB array burn.
pub fn fig9() -> ros_drive::ArrayBurnReport {
    let set = DriveSet::new(12);
    let sizes = vec![drive_params::BD25_BYTES; 12];
    set.simulate_array_burn(&sizes, DiscClass::Bd25, SimTime::ZERO)
}

/// Figure 10 result: the single-drive 100 GB recording curve with
/// fail-safe dips.
pub fn fig10() -> BurnPlan {
    let curve = SpeedCurve::for_media(DiscClass::Bd100, MediaKind::Worm);
    BurnPlan::plan(
        curve,
        drive_params::BD100_BYTES,
        1.0,
        false,
        &mut SimRng::seed_from(10),
    )
}

/// TCO comparison (§2.1's cited analysis).
pub fn tco() -> Vec<ros_tco::TcoBreakdown> {
    TcoModel::default().compare_all()
}

/// Rack power at the two §5.1 operating points: `(idle, peak)` watts.
pub fn power() -> (f64, f64) {
    let p = RackPower::prototype();
    (p.watts(RackState::Idle), p.watts(RackState::Peak))
}

/// The §4.2 MV-recovery experiment: time to recover the metadata volume
/// from `discs` partially-filled 100 GB MV snapshot discs using the
/// prototype's 24 drives (paper: "ROS took half an hour to recover MV
/// from 120 discs").
pub fn mv_recovery_model(discs: u32, bytes_per_disc: u64) -> Result<SimDuration, BenchError> {
    let e = BenchError::wrap("mv_recovery");
    let layout = RackLayout::default();
    let bays = 2usize;
    let per_tray = layout.discs_per_tray;
    let trays = discs.div_ceil(per_tray);
    // Both bays work in parallel; each round handles `bays` trays.
    let rounds = (trays as usize).div_ceil(bays);
    let mut total = SimDuration::ZERO;
    let mut sched = MechScheduler::new(Plc::new_full(layout), bays);
    let read_per_disc = drive_params::read_speed_bd100().time_for(bytes_per_disc);
    for round in 0..rounds {
        let slot = layout.slot_at(u32::try_from(round * bays).unwrap_or(u32::MAX));
        // Discs in a tray are read in parallel; the tray occupies the
        // bay for load + slowest read + unload.
        let load = sched.load_array(slot, 0).map_err(e)?.duration;
        let unload = sched.unload_array(0).map_err(e)?.duration;
        total += load + read_per_disc + unload;
    }
    Ok(total)
}

/// Default parameters for the MV-recovery experiment: 120 discs holding
/// ≈3.7 GB of MV snapshot data each (≈450 GB total — a billion-file MV
/// compresses to this order).
pub fn mv_recovery_default() -> Result<SimDuration, BenchError> {
    mv_recovery_model(120, 3_700_000_000)
}

/// Ablation: the four §4.7 I/O streams crammed onto one RAID volume vs
/// spread across two independent volumes. Returns the total useful
/// bandwidth `(spread_mbps, crammed_mbps)` — the measurable benefit of
/// "configure disks into multiple volumes of independent RAIDs".
pub fn ablation_volumes() -> Result<(f64, f64), BenchError> {
    use ros_disk::volume::StreamKind;
    use ros_disk::{RaidArray, VolumeManager};
    let e = BenchError::wrap("ablation_volumes");
    // Crammed: all four streams share one volume.
    let mut vm = VolumeManager::new();
    let a = vm.add_volume("only", RaidArray::prototype_data());
    for kind in [
        StreamKind::UserWrite,
        StreamKind::ParityRead,
        StreamKind::ParityWrite,
        StreamKind::BurnRead,
    ] {
        vm.open_stream(a, kind).map_err(e)?;
    }
    let crammed = 2.0 * vm.effective_write_bandwidth(a).map_err(e)?.mb_per_sec()
        + 2.0 * vm.effective_read_bandwidth(a).map_err(e)?.mb_per_sec();
    // Spread: writes on volume A, reads on volume B (2 streams each).
    let mut vm = VolumeManager::new();
    let a = vm.add_volume("writes", RaidArray::prototype_data());
    let b = vm.add_volume("reads", RaidArray::prototype_data());
    vm.open_stream(a, StreamKind::UserWrite).map_err(e)?;
    vm.open_stream(a, StreamKind::ParityWrite).map_err(e)?;
    vm.open_stream(b, StreamKind::ParityRead).map_err(e)?;
    vm.open_stream(b, StreamKind::BurnRead).map_err(e)?;
    let spread = 2.0 * vm.effective_write_bandwidth(a).map_err(e)?.mb_per_sec()
        + 2.0 * vm.effective_read_bandwidth(b).map_err(e)?.mb_per_sec();
    Ok((spread, crammed))
}

/// Ablation: the mechanical parallel-scheduling optimisation (§3.2).
/// Returns `(parallel_cycle_secs, serial_cycle_secs)` for a lowest-layer
/// load+unload cycle.
pub fn ablation_parallel_scheduling() -> Result<(f64, f64), BenchError> {
    let layout = RackLayout::default();
    let slot = SlotAddress::new(0, layout.layers - 1, 0);
    let run = |parallel: bool| -> Result<f64, BenchError> {
        let e = BenchError::wrap("ablation_parallel_scheduling");
        let mut sched = MechScheduler::new(Plc::new_full(layout), 1);
        sched.parallel_scheduling = parallel;
        let l = sched.load_array(slot, 0).map_err(e)?.duration;
        let u = sched.unload_array(0).map_err(e)?.duration;
        Ok((l + u).as_secs_f64())
    };
    Ok((run(true)?, run(false)?))
}

/// Ablation: forepart-data-stored mechanism (§4.8). Returns
/// `(first_byte_with_ms, first_byte_without_secs)` for a cold read.
pub fn ablation_forepart() -> Result<(f64, f64), BenchError> {
    let run = |forepart: u64| -> Result<f64, BenchError> {
        let e = BenchError::wrap("ablation_forepart");
        let mut cfg = table1_config();
        cfg.forepart_bytes = forepart;
        let mut ros = Ros::new(cfg);
        for i in 0..12 {
            ros.write_file(&p(&format!("/fp/{i}")), vec![1u8; 900_000])
                .map_err(e)?;
        }
        ros.flush().map_err(e)?;
        ros.unload_all_bays().map_err(e)?;
        ros.evict_burned_copies();
        let r = ros.read_file(&p("/fp/0")).map_err(e)?;
        Ok(r.first_byte_latency.as_secs_f64())
    };
    Ok((run(4096)? * 1e3, run(0)?))
}

/// Capacity-planning analysis derived from the models: how much ingest
/// the prototype can sustain, and for how long it can burst above that.
///
/// The write path is bounded by three stages (§3.3): the client network,
/// the access stack, and the drain rate at which burns move data from
/// the disk buffer to discs. Ingest above the drain rate eats buffer
/// space until the buffer fills.
#[derive(Clone, Debug)]
pub struct CapacityReport {
    /// 10GbE payload bandwidth, MB/s.
    pub network_mbps: f64,
    /// samba+OLFS client write throughput, MB/s (Figure 6).
    pub samba_write_mbps: f64,
    /// Direct-mode client write throughput, MB/s (§4.8 bypass).
    pub direct_write_mbps: f64,
    /// Sustained drain with 100 GB media (prototype), MB/s of user data.
    pub drain_bd100_mbps: f64,
    /// Sustained drain with 25 GB media, MB/s of user data.
    pub drain_bd25_mbps: f64,
    /// Disk-buffer capacity, TB.
    pub buffer_tb: f64,
    /// Hours the prototype can absorb direct-mode ingest above the
    /// BD100 drain rate before the buffer fills.
    pub burst_hours: f64,
}

/// Computes the capacity report for the prototype (2 bays, 100 GB
/// discs, 11+1 RAID-5 arrays).
pub fn capacity() -> Result<CapacityReport, BenchError> {
    let bays = 2.0;
    let data_fraction = 11.0 / 12.0;
    let network = ros_access::params::network_10gbe().mb_per_sec();
    let stacks = fig6();
    let samba_write = stacks
        .iter()
        .find(|b| b.stack == "samba+OLFS")
        .ok_or_else(|| BenchError::state("capacity", "fig6 has no samba+OLFS bar"))?
        .write_mbps;

    let set = DriveSet::new(12);
    let drain = |class: DiscClass| -> f64 {
        let sizes = vec![class.capacity(); 12];
        let report = set.simulate_array_burn(&sizes, class, SimTime::ZERO);
        // Average aggregate burn rate over the array, user data only,
        // per bay, across the bays. Loading/unloading overlaps with the
        // other bay's burn at steady state.
        report.average.mb_per_sec() * data_fraction * bays
    };
    let drain_bd100 = drain(DiscClass::Bd100);
    let drain_bd25 = drain(DiscClass::Bd25);

    // Buffer: two 7-HDD RAID-5 volumes of 4 TB members (§5.1).
    let buffer_tb = 2.0 * 6.0 * 4.0;
    let surplus = network - drain_bd100; // MB/s eating the buffer.
    let burst_hours = if surplus > 0.0 {
        buffer_tb * 1e6 / surplus / 3600.0
    } else {
        f64::INFINITY
    };
    Ok(CapacityReport {
        network_mbps: network,
        samba_write_mbps: samba_write,
        direct_write_mbps: network,
        drain_bd100_mbps: drain_bd100,
        drain_bd25_mbps: drain_bd25,
        buffer_tb,
        burst_hours,
    })
}
