//! Monte Carlo durability harness (`repro durability`): simulated
//! decades of media aging against the audit-based repair stack.
//!
//! Every cell of the sweep ingests the same dataset into a shrunk
//! optical federation, archives it cold (burned, buffer copies
//! dropped, trays back on the roller), then replays the *same* seeded
//! [`ros_faults::AgingPlan`] — bathtub hazards, correlated batch
//! defects, latent rot and detected sector corruption — epoch by
//! epoch. Cells differ only in the defence configuration:
//!
//! - **scrub/audit cadence** — how often the LOCKSS-style sampled
//!   audit ([`ros_cluster::Cluster::audit_all`]) runs (0 = never);
//! - **replication** — racks per archive group;
//! - **EC width** — RAID-5 (one parity) vs RAID-6 (two) per disc array.
//!
//! Because the aging schedule is identical across cells, differences
//! in outcome are pure treatment effect — a paired comparison, not
//! noise. Each epoch a rotating window of files is also read back
//! through the normal client path and digest-verified: a mismatch is a
//! *silent corruption read*, the one outcome a preservation system
//! must never produce (the read path's inline digest check turns rot
//! into repair-or-typed-error, so this gate should hold even in
//! undefended cells). The final sweep reads everything and reports
//! bytes lost, the first-loss epoch and the achieved durability nines.
//!
//! The whole harness is deterministic: same seed, byte-identical JSON.

use crate::experiments::BenchError;
use ros_cas::{verify_payload, Digest};
use ros_cluster::{Cluster, ClusterConfig};
use ros_faults::{AgingPlan, AgingSpec, FaultEvent, FaultKind, FaultSink, InjectionOutcome};
use ros_olfs::Redundancy;
use ros_sim::SimDuration;
use ros_workload::spec::synth_data;
use serde::{Deserialize, Serialize};

/// One defence configuration of the sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellSpec {
    /// Run the sampled audit every N epochs; 0 disables auditing.
    pub audit_every_epochs: u32,
    /// Racks per archive group.
    pub replication: usize,
    /// Disc-array parity schema.
    pub redundancy: Redundancy,
}

impl CellSpec {
    /// Stable cell name used as the JSON key: `scrub{N}_r{R}_raid{K}`.
    pub fn name(&self) -> String {
        let raid = match self.redundancy {
            Redundancy::None => "raid0",
            Redundancy::Raid5 => "raid5",
            Redundancy::Raid6 => "raid6",
        };
        format!(
            "scrub{}_r{}_{raid}",
            self.audit_every_epochs, self.replication
        )
    }
}

/// Shape of one durability campaign.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Member racks in the federation.
    pub racks: usize,
    /// Simulated epochs (one epoch = one simulated month here; the
    /// aging acceleration knob compresses decades into the horizon).
    pub epochs: u32,
    /// Files ingested before the campaign starts.
    pub files: usize,
    /// Bytes per file.
    pub file_bytes: usize,
    /// Images the audit samples per pass, per rack.
    pub audit_sample: usize,
    /// Seed for the cluster, the workload payloads and the aging plan.
    pub seed: u64,
    /// The defence configurations to sweep.
    pub cells: Vec<CellSpec>,
}

impl DurabilityConfig {
    /// CI smoke: two well-defended cells, few epochs, seconds-scale.
    pub fn smoke() -> Self {
        DurabilityConfig {
            racks: 2,
            epochs: 6,
            files: 24,
            file_bytes: 16 * 1024,
            audit_sample: 64,
            seed: 42,
            cells: vec![
                CellSpec {
                    audit_every_epochs: 1,
                    replication: 2,
                    redundancy: Redundancy::Raid5,
                },
                CellSpec {
                    audit_every_epochs: 1,
                    replication: 2,
                    redundancy: Redundancy::Raid6,
                },
            ],
        }
    }

    /// The full sweep: scrub cadence × replication × EC width.
    pub fn full() -> Self {
        let mut cells = Vec::new();
        for audit_every_epochs in [1u32, 4, 0] {
            for replication in [1usize, 2] {
                for redundancy in [Redundancy::Raid5, Redundancy::Raid6] {
                    cells.push(CellSpec {
                        audit_every_epochs,
                        replication,
                        redundancy,
                    });
                }
            }
        }
        DurabilityConfig {
            racks: 3,
            epochs: 24,
            files: 48,
            file_bytes: 16 * 1024,
            audit_sample: 64,
            seed: 42,
            cells,
        }
    }

    /// The operating point the campaign recommends (most defended:
    /// audit every epoch, replication 2, RAID-6); the gates require
    /// zero loss here.
    pub fn recommended(&self) -> CellSpec {
        CellSpec {
            audit_every_epochs: 1,
            replication: 2.min(self.racks),
            redundancy: Redundancy::Raid6,
        }
    }
}

/// Outcome of one cell of the sweep.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Aging events that landed (rot or corruption on a burned disc).
    pub injected: usize,
    /// Aging events that found no target (disc not burned yet, rack
    /// busy, ...).
    pub skipped: usize,
    /// Images the audits digest-verified across the campaign.
    pub audited: usize,
    /// Latent-rot (or unreadable-track) detections by the audits.
    pub rot_detected: usize,
    /// Detections healed from local disc-array parity.
    pub repaired_parity: usize,
    /// Detections healed by re-fetching from a replica rack.
    pub repaired_replica: usize,
    /// Mid-campaign client reads that returned wrong bytes — must be
    /// zero everywhere: rot either repairs inline or errors typed.
    pub silent_corruption_reads: usize,
    /// Mid-campaign client reads that failed typed (data beyond local
    /// redundancy with no replica; surfaces as an error, not bad data).
    pub read_errors: usize,
    /// Files unreadable or digest-mismatched at the final sweep.
    pub files_lost: usize,
    /// Bytes of payload lost at the final sweep.
    pub bytes_lost: u64,
    /// First epoch at which a final-sweep-lost file's read first
    /// failed, if any loss occurred.
    pub first_loss_epoch: Option<u32>,
    /// Durability nines achieved: `-log10(bytes_lost / bytes_total)`,
    /// capped at 12.0 when nothing was lost.
    pub nines: f64,
}

/// The whole campaign: one report per cell, keyed by cell name.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DurabilityReport {
    /// Racks per federation.
    pub racks: usize,
    /// Epochs simulated.
    pub epochs: u32,
    /// Files ingested per cell.
    pub files: usize,
    /// Total payload bytes per cell.
    pub bytes_total: u64,
    /// Seed driving the whole campaign.
    pub seed: u64,
    /// Aging events in the shared plan.
    pub aging_events: usize,
    /// Per-cell outcomes in sweep order: `(cell name, report)`.
    pub cells: Vec<(String, CellReport)>,
}

impl DurabilityReport {
    /// Deterministic JSON rendering (struct order, sweep-ordered cells).
    pub fn to_json(&self) -> Result<String, BenchError> {
        serde_json::to_string_pretty(self).map_err(|e| BenchError {
            context: "durability",
            detail: e.to_string(),
        })
    }
}

/// One simulated epoch of wall-clock: a month.
const EPOCH: SimDuration = SimDuration::from_secs(30 * 86_400);

/// The shared aging schedule: every cell replays exactly this plan.
fn aging_plan(cfg: &DurabilityConfig) -> AgingPlan {
    // More virtual discs than any cell actually burns; selectors are
    // folded onto the burned population at injection time.
    let spec = AgingSpec::accelerated(32, cfg.epochs);
    AgingPlan::generate(cfg.seed, &spec)
}

fn run_cell(
    cfg: &DurabilityConfig,
    cell: &CellSpec,
    plan: &mut AgingPlan,
) -> Result<CellReport, BenchError> {
    let err = |detail: String| BenchError {
        context: "durability",
        detail,
    };
    plan.reset();
    let mut ccfg = ClusterConfig::tiny(cfg.racks);
    ccfg.replication = cell.replication.min(cfg.racks);
    // The chaos-harness shrink: tiny discs and 4-disc arrays so a
    // 16 KB-file ingest actually reaches the optical path.
    ccfg.rack.drive_bays = 2;
    ccfg.rack.disc_class = ros_drive::media::DiscClass::Custom {
        capacity: 512 * 1024,
    };
    ccfg.rack.layout.discs_per_tray = 4;
    ccfg.rack.drives_per_bay = 4;
    ccfg.rack.layout.layers = 8;
    ccfg.rack.redundancy = cell.redundancy;
    let mut cluster = Cluster::new(ccfg).map_err(|e| err(e.to_string()))?;

    // Ingest the dataset and record the acked digests.
    let verify_plane = ros_disk::DataPlane::single();
    let mut files: Vec<(ros_udf::UdfPath, u64, Digest)> = Vec::with_capacity(cfg.files);
    for i in 0..cfg.files {
        let path: ros_udf::UdfPath = format!("/dur/g{}/f{i}", i % 8)
            .parse()
            .map_err(|_| err(format!("bad path for file {i}")))?;
        let data = synth_data(&path, cfg.file_bytes as u64);
        let digest = Digest::of(&data);
        cluster
            .write_file(&path, data.to_vec())
            .map_err(|e| err(format!("ingest {path}: {e}")))?;
        files.push((path, data.len() as u64, digest));
    }
    // Archive cold: burn, drop every buffer copy (parity included) and
    // send the trays back to the roller — the discs are the only copy.
    cluster
        .archive_all(SimDuration::from_secs(86_400))
        .map_err(|e| err(format!("archive: {e}")))?;
    cluster.cold_store_all();

    let mut report = CellReport::default();
    let racks = u32::try_from(cfg.racks).unwrap_or(u32::MAX);
    let mut first_failed_read: Option<u32> = None;
    for epoch in 0..cfg.epochs {
        // Deliver this epoch's share of the shared aging schedule; the
        // struck rack is the event's disc selector folded over the
        // federation, so the pattern is cell-invariant.
        for (i, event) in plan.due_epoch(epoch).into_iter().enumerate() {
            let kind = FaultKind::AtRack {
                rack: event.disc % racks.max(1),
                fault: Box::new(event.kind.clone()),
            };
            let outcome = cluster.inject_fault(&FaultEvent {
                seq: u64::from(epoch) << 32 | i as u64,
                at_op: u64::from(epoch),
                kind,
            });
            match outcome {
                InjectionOutcome::Injected => report.injected += 1,
                _ => report.skipped += 1,
            }
        }
        cluster.run_all_for(EPOCH);

        // The defence under test: the scheduled audit sweep.
        if cell.audit_every_epochs > 0 && epoch % cell.audit_every_epochs == 0 {
            let audit = cluster
                .audit_all(cfg.audit_sample)
                .map_err(|e| err(format!("audit at epoch {epoch}: {e}")))?;
            report.audited += audit.sampled;
            report.rot_detected += audit.rotted;
            report.repaired_parity += audit.repaired_parity;
            report.repaired_replica += audit.repaired_replica;
            // Repairs re-burn arrays; return to cold storage so later
            // aging strikes hit media, not lingering buffer copies.
            cluster.cold_store_all();
        }

        // Client reads: a rotating window of the dataset, digest
        // verified. Silent corruption here is the unforgivable outcome.
        let window = (cfg.files / 4).max(1);
        for k in 0..window {
            let (path, _, digest) = &files[(epoch as usize * window + k) % files.len()];
            match cluster.read_file(path) {
                Ok(r) => {
                    if verify_payload(digest, &r.data, &verify_plane).is_err() {
                        report.silent_corruption_reads += 1;
                        first_failed_read.get_or_insert(epoch);
                    }
                }
                Err(_) => {
                    report.read_errors += 1;
                    first_failed_read.get_or_insert(epoch);
                }
            }
        }
    }

    // Final sweep: every byte, through the normal read path.
    for (path, len, digest) in &files {
        let lost = match cluster.read_file(path) {
            Ok(r) => verify_payload(digest, &r.data, &verify_plane).is_err(),
            Err(_) => true,
        };
        if lost {
            report.files_lost += 1;
            report.bytes_lost += len;
        }
    }
    if report.files_lost > 0 {
        report.first_loss_epoch = first_failed_read.or(Some(cfg.epochs));
    }
    let total: u64 = files.iter().map(|(_, len, _)| *len).sum();
    report.nines = if report.bytes_lost == 0 || total == 0 {
        12.0
    } else {
        (-(report.bytes_lost as f64 / total as f64).log10()).clamp(0.0, 12.0)
    };
    Ok(report)
}

/// Runs the whole sweep once.
pub fn run_durability(cfg: &DurabilityConfig) -> Result<DurabilityReport, BenchError> {
    let mut plan = aging_plan(cfg);
    let mut cells = Vec::with_capacity(cfg.cells.len());
    for cell in &cfg.cells {
        let report = run_cell(cfg, cell, &mut plan)?;
        cells.push((cell.name(), report));
    }
    Ok(DurabilityReport {
        racks: cfg.racks,
        epochs: cfg.epochs,
        files: cfg.files,
        bytes_total: cfg.files as u64 * cfg.file_bytes as u64,
        seed: cfg.seed,
        aging_events: plan.len(),
        cells,
    })
}

/// Runs the sweep twice from the same seed, checks the two JSON
/// renderings are byte-identical, and enforces the campaign gates:
///
/// 1. zero silent-corruption reads in *every* cell (the read path must
///    repair or fail typed, never return rotted bytes);
/// 2. at least one latent-rot event detected *and* repaired by the
///    sampled audit somewhere in the sweep;
/// 3. zero bytes lost at the recommended operating point.
pub fn run_durability_checked(cfg: &DurabilityConfig) -> Result<DurabilityReport, BenchError> {
    let err = |detail: String| BenchError {
        context: "durability",
        detail,
    };
    let report = run_durability(cfg)?;
    let replay = run_durability(cfg)?;
    let (a, b) = (report.to_json()?, replay.to_json()?);
    if a != b {
        return Err(err(
            "durability sweep diverged across identically-seeded runs".into(),
        ));
    }
    let mut rot_repaired = 0usize;
    let mut rot_detected = 0usize;
    for (name, cell) in &report.cells {
        if cell.silent_corruption_reads > 0 {
            return Err(err(format!(
                "cell {name}: {} silent-corruption read(s) — a client saw rotted bytes",
                cell.silent_corruption_reads
            )));
        }
        rot_detected += cell.rot_detected;
        rot_repaired += cell.repaired_parity + cell.repaired_replica;
    }
    if rot_detected == 0 {
        return Err(err(
            "no latent rot detected anywhere: the campaign exercised nothing".into(),
        ));
    }
    if rot_repaired == 0 {
        return Err(err(
            "rot was detected but never repaired: the audit ladder is broken".into(),
        ));
    }
    let recommended = cfg.recommended().name();
    if let Some((_, cell)) = report.cells.iter().find(|(n, _)| *n == recommended) {
        if cell.bytes_lost > 0 {
            return Err(err(format!(
                "recommended operating point {recommended} lost {} bytes",
                cell.bytes_lost
            )));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_holds_all_gates() {
        let report = run_durability_checked(&DurabilityConfig::smoke()).unwrap();
        assert_eq!(report.cells.len(), 2);
        for (name, cell) in &report.cells {
            assert_eq!(cell.silent_corruption_reads, 0, "{name}");
            assert_eq!(cell.bytes_lost, 0, "{name} must lose nothing");
            assert_eq!(cell.nines, 12.0, "{name}");
        }
        let rot: usize = report.cells.iter().map(|(_, c)| c.rot_detected).sum();
        assert!(rot >= 1, "the aging plan must land rot");
    }

    #[test]
    fn smoke_json_is_byte_stable() {
        let a = run_durability(&DurabilityConfig::smoke())
            .unwrap()
            .to_json()
            .unwrap();
        let b = run_durability(&DurabilityConfig::smoke())
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cell_names_are_stable_keys() {
        let cfg = DurabilityConfig::full();
        let names: Vec<String> = cfg.cells.iter().map(CellSpec::name).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"scrub1_r2_raid6".to_string()));
        assert!(names.contains(&"scrub0_r1_raid5".to_string()));
        let unique: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
