//! Cluster scale-out scenario: the Fig. 7 op mix replayed against 1, 2,
//! 4 and 8 federated racks, plus the whole-rack failure drill.
//!
//! The paper prices growth in whole racks (§6) but never runs more than
//! one; this scenario checks that the federation layer actually delivers
//! rack-level scale-out — aggregate read throughput should grow close to
//! linearly with rack count, because rendezvous placement spreads archive
//! groups across members and reads route to group primaries in parallel.

use crate::experiments::BenchError;
use ros_cluster::{Cluster, ClusterConfig, ClusterReport, DrillReport};
use ros_workload::dist::SizeDist;
use ros_workload::spec::synth_data;
use ros_workload::{FileOp, WorkloadSpec};

/// One measured point of the scale-out sweep.
#[derive(Clone, Debug)]
pub struct ClusterScalePoint {
    /// Rack count.
    pub racks: usize,
    /// Aggregate read throughput over the read phase (MB/s).
    pub read_mbps: f64,
    /// Aggregate ingest throughput over the write phase, counting each
    /// replica's bytes (MB/s).
    pub write_mbps: f64,
    /// Mean read latency across racks (ms).
    pub read_mean_ms: f64,
    /// Median read latency (ms).
    pub read_p50_ms: f64,
    /// 95th-percentile read latency (ms).
    pub read_p95_ms: f64,
    /// 99th-percentile read latency (ms).
    pub read_p99_ms: f64,
    /// Read-throughput speedup versus the 1-rack point.
    pub speedup: f64,
}

/// Outcome of the rack-failure drill at cluster scale.
#[derive(Clone, Debug)]
pub struct ClusterDrillSummary {
    /// Rack count the drill ran at.
    pub racks: usize,
    /// Files the workload ingested before the failure.
    pub files_written: usize,
    /// Guardian MV copies shipped before the failure.
    pub mv_guardian_copies: usize,
    /// The drill report (recovery time, loss, bytes moved).
    pub drill: DrillReport,
}

/// The multi-tenant mixed op workload (Fig. 7 mix: 70% reads over a
/// Zipf-skewed tenant population) the cluster scenarios replay.
fn mixed_spec(ops: usize) -> WorkloadSpec {
    WorkloadSpec::MultiTenantMixed {
        tenants: 24,
        tenant_skew: 0.5,
        ops,
        read_ratio: 0.7,
        sizes: SizeDist::Fixed { bytes: 16 * 1024 },
        fanout: 2,
    }
}

const SEED: u64 = 42;

struct PhaseRates {
    read_mbps: f64,
    write_mbps: f64,
    read_mean_ms: f64,
    read_p50_ms: f64,
    read_p95_ms: f64,
    read_p99_ms: f64,
}

/// Ingests the mix's writes in one epoch, then replays its reads/stats
/// in a second epoch, returning both phases' aggregate rates.
fn run_point(racks: usize, ops: usize) -> Result<PhaseRates, BenchError> {
    let err = |detail: String| BenchError {
        context: "cluster_scaleout",
        detail,
    };
    let mut cluster = Cluster::new(ClusterConfig::tiny(racks)).map_err(|e| err(e.to_string()))?;
    let ops = mixed_spec(ops).compile(SEED);
    cluster.begin_epoch();
    for op in &ops {
        if let FileOp::Write { path, size } = op {
            cluster
                .write_file(path, synth_data(path, *size))
                .map_err(|e| err(format!("ingest {path}: {e}")))?;
        }
    }
    let ingest = ClusterReport::collect(&cluster);
    cluster.begin_epoch();
    for op in &ops {
        match op {
            FileOp::Read { path } => {
                let report = cluster
                    .read_file(path)
                    .map_err(|e| err(format!("read {path}: {e}")))?;
                let expect = synth_data(path, report.data.len() as u64);
                if report.data.as_ref() != expect.as_slice() {
                    return Err(err(format!("payload mismatch on {path}")));
                }
            }
            FileOp::Stat { path } => {
                cluster
                    .stat(path)
                    .map_err(|e| err(format!("stat {path}: {e}")))?;
            }
            FileOp::Write { .. } => {}
        }
    }
    let reads = ClusterReport::collect(&cluster);
    // Percentiles share one cached sorted view inside the recorder, so
    // three tail queries cost one sort — no per-query sample cloning.
    Ok(PhaseRates {
        read_mbps: reads.read_throughput().mb_per_sec(),
        write_mbps: ingest.write_throughput().mb_per_sec(),
        read_mean_ms: reads.read_latency.mean().as_millis_f64(),
        read_p50_ms: reads.read_latency.percentile(0.50).as_millis_f64(),
        read_p95_ms: reads.read_latency.percentile(0.95).as_millis_f64(),
        read_p99_ms: reads.read_latency.percentile(0.99).as_millis_f64(),
    })
}

/// Runs the scale-out sweep over `rack_counts`, each replaying the same
/// `ops`-operation mix. The first entry is the speedup baseline.
pub fn cluster_scaleout(
    rack_counts: &[usize],
    ops: usize,
) -> Result<Vec<ClusterScalePoint>, BenchError> {
    let mut points = Vec::new();
    let mut baseline = None;
    for &racks in rack_counts {
        let rates = run_point(racks, ops)?;
        let base = *baseline.get_or_insert(rates.read_mbps);
        points.push(ClusterScalePoint {
            racks,
            read_mbps: rates.read_mbps,
            write_mbps: rates.write_mbps,
            read_mean_ms: rates.read_mean_ms,
            read_p50_ms: rates.read_p50_ms,
            read_p95_ms: rates.read_p95_ms,
            read_p99_ms: rates.read_p99_ms,
            speedup: if base > 0.0 {
                rates.read_mbps / base
            } else {
                0.0
            },
        });
    }
    Ok(points)
}

/// Ingests the mix on `racks` racks, replicates MV snapshots, fails one
/// rack and runs the re-replication drill.
pub fn cluster_failure_drill(racks: usize, ops: usize) -> Result<ClusterDrillSummary, BenchError> {
    let err = |detail: String| BenchError {
        context: "cluster_failure_drill",
        detail,
    };
    let mut cluster = Cluster::new(ClusterConfig::tiny(racks)).map_err(|e| err(e.to_string()))?;
    let ops = mixed_spec(ops).compile(SEED);
    let mut files_written = 0;
    for op in &ops {
        if let FileOp::Write { path, size } = op {
            cluster
                .write_file(path, synth_data(path, *size))
                .map_err(|e| err(format!("ingest {path}: {e}")))?;
            files_written += 1;
        }
    }
    let mv = cluster
        .replicate_mv_snapshots(true)
        .map_err(|e| err(format!("MV replication: {e}")))?;
    // Fail the busiest surviving candidate deterministically: rack 1 (a
    // middle member; rack 0 stays up as the reader's reference point).
    let victim = 1u32.min(u32::try_from(racks).unwrap_or(u32::MAX) - 1);
    cluster
        .fail_rack(victim)
        .map_err(|e| err(format!("fail rack {victim}: {e}")))?;
    let drill = cluster
        .rereplicate_after_failure(victim)
        .map_err(|e| err(format!("drill: {e}")))?;
    Ok(ClusterDrillSummary {
        racks,
        files_written,
        mv_guardian_copies: mv.guardian_copies,
        drill,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_scales_and_reports() {
        let points = cluster_scaleout(&[1, 2], 240).unwrap();
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        assert!(points[1].speedup > 1.0, "2 racks must beat 1");
        assert!(points[1].read_mbps > points[0].read_mbps);
    }

    #[test]
    fn drill_summary_has_zero_loss_at_replication_two() {
        let summary = cluster_failure_drill(4, 240).unwrap();
        assert_eq!(summary.drill.files_lost, 0);
        assert!(summary.files_written > 0);
        assert!(summary.mv_guardian_copies > 0);
        assert!(summary.drill.recovery_time.as_nanos() > 0);
    }
}
