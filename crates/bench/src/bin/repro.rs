//! `repro` — regenerate the paper's tables and figures from the models.
//!
//! Usage: `repro [table1|table2|table3|fig6|fig7|fig8|fig9|fig10|tco|power|mvrec|ablations|cluster|cluster-smoke|all]`

use ros_bench::render;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let out = match arg.as_str() {
        "table1" => render::render_table1(),
        "table2" => Ok(render::render_table2()),
        "table3" => render::render_table3(),
        "fig6" => Ok(render::render_fig6()),
        "fig7" => render::render_fig7(),
        "fig8" => Ok(render::render_fig8()),
        "fig9" => Ok(render::render_fig9()),
        "fig10" => Ok(render::render_fig10()),
        "tco" => render::render_tco(),
        "power" => Ok(render::render_power()),
        "mvrec" => render::render_mvrec(),
        "capacity" => render::render_capacity(),
        "ablations" => render::render_ablations(),
        "cluster" => render::render_cluster(),
        "cluster-smoke" => render::render_cluster_smoke(),
        "all" => render::render_all(),
        "--json" | "json" => render::render_json(),
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: table1 table2 table3 \
                 fig6 fig7 fig8 fig9 fig10 tco power mvrec capacity ablations \
                 cluster cluster-smoke all json"
            );
            std::process::exit(2);
        }
    };
    match out {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
