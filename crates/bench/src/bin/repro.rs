//! `repro` — regenerate the paper's tables and figures from the models.
//!
//! Usage: `repro [table1|table2|table3|fig6|fig7|fig8|fig9|fig10|tco|power|mvrec|ablations|cluster|cluster-smoke|cas-smoke|all]`
//!
//! Perf harness: `repro perf` (text), `repro perf --json` (baseline
//! format), `repro perf --check BENCH_hotpaths.json` (CI gate — exits
//! non-zero when a tracked metric regresses past the threshold).
//!
//! Chaos harness: `repro chaos` (full soak), `repro chaos --smoke`
//! (CI-sized run). Exits non-zero on acked-write loss, timeline
//! divergence across the seeded re-run, or retry amplification past
//! the ceiling.
//!
//! CAS harness: `repro cas-smoke` runs the dedup comparison (same
//! duplicated Zipf ingest through dedup-off and dedup-on engines) and
//! exits non-zero unless dedup burns strictly less and every alias
//! reads back digest-exact.
//!
//! Durability harness: `repro durability` (full sweep), `repro
//! durability --smoke` (CI-sized), `--json` for the raw deterministic
//! report. Exits non-zero on silent-corruption reads, non-determinism
//! across the seeded re-run, a campaign that never exercised rot, or
//! data loss at the recommended operating point.

use ros_bench::{perf, render};

/// `repro perf [--json | --check <baseline>]`.
fn run_perf(mode: Option<&str>, baseline_path: Option<&str>) -> Result<String, String> {
    let report = perf::measure(5);
    match mode {
        None => Ok(report.to_text()),
        Some("--json") => Ok(report.to_json().map_err(|e| e.to_string())? + "\n"),
        Some("--check") => {
            let path = baseline_path.ok_or("usage: repro perf --check <baseline.json>")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let baseline = perf::PerfReport::from_json(&text).map_err(|e| e.to_string())?;
            let regressions = report.regressions_vs(&baseline);
            if regressions.is_empty() {
                let mut out = report.to_text();
                out += &format!(
                    "\nperf gate: OK — all tracked metrics within {}% of {path}\n",
                    baseline.max_regression_pct
                );
                return Ok(out);
            }
            let mut msg = format!(
                "perf gate: {} tracked metric(s) regressed >{}% vs {path}:\n",
                regressions.len(),
                baseline.max_regression_pct
            );
            for (name, base, cur) in regressions {
                if cur.is_nan() {
                    msg += &format!("  {name}: missing from current report (baseline {base:.2})\n");
                } else {
                    msg += &format!(
                        "  {name}: {base:.2} -> {cur:.2} ({:+.1}%)\n",
                        (cur / base - 1.0) * 100.0
                    );
                }
            }
            Err(msg)
        }
        Some(other) => Err(format!(
            "unknown perf flag '{other}'; expected --json or --check"
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    if arg == "perf" {
        match run_perf(
            args.get(1).map(String::as_str),
            args.get(2).map(String::as_str),
        ) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if arg == "chaos" {
        let smoke = match args.get(1).map(String::as_str) {
            None => false,
            Some("--smoke") => true,
            Some(other) => {
                eprintln!("unknown chaos flag '{other}'; expected --smoke");
                std::process::exit(2);
            }
        };
        match render::render_chaos(smoke) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("chaos soak failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if arg == "durability" {
        let mut smoke = false;
        let mut json = false;
        for flag in args.iter().skip(1) {
            match flag.as_str() {
                "--smoke" => smoke = true,
                "--json" => json = true,
                other => {
                    eprintln!("unknown durability flag '{other}'; expected --smoke or --json");
                    std::process::exit(2);
                }
            }
        }
        match render::render_durability(smoke, json) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("durability campaign failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let out = match arg.as_str() {
        "table1" => render::render_table1(),
        "table2" => Ok(render::render_table2()),
        "table3" => render::render_table3(),
        "fig6" => Ok(render::render_fig6()),
        "fig7" => render::render_fig7(),
        "fig8" => Ok(render::render_fig8()),
        "fig9" => Ok(render::render_fig9()),
        "fig10" => Ok(render::render_fig10()),
        "tco" => render::render_tco(),
        "power" => Ok(render::render_power()),
        "mvrec" => render::render_mvrec(),
        "capacity" => render::render_capacity(),
        "ablations" => render::render_ablations(),
        "cluster" => render::render_cluster(),
        "cluster-smoke" => render::render_cluster_smoke(),
        "cas-smoke" => render::render_cas_smoke(),
        "all" => render::render_all(),
        "--json" | "json" => render::render_json(),
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: table1 table2 table3 \
                 fig6 fig7 fig8 fig9 fig10 tco power mvrec capacity ablations \
                 cluster cluster-smoke cas-smoke all json perf chaos durability"
            );
            std::process::exit(2);
        }
    };
    match out {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
