//! Chaos soak: a mixed multi-tenant workload driven under a seeded
//! cross-layer fault schedule, asserting the robustness invariants the
//! retry/supervision stack promises:
//!
//! 1. **Zero acked-write loss** — every write the cluster acknowledged
//!    (including typed degraded outcomes) reads back bit-exact after the
//!    faults, heals and the rack-failure drill.
//! 2. **Bounded retry amplification** — supervised attempts divided by
//!    workload operations stays under a configured ceiling; backoff
//!    cannot silently turn one glitch into an attempt storm.
//! 3. **Reproducible fault timeline** — the injected-event log (and its
//!    digest) is a pure function of the seed; two runs from the same
//!    seed produce identical timelines.
//! 4. **No panics** — every fault surfaces as a typed degraded result.

use crate::experiments::BenchError;
use ros_cas::{verify_payload, Digest};
use ros_cluster::{Cluster, ClusterConfig, ClusterError};
use ros_faults::{FaultKind, FaultPlan, FaultSink, FaultSpec, InjectionOutcome, RetryPolicy};
use ros_sim::SimDuration;
use ros_workload::dist::SizeDist;
use ros_workload::spec::synth_data;
use ros_workload::{FileOp, WorkloadSpec};
use std::collections::BTreeMap;

/// Shape of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Member racks (>= 2 so one outage cannot strand replication).
    pub racks: usize,
    /// Workload operations (also the fault-plan horizon).
    pub ops: usize,
    /// Seed for both the workload and the fault plan.
    pub seed: u64,
    /// Use the heavier soak fault mix instead of the CI smoke mix.
    pub heavy: bool,
    /// Ceiling on supervised attempts per workload operation.
    pub max_amplification: f64,
}

impl ChaosConfig {
    /// The CI smoke configuration: small, seconds-scale, deterministic.
    pub fn smoke() -> Self {
        ChaosConfig {
            racks: 2,
            ops: 240,
            seed: 42,
            heavy: false,
            max_amplification: 2.0,
        }
    }

    /// The full soak: more racks, more operations, the heavy fault mix.
    pub fn soak() -> Self {
        ChaosConfig {
            racks: 3,
            ops: 900,
            seed: 42,
            heavy: true,
            max_amplification: 2.0,
        }
    }
}

/// Everything one chaos run observed.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The configuration the run used.
    pub racks: usize,
    /// Workload operations executed.
    pub ops: usize,
    /// The seed the run used.
    pub seed: u64,
    /// One line per injected fault (and drill), in schedule order.
    pub timeline: Vec<String>,
    /// FNV-1a digest of the timeline — the reproducibility fingerprint.
    /// Deliberately still 64-bit FNV so historical fingerprints stay
    /// comparable; payload integrity uses 256-bit CAS digests instead.
    pub timeline_digest: u64,
    /// Fault events that landed.
    pub injected: usize,
    /// Fault events skipped (target unavailable right now).
    pub skipped: usize,
    /// Writes acknowledged at full replication.
    pub acked_writes: usize,
    /// Writes acknowledged through a typed degraded outcome
    /// (partial replication, then restored by re-issue).
    pub degraded_writes: usize,
    /// Writes that failed typed (retries exhausted or hard error).
    pub failed_writes: usize,
    /// Reads served first-attempt from the primary.
    pub clean_reads: usize,
    /// Reads that needed a retry or a replica fallback.
    pub degraded_reads: usize,
    /// Reads that failed typed after retries.
    pub failed_reads: usize,
    /// Supervised attempts across all reads and writes.
    pub attempts: u64,
    /// `attempts / (reads + writes)` — the retry amplification.
    pub amplification: f64,
    /// RAID members healed during maintenance windows.
    pub members_healed: usize,
    /// Drive bays returned to rotation by field service.
    pub bays_serviced: usize,
    /// Files the rack-failure drill reported unrecoverable.
    pub drill_files_lost: usize,
    /// Acked files that read back bit-exact in the final sweep.
    pub verified: usize,
    /// Acked files lost or corrupted (must be empty).
    pub lost: Vec<String>,
}

/// The same multi-tenant mixed op mix the cluster scale-out scenario
/// replays (70% reads, Zipf-skewed tenants), sized for the chaos run.
fn chaos_spec(ops: usize) -> WorkloadSpec {
    WorkloadSpec::MultiTenantMixed {
        tenants: 24,
        tenant_skew: 0.5,
        ops,
        read_ratio: 0.7,
        sizes: SizeDist::Fixed { bytes: 16 * 1024 },
        fanout: 2,
    }
}

fn outcome_text(o: &InjectionOutcome) -> String {
    match o {
        InjectionOutcome::Injected => "injected".to_string(),
        InjectionOutcome::NotApplicable => "n/a".to_string(),
        InjectionOutcome::Skipped(why) => format!("skipped ({why})"),
    }
}

/// Archive pass with operator-style recovery: service quarantined bays
/// and heal volumes first (a flush cannot burn without bays), then
/// flush/drain/evict, retrying with backoff when armed transients abort
/// the pass mid-burn.
fn archive_with_retry(
    cluster: &mut Cluster,
    policy: &RetryPolicy,
    at: &str,
    report: &mut ChaosReport,
) {
    let mut pass = 0;
    loop {
        pass += 1;
        let (healed, serviced) = cluster.maintain_all();
        report.members_healed += healed;
        report.bays_serviced += serviced;
        match cluster.archive_all(SimDuration::from_secs(86_400)) {
            Ok(evicted) => {
                report.timeline.push(format!(
                    "{at}  archive pass: {evicted} buffer copies evicted (attempt {pass})"
                ));
                break;
            }
            Err(_) if policy.should_retry(pass) => {
                cluster.run_all_for(policy.backoff(pass));
            }
            Err(e) => {
                report
                    .timeline
                    .push(format!("{at}  archive pass degraded: {e}"));
                break;
            }
        }
    }
}

/// Runs one chaos soak. Typed degraded outcomes are expected and
/// counted; a panic, an acked-write loss, or mid-run payload corruption
/// is a failure.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, BenchError> {
    let err = |detail: String| BenchError {
        context: "chaos",
        detail,
    };
    let mut ccfg = ClusterConfig::tiny(cfg.racks);
    // Quarantine + re-burn need a spare bay to route around a dead
    // drive; the tiny template has only one.
    ccfg.rack.drive_bays = 2;
    // Shrink the media so the 16 KB op mix actually reaches the optical
    // path: 512 KB discs seal a bucket every ~32 writes and 4-disc
    // RAID-5 arrays (3 data + 1 parity) complete mid-run, so the second
    // half reads burned discs — where the drive/mech/media faults live —
    // instead of being absorbed by the SSD buffer.
    ccfg.rack.disc_class = ros_drive::media::DiscClass::Custom {
        capacity: 512 * 1024,
    };
    ccfg.rack.layout.discs_per_tray = 4;
    ccfg.rack.drives_per_bay = 4;
    // Extra tray slots: a survivor absorbs the failed rack's relocated
    // groups during the drill and must still have blanks for its own
    // final flush.
    ccfg.rack.layout.layers = 8;
    let mut cluster = Cluster::new(ccfg.clone()).map_err(|e| err(e.to_string()))?;
    let ops = chaos_spec(cfg.ops).compile(cfg.seed);

    let rack_count = u32::try_from(cfg.racks).unwrap_or(u32::MAX);
    let mut spec = if cfg.heavy {
        FaultSpec::soak(rack_count, ops.len() as u64)
    } else {
        FaultSpec::smoke(rack_count, ops.len() as u64)
    };
    spec.bays = u32::try_from(ccfg.rack.drive_bays).unwrap_or(u32::MAX);
    spec.drives_per_bay = u32::try_from(ccfg.rack.drives_per_bay).unwrap_or(u32::MAX);
    let mut plan = FaultPlan::generate(cfg.seed, &spec);

    let policy = RetryPolicy::default();
    let mut report = ChaosReport {
        racks: cfg.racks,
        ops: ops.len(),
        seed: cfg.seed,
        timeline: Vec::new(),
        timeline_digest: 0,
        injected: 0,
        skipped: 0,
        acked_writes: 0,
        degraded_writes: 0,
        failed_writes: 0,
        clean_reads: 0,
        degraded_reads: 0,
        failed_reads: 0,
        attempts: 0,
        amplification: 0.0,
        members_healed: 0,
        bays_serviced: 0,
        drill_files_lost: 0,
        verified: 0,
        lost: Vec::new(),
    };
    // Latest acknowledged payload digest per path (256-bit CAS content
    // digest, not the 64-bit FNV fingerprint the timeline uses — see
    // EXPERIMENTS.md on collision exposure); the zero-loss sweep reads
    // every entry back after the storm and verifies by digest.
    let mut acked: BTreeMap<String, Digest> = BTreeMap::new();
    let verify_plane = ros_disk::DataPlane::single();
    let mut supervised_ops: u64 = 0;

    for (i, op) in ops.iter().enumerate() {
        for event in plan.due(i as u64) {
            let outcome = cluster.inject_fault(&event);
            match &outcome {
                InjectionOutcome::Injected => report.injected += 1,
                InjectionOutcome::Skipped(_) => report.skipped += 1,
                InjectionOutcome::NotApplicable => {}
            }
            report.timeline.push(format!(
                "op {:>4}  {:<32} {}",
                event.at_op,
                event.kind.label(),
                outcome_text(&outcome)
            ));
            // A landed outage triggers the operational runbook: run the
            // re-replication drill so later reads and the final sweep
            // see a recovered federation.
            if let (FaultKind::RackOutage { rack }, InjectionOutcome::Injected) =
                (&event.kind, &outcome)
            {
                let victim = u32::try_from(*rack as usize % cfg.racks).unwrap_or(u32::MAX);
                let drill = cluster
                    .rereplicate_after_failure(victim)
                    .map_err(|e| err(format!("drill after rack {victim} outage: {e}")))?;
                report.drill_files_lost += drill.files_lost;
                report.timeline.push(format!(
                    "op {:>4}  drill r{victim}: {} groups relocated, {} degraded, \
                     {} files recovered, {} lost",
                    event.at_op,
                    drill.groups_relocated,
                    drill.groups_degraded,
                    drill.files_recovered,
                    drill.files_lost
                ));
            }
        }
        if i % 32 == 31 {
            let (healed, serviced) = cluster.maintain_all();
            report.members_healed += healed;
            report.bays_serviced += serviced;
        }
        // Halfway through, archive what has been written: flush, drain
        // the burns and evict the buffer copies, so the second half's
        // reads traverse the optical path the drive/mech faults target.
        if i == ops.len() / 2 {
            let at = format!("op {i:>4}");
            archive_with_retry(&mut cluster, &policy, &at, &mut report);
        }
        match op {
            FileOp::Write { path, size } => {
                supervised_ops += 1;
                let data = synth_data(path, *size);
                let digest = Digest::of(&data);
                match cluster.write_file_supervised(path, data.clone(), &policy) {
                    Ok((_, stats)) => {
                        report.attempts += u64::from(stats.attempts);
                        acked.insert(path.to_string(), digest);
                        report.acked_writes += 1;
                    }
                    Err(ClusterError::PartialWrite { .. }) => {
                        // Durable on the completed replicas, recorded by
                        // the router. The payload is deterministic, so
                        // re-issuing restores full replication without
                        // changing contents; either way the write is
                        // acknowledged (degraded) to the client.
                        report.attempts += 1;
                        if let Ok((_, stats)) = cluster.write_file_supervised(path, data, &policy) {
                            report.attempts += u64::from(stats.attempts);
                        }
                        acked.insert(path.to_string(), digest);
                        report.degraded_writes += 1;
                    }
                    Err(ClusterError::RetriesExhausted { attempts, .. }) => {
                        report.attempts += u64::from(attempts);
                        report.failed_writes += 1;
                    }
                    Err(_) => {
                        report.attempts += 1;
                        report.failed_writes += 1;
                    }
                }
            }
            FileOp::Read { path } => {
                supervised_ops += 1;
                match cluster.read_file_supervised(path, &policy) {
                    Ok((r, stats)) => {
                        report.attempts += u64::from(stats.attempts);
                        if stats.attempts > 1 || r.fallbacks > 0 {
                            report.degraded_reads += 1;
                        } else {
                            report.clean_reads += 1;
                        }
                        if let Some(digest) = acked.get(&path.to_string()) {
                            if verify_payload(digest, &r.data, &verify_plane).is_err() {
                                return Err(err(format!("mid-run payload mismatch on {path}")));
                            }
                        }
                    }
                    Err(ClusterError::NotFound(_)) => {
                        // The mix can schedule a read before the path's
                        // first write; nothing was acked, nothing is owed.
                        report.attempts += 1;
                        report.clean_reads += 1;
                    }
                    Err(ClusterError::RetriesExhausted { attempts, .. }) => {
                        report.attempts += u64::from(attempts);
                        report.failed_reads += 1;
                    }
                    Err(_) => {
                        report.attempts += 1;
                        report.failed_reads += 1;
                    }
                }
            }
            FileOp::Stat { path } => {
                // Stats ride the same failover path; errors here are
                // covered by the read/sweep invariants.
                let _ = cluster.stat(path);
            }
        }
    }

    // Let the storm settle: a final archive (service bays, flush, drain
    // the burns, evict buffer copies), then verify every acknowledged
    // byte — off the discs, not the buffer, where possible.
    archive_with_retry(&mut cluster, &policy, "final  ", &mut report);
    cluster.run_until_quiescent_all(SimDuration::from_secs(86_400));

    let sweep_policy = RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    };
    // Read every acked path back in path order and verify it against
    // the digest recorded at ack time. The content digest is
    // thread-count invariant, so the sweep result is identical at any
    // plane width.
    let entries: Vec<(String, ros_udf::UdfPath, Digest)> = acked
        .iter()
        .map(|(path_str, digest)| {
            let path: ros_udf::UdfPath = path_str
                .parse()
                .map_err(|_| err(format!("tracked path invalid: {path_str}")))?;
            Ok((path_str.clone(), path, *digest))
        })
        .collect::<Result<_, BenchError>>()?;
    for (path_str, path, digest) in &entries {
        match cluster.read_file_supervised(path, &sweep_policy) {
            Ok((r, _)) if verify_payload(digest, &r.data, &verify_plane).is_ok() => {
                report.verified += 1;
            }
            Ok(_) => report.lost.push(format!("{path_str}: payload corrupted")),
            Err(e) => report.lost.push(format!("{path_str}: {e}")),
        }
    }

    report.amplification = if supervised_ops > 0 {
        report.attempts as f64 / supervised_ops as f64
    } else {
        1.0
    };
    report.timeline_digest = ros_drive::media::fnv1a(report.timeline.join("\n").as_bytes());
    Ok(report)
}

/// Runs the chaos soak twice from the same seed, checks the two
/// timelines agree, and enforces the loss/amplification invariants.
/// Returns the verified report (from the first run).
pub fn run_chaos_checked(cfg: &ChaosConfig) -> Result<ChaosReport, BenchError> {
    let err = |detail: String| BenchError {
        context: "chaos",
        detail,
    };
    let report = run_chaos(cfg)?;
    let replay = run_chaos(cfg)?;
    if replay.timeline_digest != report.timeline_digest {
        return Err(err(format!(
            "fault timeline diverged across identically-seeded runs \
             ({:#018x} vs {:#018x})",
            report.timeline_digest, replay.timeline_digest
        )));
    }
    if !report.lost.is_empty() {
        return Err(err(format!(
            "{} acked write(s) lost: {}",
            report.lost.len(),
            report.lost.join("; ")
        )));
    }
    if report.drill_files_lost > 0 {
        return Err(err(format!(
            "rack drill reported {} unrecoverable file(s) at replication 2",
            report.drill_files_lost
        )));
    }
    if report.amplification > cfg.max_amplification {
        return Err(err(format!(
            "retry amplification {:.2} exceeds the {:.2} ceiling",
            report.amplification, cfg.max_amplification
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_holds_all_invariants() {
        let report = run_chaos_checked(&ChaosConfig::smoke()).unwrap();
        assert!(report.injected > 0, "the plan must land faults");
        assert!(report.verified > 0, "sweep must cover acked paths");
        assert!(report.lost.is_empty());
        assert!(report.amplification >= 1.0);
    }

    #[test]
    fn timeline_is_a_pure_function_of_the_seed() {
        let a = run_chaos(&ChaosConfig::smoke()).unwrap();
        let mut cfg = ChaosConfig::smoke();
        cfg.seed = 43;
        let b = run_chaos(&cfg).unwrap();
        assert_ne!(
            a.timeline_digest, b.timeline_digest,
            "different seeds must diverge the schedule"
        );
    }
}
