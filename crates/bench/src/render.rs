//! Text rendering of experiment results in the paper's layout.

use crate::cluster::{cluster_failure_drill, cluster_scaleout};
use crate::experiments::*;
use ros_sim::Bandwidth;

fn hr(title: &str) -> String {
    format!(
        "\n=== {title} {}\n",
        "=".repeat(60usize.saturating_sub(title.len()))
    )
}

/// Renders Table 1.
pub fn render_table1() -> Result<String, BenchError> {
    let mut out = hr("Table 1: Read latency from different file locations");
    out += &format!(
        "{:<55} {:>12} {:>12}\n",
        "File location", "paper (s)", "ours (s)"
    );
    for row in table1()? {
        let paper = row
            .paper_secs
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "minutes".into());
        out += &format!(
            "{:<55} {:>12} {:>12.3}\n",
            row.location, paper, row.measured_secs
        );
    }
    out += "(row 6 measured at 4 MiB disc scale; at 25/100 GB media the wait\n is the residual burn time: up to 675 s / 3757 s per disc)\n";
    Ok(out)
}

/// Renders Table 2.
pub fn render_table2() -> String {
    let mut out = hr("Table 2: Optical drive read speeds");
    out += &format!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}\n",
        "Disc", "paper 1x", "ours 1x", "paper 12x", "ours 12x"
    );
    for row in table2() {
        out += &format!(
            "{:<10} {:>12.1}MB {:>12.1}MB {:>14.1}MB {:>14.1}MB\n",
            format!("{}GB", row.capacity_gb),
            row.paper_single,
            row.single,
            row.paper_aggregate,
            row.aggregate
        );
    }
    out
}

/// Renders Table 3.
pub fn render_table3() -> Result<String, BenchError> {
    let mut out = hr("Table 3: Mechanical latency");
    out += &format!(
        "{:<18} {:>12} {:>12} {:>14} {:>14}\n",
        "Slot location", "paper load", "ours load", "paper unload", "ours unload"
    );
    for row in table3()? {
        out += &format!(
            "{:<18} {:>11.1}s {:>11.1}s {:>13.1}s {:>13.1}s\n",
            row.location, row.paper_load, row.load, row.paper_unload, row.unload
        );
    }
    Ok(out)
}

/// Renders Figure 6.
pub fn render_fig6() -> String {
    let mut out = hr("Figure 6: Throughput under the five configurations (vs ext4)");
    out += &format!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}\n",
        "stack", "read", "write", "read MB/s", "write MB/s"
    );
    for bar in fig6() {
        out += &format!(
            "{:<14} {:>10.3} {:>10.3} {:>12.1} {:>12.1}\n",
            bar.stack, bar.read_norm, bar.write_norm, bar.read_mbps, bar.write_mbps
        );
    }
    out += "(paper: samba+OLFS = 236.1 MB/s read, 323.6 MB/s write)\n";
    out
}

/// Renders Figure 7.
pub fn render_fig7() -> Result<String, BenchError> {
    let mut out = hr("Figure 7: OLFS internal operations per POSIX call");
    for op in fig7()? {
        out += &format!(
            "{:<22} total {:>6.1} ms (paper {:>4.0} ms)  steps: ",
            op.label, op.measured_ms, op.paper_ms
        );
        let steps: Vec<String> = op
            .steps
            .iter()
            .map(|(n, ms)| format!("{n}({ms:.1})"))
            .collect();
        out += &steps.join(" → ");
        out += "\n";
    }
    Ok(out)
}

/// Renders Figure 8.
pub fn render_fig8() -> String {
    let plan = fig8();
    let mut out = hr("Figure 8: Single drive recording 25GB disc");
    out += &format!(
        "total {:.0} s (paper 675 s), average {:.1}X (paper 8.2X)\n\n",
        plan.total.as_secs_f64(),
        plan.average_x
    );
    out += "progress   speed\n";
    for pct in [0.0, 0.098, 0.23, 0.382, 0.555, 0.749, 0.964] {
        let x = plan
            .samples
            .iter()
            .rfind(|s| s.progress <= pct + 1e-9)
            .map(|s| s.x)
            .unwrap_or(0.0);
        out += &format!("{:>7.1}%  {:>5.1}X  {}\n", pct * 100.0, x, bar(x, 12.0, 40));
    }
    out
}

/// Renders Figure 9.
pub fn render_fig9() -> String {
    let report = fig9();
    let mut out = hr("Figure 9: Aggregated throughput of 12 drives burning 25GB discs");
    out += &format!(
        "total {:.0} s (paper 1146 s), peak {:.0} MB/s (paper ~380), avg {:.0} MB/s (paper 268)\n\n",
        report.total.as_secs_f64(),
        report.peak.mb_per_sec(),
        report.average.mb_per_sec()
    );
    out += "time      aggregate\n";
    let total = report.total.as_secs_f64();
    for frac in [0.02, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95] {
        let t = ros_sim::SimTime::from_nanos((total * frac * 1e9) as u64);
        let rate = report.series.rate_at(t).mb_per_sec();
        out += &format!(
            "{:>6.0} s  {:>6.0} MB/s  {}\n",
            total * frac,
            rate,
            bar(rate, 400.0, 40)
        );
    }
    out
}

/// Renders Figure 10.
pub fn render_fig10() -> String {
    let plan = fig10();
    let mut out = hr("Figure 10: Single drive recording 100GB disc");
    out += &format!(
        "total {:.0} s (paper 3757 s), average {:.2}X (paper 5.9X)\n",
        plan.total.as_secs_f64(),
        plan.average_x
    );
    let dips = plan
        .samples
        .iter()
        .filter(|s| s.x > 0.0 && s.x < 5.0)
        .count();
    out += &format!(
        "fail-safe dips to 4.0X: {dips} sample windows out of {}\n\n",
        plan.samples.len()
    );
    out += "progress   speed (zoomed shape: mostly 6.0X with 4.0X dips)\n";
    for s in plan.samples.iter().step_by(23).take(16) {
        out += &format!(
            "{:>7.1}%  {:>4.1}X  {}\n",
            s.progress * 100.0,
            s.x,
            bar(s.x, 8.0, 40)
        );
    }
    out
}

/// Renders the TCO comparison (§2.1).
pub fn render_tco() -> Result<String, BenchError> {
    let mut out = hr("TCO: 1 PB preserved for 100 years (§2.1 model)");
    out += &format!(
        "{:<9} {:>10} {:>11} {:>9} {:>12} {:>10} {:>11}\n",
        "media", "media $", "migration", "energy", "maintenance", "hardware", "total $/PB"
    );
    let rows = tco();
    for b in &rows {
        out += &format!(
            "{:<9} {:>10.0} {:>11.0} {:>9.0} {:>12.0} {:>10.0} {:>11.0}\n",
            b.name,
            b.media,
            b.migration,
            b.energy,
            b.maintenance,
            b.hardware,
            b.total()
        );
    }
    let missing = |name: &'static str| {
        move || BenchError {
            context: "render_tco",
            detail: format!("TCO model has no {name} row"),
        }
    };
    let optical = rows
        .iter()
        .find(|b| b.name == "optical")
        .ok_or_else(missing("optical"))?;
    let hdd = rows
        .iter()
        .find(|b| b.name == "hdd")
        .ok_or_else(missing("hdd"))?;
    let tape = rows
        .iter()
        .find(|b| b.name == "tape")
        .ok_or_else(missing("tape"))?;
    out += &format!(
        "\noptical/hdd = {:.2} (paper: ~1/3), optical/tape = {:.2} (paper: ~1/2)\n",
        optical.total() / hdd.total(),
        optical.total() / tape.total()
    );
    Ok(out)
}

/// Renders the power budget (§5.1).
pub fn render_power() -> String {
    let (idle, peak) = power();
    let mut out = hr("Power: rack operating points (§5.1)");
    out += &format!("idle: {idle:.1} W (paper 185 W)\npeak: {peak:.1} W (paper 652 W)\n");
    out
}

/// Renders the MV-recovery experiment (§4.2).
pub fn render_mvrec() -> Result<String, BenchError> {
    let t = mv_recovery_default()?;
    let mut out = hr("MV recovery from 120 discs (§4.2)");
    out += &format!(
        "recovered in {:.1} min (paper: \"half an hour\")\n",
        t.as_secs_f64() / 60.0
    );
    out += "(120 discs x 3.7 GB of MV snapshot, 10 tray cycles over 2 bays)\n";
    Ok(out)
}

/// Renders the capacity-planning analysis.
pub fn render_capacity() -> Result<String, BenchError> {
    let c = capacity()?;
    let mut out = hr("Capacity planning (derived from the models)");
    out += &format!(
        "client network (10GbE payload):     {:>8.0} MB/s\n",
        c.network_mbps
    );
    out += &format!(
        "samba+OLFS write path:              {:>8.0} MB/s\n",
        c.samba_write_mbps
    );
    out += &format!(
        "direct-writing mode (§4.8):         {:>8.0} MB/s\n",
        c.direct_write_mbps
    );
    out += &format!(
        "burn drain, 2 bays x 100GB media:   {:>8.0} MB/s of user data\n",
        c.drain_bd100_mbps
    );
    out += &format!(
        "burn drain, 2 bays x 25GB media:    {:>8.0} MB/s of user data\n",
        c.drain_bd25_mbps
    );
    out += &format!(
        "disk buffer:                        {:>8.0} TB\n",
        c.buffer_tb
    );
    out += &format!(
        "burst absorption at full direct-mode ingest: {:.1} h before the buffer fills\n",
        c.burst_hours
    );
    out += "(sustained ingest is drain-bound; §3.3's tiered buffer hides the gap for bursts)\n";
    Ok(out)
}

/// Renders the ablation studies.
pub fn render_ablations() -> Result<String, BenchError> {
    let mut out = hr("Ablations (design choices of §3.2, §4.7, §4.8)");
    let (spread, crammed) = ablation_volumes()?;
    out += &format!(
        "independent RAID volumes (§4.7): useful bandwidth {spread:.0} MB/s spread over two volumes vs {crammed:.0} MB/s crammed on one\n"
    );
    let (par, ser) = ablation_parallel_scheduling()?;
    out += &format!(
        "parallel mech scheduling (§3.2): load+unload cycle {par:.1}s; serialized {ser:.1}s (saves {:.1}s)\n",
        ser - par
    );
    let (with_ms, without_s) = ablation_forepart()?;
    out += &format!(
        "forepart store (§4.8): first byte {with_ms:.1} ms with forepart vs {without_s:.1} s without\n"
    );
    Ok(out)
}

/// Renders the cluster scale-out sweep and failure drill at the given
/// scales (`rack_counts` for the sweep, `drill_racks` for the drill,
/// `ops` mixed operations per point).
pub fn render_cluster_at(
    rack_counts: &[usize],
    drill_racks: usize,
    ops: usize,
) -> Result<String, BenchError> {
    let mut out = hr("Cluster scale-out: Fig. 7 op mix across federated racks");
    out += &format!(
        "{:<7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}\n",
        "racks", "read MB/s", "write MB/s", "read mean", "p50", "p95", "p99", "speedup"
    );
    let points = cluster_scaleout(rack_counts, ops)?;
    for p in &points {
        out += &format!(
            "{:<7} {:>12.1} {:>12.1} {:>10.1}ms {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>8.2}x  {}\n",
            p.racks,
            p.read_mbps,
            p.write_mbps,
            p.read_mean_ms,
            p.read_p50_ms,
            p.read_p95_ms,
            p.read_p99_ms,
            p.speedup,
            bar(
                p.speedup,
                rack_counts.last().copied().unwrap_or(1) as f64,
                24
            )
        );
    }
    out += "(replication 2: write MB/s counts both replicas' bytes)\n";

    let d = cluster_failure_drill(drill_racks, ops)?;
    out += &format!(
        "\nrack-failure drill at {} racks, replication 2, {} files ingested:\n",
        d.racks, d.files_written
    );
    out += &format!(
        "  failed rack {}; namespace audited from guardian rack {} ({} files)\n",
        d.drill.failed,
        d.drill
            .namespace_source
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into()),
        d.drill.namespace_files
    );
    out += &format!(
        "  re-replicated {} groups ({} files, {:.1} MB moved), {} degraded\n",
        d.drill.groups_relocated,
        d.drill.files_recovered,
        d.drill.bytes_moved as f64 / 1e6,
        d.drill.groups_degraded
    );
    out += &format!(
        "  recovery time {:.1} s, files lost: {}, files verified readable: {}\n",
        d.drill.recovery_time.as_secs_f64(),
        d.drill.files_lost,
        d.drill.files_verified
    );
    Ok(out)
}

/// Renders the full cluster scenario (1/2/4/8 racks, drill at 4).
pub fn render_cluster() -> Result<String, BenchError> {
    render_cluster_at(&[1, 2, 4, 8], 4, 1600)
}

/// Renders a tiny-budget cluster smoke (1/2 racks, drill at 2) for CI.
pub fn render_cluster_smoke() -> Result<String, BenchError> {
    render_cluster_at(&[1, 2], 2, 240)
}

/// Renders the chaos soak: the seeded fault timeline, the degraded-mode
/// op counts, and the invariant verdicts. The harness itself runs the
/// scenario twice and fails on timeline divergence, acked-write loss or
/// retry amplification past the ceiling, so a rendered report implies
/// all three invariants held.
pub fn render_chaos(smoke: bool) -> Result<String, BenchError> {
    let cfg = if smoke {
        crate::chaos::ChaosConfig::smoke()
    } else {
        crate::chaos::ChaosConfig::soak()
    };
    let r = crate::chaos::run_chaos_checked(&cfg)?;
    let mut out = hr("Chaos soak: mixed workload under a seeded fault schedule");
    out += &format!(
        "{} racks, {} ops, seed {}, {} fault mix\n",
        r.racks,
        r.ops,
        r.seed,
        if cfg.heavy { "soak" } else { "smoke" }
    );
    out += "\nfault timeline:\n";
    for line in &r.timeline {
        out += &format!("  {line}\n");
    }
    out += &format!(
        "\nfaults: {} injected, {} skipped (target unavailable)\n",
        r.injected, r.skipped
    );
    out += &format!(
        "writes: {} acked clean, {} acked degraded, {} failed typed\n",
        r.acked_writes, r.degraded_writes, r.failed_writes
    );
    out += &format!(
        "reads:  {} clean, {} degraded (retry/fallback), {} failed typed\n",
        r.clean_reads, r.degraded_reads, r.failed_reads
    );
    out += &format!(
        "maintenance: {} SSD members healed, {} bays serviced\n",
        r.members_healed, r.bays_serviced
    );
    out += &format!(
        "retry amplification: {:.2} attempts/op (ceiling {:.2})\n",
        r.amplification, cfg.max_amplification
    );
    out += &format!(
        "invariants: timeline digest {:#018x} stable across re-run; \
         {} acked file(s) verified bit-exact, {} lost\n",
        r.timeline_digest,
        r.verified,
        r.lost.len()
    );
    Ok(out)
}

/// Renders the Monte Carlo durability campaign: the scrub-cadence ×
/// replication × EC-width sweep under the shared seeded aging plan.
/// `run_durability_checked` enforces the gates itself (byte-stable
/// JSON across the seeded re-run, zero silent-corruption reads, rot
/// detected and repaired, zero loss at the recommended operating
/// point), so a rendered report implies they all held. With `json`
/// the raw deterministic report is emitted instead of the table.
pub fn render_durability(smoke: bool, json: bool) -> Result<String, BenchError> {
    let cfg = if smoke {
        crate::durability::DurabilityConfig::smoke()
    } else {
        crate::durability::DurabilityConfig::full()
    };
    let r = crate::durability::run_durability_checked(&cfg)?;
    if json {
        return Ok(r.to_json()? + "\n");
    }
    let mut out = hr("Durability campaign: media aging vs audit-based repair");
    out += &format!(
        "{} racks, {} files x {} KB, {} epochs (1 epoch = 1 accelerated month), \
         {} aging events, seed {}\n",
        r.racks,
        r.files,
        cfg.file_bytes / 1024,
        r.epochs,
        r.aging_events,
        r.seed
    );
    out += &format!(
        "\n{:<18} {:>4} {:>4} {:>4} {:>5} {:>5} {:>6} {:>5} {:>9} {:>6}\n",
        "cell", "inj", "rot", "par", "repl", "silent", "rderr", "lost", "bytes", "nines"
    );
    for (name, c) in &r.cells {
        out += &format!(
            "{:<18} {:>4} {:>4} {:>4} {:>5} {:>5} {:>6} {:>5} {:>9} {:>6.2}\n",
            name,
            c.injected,
            c.rot_detected,
            c.repaired_parity,
            c.repaired_replica,
            c.silent_corruption_reads,
            c.read_errors,
            c.files_lost,
            c.bytes_lost,
            c.nines
        );
    }
    let recommended = cfg.recommended().name();
    out += &format!(
        "\ngates: JSON byte-stable across seeded re-run; zero silent-corruption \
         reads in every cell; rot detected and repaired; {recommended} lost 0 bytes\n"
    );
    Ok(out)
}

/// Renders the CAS dedup smoke: the two-engine burn comparison and the
/// digest read-back verdicts. The harness enforces the invariants
/// itself (strictly fewer burns, digest-exact aliases, clean sweep), so
/// a rendered report implies they all held.
pub fn render_cas_smoke() -> Result<String, BenchError> {
    let cfg = crate::cas::CasConfig::smoke();
    let r = crate::cas::run_cas_checked(&cfg)?;
    let mut out = hr("CAS dedup smoke: duplicated Zipf ingest, dedup off vs on");
    out += &format!(
        "{} writes of {} KB over {} distinct payloads ({} tenants, skew {}, seed {})\n",
        r.writes,
        cfg.payload_bytes / 1024,
        cfg.distinct_payloads,
        cfg.tenants,
        cfg.skew,
        cfg.seed
    );
    out += &format!(
        "dedup: {} hits, {} MB never staged, blob dedup ratio {:.2}\n",
        r.dedup_hits,
        r.dedup_bytes_saved / (1024 * 1024),
        r.dedup_ratio
    );
    out += &format!(
        "burns: {} images plain vs {} dedup (cost ratio {:.2}); buffer {} KB vs {} KB\n",
        r.plain_images,
        r.dedup_images,
        r.burn_cost_ratio,
        r.plain_buffer_bytes / 1024,
        r.dedup_buffer_bytes / 1024
    );
    out += &format!(
        "verify: {} alias(es) digest-exact through the read path, {} lost, \
         {} sweep mismatch(es)\n",
        r.verified,
        r.lost.len(),
        r.sweep_mismatches
    );
    Ok(out)
}

fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max).clamp(0.0, 1.0) * width as f64) as usize;
    "#".repeat(n)
}

/// Renders everything.
pub fn render_all() -> Result<String, BenchError> {
    Ok([
        render_table1()?,
        render_table2(),
        render_table3()?,
        render_fig6(),
        render_fig7()?,
        render_fig8(),
        render_fig9(),
        render_fig10(),
        render_tco()?,
        render_power(),
        render_mvrec()?,
        render_capacity()?,
        render_ablations()?,
        render_cluster()?,
    ]
    .join(""))
}

/// Renders the throughput of a bandwidth value (helper for binaries).
pub fn fmt_bw(b: Bandwidth) -> String {
    format!("{:.1} MB/s", b.mb_per_sec())
}

/// Machine-readable JSON of every experiment (for CI dashboards).
pub fn render_json() -> Result<String, BenchError> {
    let t1: Vec<serde_json::Value> = table1()?
        .into_iter()
        .map(|r| {
            serde_json::json!({
                "location": r.location,
                "paper_secs": r.paper_secs,
                "measured_secs": r.measured_secs,
            })
        })
        .collect();
    let t2: Vec<serde_json::Value> = table2()
        .into_iter()
        .map(|r| {
            serde_json::json!({
                "capacity_gb": r.capacity_gb,
                "paper_single_mbps": r.paper_single,
                "single_mbps": r.single,
                "paper_aggregate_mbps": r.paper_aggregate,
                "aggregate_mbps": r.aggregate,
            })
        })
        .collect();
    let t3: Vec<serde_json::Value> = table3()?
        .into_iter()
        .map(|r| {
            serde_json::json!({
                "location": r.location,
                "paper_load_s": r.paper_load,
                "load_s": r.load,
                "paper_unload_s": r.paper_unload,
                "unload_s": r.unload,
            })
        })
        .collect();
    let f6: Vec<serde_json::Value> = fig6()
        .into_iter()
        .map(|b| {
            serde_json::json!({
                "stack": b.stack,
                "read_norm": b.read_norm,
                "write_norm": b.write_norm,
                "read_mbps": b.read_mbps,
                "write_mbps": b.write_mbps,
            })
        })
        .collect();
    let f7: Vec<serde_json::Value> = fig7()?
        .into_iter()
        .map(|o| {
            serde_json::json!({
                "label": o.label,
                "paper_ms": o.paper_ms,
                "measured_ms": o.measured_ms,
                "steps": o.steps,
            })
        })
        .collect();
    let f8 = fig8();
    let f9 = fig9();
    let f10 = fig10();
    let tco_rows: Vec<serde_json::Value> = tco()
        .into_iter()
        .map(|b| {
            serde_json::json!({
                "media": b.name,
                "media_usd": b.media,
                "migration_usd": b.migration,
                "energy_usd": b.energy,
                "maintenance_usd": b.maintenance,
                "hardware_usd": b.hardware,
                "total_usd_per_pb": b.total(),
            })
        })
        .collect();
    let scaleout: Vec<serde_json::Value> = cluster_scaleout(&[1, 2, 4], 1600)?
        .into_iter()
        .map(|p| {
            serde_json::json!({
                "racks": p.racks,
                "read_mbps": p.read_mbps,
                "write_mbps": p.write_mbps,
                "read_mean_ms": p.read_mean_ms,
                "read_p50_ms": p.read_p50_ms,
                "read_p95_ms": p.read_p95_ms,
                "read_p99_ms": p.read_p99_ms,
                "speedup": p.speedup,
            })
        })
        .collect();
    let drill = cluster_failure_drill(4, 1600)?;
    let (idle_w, peak_w) = power();
    let (spread, crammed) = ablation_volumes()?;
    let (par, ser) = ablation_parallel_scheduling()?;
    let (fp_ms, no_fp_s) = ablation_forepart()?;
    let doc = serde_json::json!({
        "table1": t1,
        "table2": t2,
        "table3": t3,
        "fig6": f6,
        "fig7": f7,
        "fig8": {
            "total_s": f8.total.as_secs_f64(),
            "average_x": f8.average_x,
            "paper": { "total_s": 675.0, "average_x": 8.2 },
        },
        "fig9": {
            "total_s": f9.total.as_secs_f64(),
            "peak_mbps": f9.peak.mb_per_sec(),
            "average_mbps": f9.average.mb_per_sec(),
            "paper": { "total_s": 1146.0, "peak_mbps": 380.0, "average_mbps": 268.0 },
        },
        "fig10": {
            "total_s": f10.total.as_secs_f64(),
            "average_x": f10.average_x,
            "paper": { "total_s": 3757.0, "average_x": 5.9 },
        },
        "tco": tco_rows,
        "power": { "idle_w": idle_w, "peak_w": peak_w,
                   "paper": { "idle_w": 185.0, "peak_w": 652.0 } },
        "mv_recovery_min": mv_recovery_default()?.as_secs_f64() / 60.0,
        "cluster": {
            "scaleout": scaleout,
            "drill": {
                "racks": drill.racks,
                "failed_rack": drill.drill.failed,
                "files_written": drill.files_written,
                "files_recovered": drill.drill.files_recovered,
                "files_lost": drill.drill.files_lost,
                "files_verified": drill.drill.files_verified,
                "groups_relocated": drill.drill.groups_relocated,
                "bytes_moved": drill.drill.bytes_moved,
                "recovery_s": drill.drill.recovery_time.as_secs_f64(),
            },
        },
        "ablations": {
            "volumes_spread_mbps": spread,
            "volumes_crammed_mbps": crammed,
            "mech_cycle_parallel_s": par,
            "mech_cycle_serial_s": ser,
            "forepart_first_byte_ms": fp_ms,
            "no_forepart_first_byte_s": no_fp_s,
        },
    });
    serde_json::to_string_pretty(&doc).map_err(|e| BenchError {
        context: "render_json",
        detail: e.to_string(),
    })
}
